#ifndef XC_BENCH_COMMON_H
#define XC_BENCH_COMMON_H

/**
 * @file
 * Shared harness for the paper-reproduction benchmarks: a uniform
 * command-line parser, registry-backed runtime construction for
 * every configuration of §5.1, and helpers that deploy an
 * application, drive it with a load generator, and report
 * paper-style rows.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/images.h"
#include "apps/kv.h"
#include "apps/nginx.h"
#include "apps/php_mysql.h"
#include "provenance.h"
#include "fault/fault.h"
#include "isa/superblock.h"
#include "load/driver.h"
#include "runtimes/runtime.h"
#include "sim/ctl.h"
#include "sim/metrics.h"
#include "sim/profile.h"
#include "sim/request_ctx.h"
#include "sim/sweep.h"
#include "sim/timeseries.h"
#include "sim/trace.h"

namespace xc::bench {

using runtimes::Runtime;

/** Write @p data to @p path; false on I/O failure. */
inline bool
writeTextFile(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    bool ok =
        std::fwrite(data.data(), 1, data.size(), f) == data.size();
    return std::fclose(f) == 0 && ok;
}

/**
 * The flags every bench accepts:
 *
 *   --runtime NAME    run only this runtime (default: all)
 *   --seed N          simulation + fault seed
 *   --duration MS     measurement window override
 *   --connections N   client connections override
 *   --trace FILE      capture a Chrome trace to FILE
 *   --trace-cat LIST  restrict tracing to these categories
 *   --profile FILE    cycle-attribution profile (JSON + .collapsed)
 *   --flight N        flight-record up to N requests per run
 *   --timeseries FILE sample throughput/utilization time series
 *   --metrics FILE    enable the labeled-metrics registry and write
 *                     its JSON exposition to FILE at the end
 *   --slo-log FILE    write the SLO alert event log to FILE
 *                     (fig_slo)
 *   --mech            print the mechanism-cycle breakdown
 *   --faults RATE     inject FaultPlan::uniform(RATE)
 *   --quick           smaller sweep (CI)
 *   --golden FILE     write a deterministic run digest to FILE
 *   --jobs/-j N       run sweep cells on N host threads (0 = nproc);
 *                     output is byte-identical to -j1 at any N
 *   --checkpoint-at MS  capture a snapshot at this sim time
 *   --checkpoint FILE   where to write the snapshot
 *   --restore FILE      replay to the snapshot's tick, byte-verify
 *                       every section against FILE, and continue
 *   --no-fork           (fig_whatif) replay each what-if cell from
 *                       scratch instead of fork()ing the warm parent
 *   --cloud NAME      run only clouds whose label contains NAME
 *                     (case-insensitive; fig3/fig4)
 *   --ctl SOCK        serve a live control plane on this UNIX socket
 *   --ctl-log FILE    record executed ctl commands to FILE
 *   --ctl-replay FILE re-execute a recorded ctl log (no socket)
 *   --ctl-hold        freeze at the first ctl poll tick until a
 *                     `resume` command (or timeout -> exit 3)
 *   --ctl-quantum MS  ctl command quantization period (default 10)
 *   --no-superblock   execute syscall stubs through the verbatim
 *                     interpreter instead of the superblock cache
 *                     (reference semantics; output is identical)
 *   --domains N       split the simulated world into N lookahead
 *                     domains advanced on separate host threads
 *                     (fig3; output is byte-identical to N=1)
 *   --n N             container-count override for density benches
 *                     (fig_cluster: run exactly one N-container cell)
 */
struct Options
{
    std::string runtime; ///< empty = every runtime the bench covers
    std::uint64_t seed = 42;
    sim::Tick duration = 0; ///< 0 = the bench's default
    int connections = 0;    ///< 0 = the bench's default
    std::string tracePath;
    std::string traceCat; ///< empty = all categories
    std::string profilePath;
    int flightSamples = 0; ///< 0 = flight recorder off
    std::string timeseriesPath;
    std::string metricsPath;
    /** Benches that need the registry regardless of --metrics
     *  (fig_slo) set this before startObservability(). */
    bool metricsForce = false;
    std::string sloLogPath; ///< --slo-log: alert event log (fig_slo)
    bool mech = false;
    double faultRate = 0.0;
    bool quick = false;
    std::string goldenPath;
    int jobs = 1; ///< sweep worker threads; 0 = hardware threads
    sim::Tick checkpointAt = 0; ///< 0 = no checkpoint hook
    std::string checkpointPath;
    std::string restorePath;
    bool noFork = false; ///< fig_whatif: replay instead of fork()
    std::string cloud;  ///< empty = every cloud the bench covers
    std::string ctlSocket;
    std::string ctlLog;
    std::string ctlReplay;
    bool ctlHold = false;
    sim::Tick ctlQuantum = 10 * sim::kTicksPerMs;
    bool noSuperblock = false; ///< verbatim-interpreter reference run
    int domains = 1; ///< intra-sim lookahead domains (1 = sequential)
    int n = 0; ///< --n: container-count override (0 = bench default)

    static Options
    parse(int argc, char **argv)
    {
        Options o;
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            auto value = [&](const char *flag) -> const char * {
                if (std::strcmp(a, flag) != 0)
                    return nullptr;
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s: %s needs a value\n",
                                 argv[0], flag);
                    std::exit(2);
                }
                return argv[++i];
            };
            if (const char *v = value("--runtime")) {
                o.runtime = v;
            } else if (const char *v = value("--seed")) {
                o.seed = std::strtoull(v, nullptr, 0);
            } else if (const char *v = value("--duration")) {
                o.duration = std::strtoull(v, nullptr, 0) *
                             sim::kTicksPerMs;
            } else if (const char *v = value("--connections")) {
                o.connections = std::atoi(v);
            } else if (const char *v = value("--trace")) {
                o.tracePath = v;
            } else if (const char *v = value("--trace-cat")) {
                o.traceCat = v;
            } else if (const char *v = value("--profile")) {
                o.profilePath = v;
            } else if (const char *v = value("--flight")) {
                o.flightSamples = std::atoi(v);
            } else if (const char *v = value("--timeseries")) {
                o.timeseriesPath = v;
            } else if (const char *v = value("--metrics")) {
                o.metricsPath = v;
            } else if (const char *v = value("--slo-log")) {
                o.sloLogPath = v;
            } else if (std::strcmp(a, "--mech") == 0) {
                o.mech = true;
            } else if (const char *v = value("--faults")) {
                o.faultRate = std::strtod(v, nullptr);
            } else if (std::strcmp(a, "--quick") == 0) {
                o.quick = true;
            } else if (const char *v = value("--golden")) {
                o.goldenPath = v;
            } else if (const char *v = value("--checkpoint-at")) {
                o.checkpointAt = std::strtoull(v, nullptr, 0) *
                                 sim::kTicksPerMs;
            } else if (const char *v = value("--checkpoint")) {
                o.checkpointPath = v;
            } else if (const char *v = value("--restore")) {
                o.restorePath = v;
            } else if (std::strcmp(a, "--no-fork") == 0) {
                o.noFork = true;
            } else if (const char *v = value("--cloud")) {
                o.cloud = v;
            } else if (const char *v = value("--ctl")) {
                o.ctlSocket = v;
            } else if (const char *v = value("--ctl-log")) {
                o.ctlLog = v;
            } else if (const char *v = value("--ctl-replay")) {
                o.ctlReplay = v;
            } else if (std::strcmp(a, "--ctl-hold") == 0) {
                o.ctlHold = true;
            } else if (const char *v = value("--ctl-quantum")) {
                o.ctlQuantum = std::strtoull(v, nullptr, 0) *
                               sim::kTicksPerMs;
            } else if (std::strcmp(a, "--no-superblock") == 0) {
                o.noSuperblock = true;
            } else if (const char *v = value("--domains")) {
                o.domains = std::atoi(v);
            } else if (const char *v = value("--n")) {
                o.n = std::atoi(v);
            } else if (const char *v = value("--jobs")) {
                o.jobs = std::atoi(v);
            } else if (const char *v = value("-j")) {
                o.jobs = std::atoi(v);
            } else if (std::strncmp(a, "-j", 2) == 0 &&
                       a[2] != '\0') {
                o.jobs = std::atoi(a + 2); // fused form: -j8
            } else {
                std::fprintf(
                    stderr,
                    "%s: unknown flag '%s'\n"
                    "usage: %s [--runtime NAME] [--seed N] "
                    "[--duration MS] [--connections N] "
                    "[--trace out.json] [--trace-cat LIST] "
                    "[--profile out.json] [--flight N] "
                    "[--timeseries out.json] [--metrics out.json] "
                    "[--slo-log FILE] [--mech] "
                    "[--faults RATE] [--quick] [--golden out.json] "
                    "[--checkpoint-at MS] [--checkpoint FILE] "
                    "[--restore FILE] [--no-fork] [--cloud NAME] "
                    "[--ctl SOCK] [--ctl-log FILE] "
                    "[--ctl-replay FILE] [--ctl-hold] "
                    "[--ctl-quantum MS] [--jobs/-j N] "
                    "[--no-superblock] [--domains N] [--n N]\n",
                    argv[0], a, argv[0]);
                std::exit(2);
            }
        }
        if (o.domains < 1) {
            std::fprintf(stderr, "%s: --domains must be >= 1\n",
                         argv[0]);
            std::exit(2);
        }
        if (o.domains > 1 &&
            (o.faultRate > 0.0 || !o.ctlSocket.empty() ||
             !o.ctlReplay.empty() || o.checkpointAt != 0 ||
             !o.checkpointPath.empty() || !o.restorePath.empty() ||
             !o.tracePath.empty() || !o.profilePath.empty() ||
             o.flightSamples != 0 || !o.timeseriesPath.empty() ||
             !o.metricsPath.empty())) {
            // Domain-parallel runs support only the plain measurement
            // path: faults can reset/crash across domains, and the
            // observability sinks assume a single simulation thread.
            std::fprintf(stderr,
                         "%s: --domains is incompatible with "
                         "--faults/--ctl/--ctl-replay/--checkpoint/"
                         "--restore/--trace/--profile/--flight/"
                         "--timeseries/--metrics\n",
                         argv[0]);
            std::exit(2);
        }
        if (o.noSuperblock)
            isa::setSuperblocksEnabled(false);
        return o;
    }

    /** True when @p label should run under --runtime filtering. */
    bool
    wantRuntime(const std::string &label) const
    {
        return runtime.empty() || runtime == label;
    }

    /** True when cloud @p label should run under --cloud filtering
     *  (case-insensitive substring match). */
    bool
    wantCloud(const std::string &label) const
    {
        if (cloud.empty())
            return true;
        auto lower = [](std::string s) {
            std::transform(s.begin(), s.end(), s.begin(),
                           [](unsigned char c) {
                               return static_cast<char>(
                                   std::tolower(c));
                           });
            return s;
        };
        return lower(label).find(lower(cloud)) != std::string::npos;
    }

    /** True when any control-plane mode (live or replay) is on. */
    bool
    ctlEnabled() const
    {
        return !ctlSocket.empty() || !ctlReplay.empty();
    }

    /** The SessionOptions these flags select. */
    sim::ctl::SessionOptions
    ctlSessionOptions() const
    {
        sim::ctl::SessionOptions so;
        so.socketPath = ctlSocket;
        so.logPath = ctlLog;
        so.replayPath = ctlReplay;
        so.quantum = ctlQuantum;
        so.holdAtStart = ctlHold;
        return so;
    }

    sim::Tick
    durationOr(sim::Tick def) const
    {
        return duration != 0 ? duration : def;
    }

    int
    connectionsOr(int def) const
    {
        return connections != 0 ? connections : def;
    }

    /** The fault plan --faults selects (inert when rate == 0). */
    fault::FaultPlan
    faultPlan() const
    {
        if (faultRate <= 0.0)
            return {};
        return fault::FaultPlan::uniform(faultRate, seed);
    }

    void
    startTrace() const
    {
        if (!tracePath.empty())
            sim::trace::startCapture();
    }

    /** Stop + write the trace (provenance-stamped); returns nonzero
     *  on write failure. */
    int
    finishTrace() const
    {
        if (tracePath.empty())
            return 0;
        sim::trace::stopCapture();
        if (!writeTextFile(tracePath,
                           stampProvenance(sim::trace::exportJson(),
                                           seed, runtime))) {
            std::fprintf(stderr, "failed to write %s\n",
                         tracePath.c_str());
            return 1;
        }
        std::printf("wrote %zu trace events to %s (%llu dropped)\n",
                    sim::trace::capturedEvents(), tracePath.c_str(),
                    static_cast<unsigned long long>(
                        sim::trace::droppedEvents()));
        return 0;
    }

    // ----- observability (tracing + profiler + flight recorder) ---

    bool profiling() const { return !profilePath.empty(); }
    bool flightRecording() const { return flightSamples > 0; }
    bool sampling() const { return !timeseriesPath.empty(); }
    bool metricsOn() const
    {
        return metricsForce || !metricsPath.empty();
    }

    /** Arm every observability facility the flags selected. Call
     *  once, before the first run; pair with finishObservability. */
    void
    startObservability() const
    {
        if (!traceCat.empty())
            sim::trace::enable(sim::trace::parseCategories(traceCat));
        startTrace();
        if (profiling())
            sim::prof::enable();
        if (metricsOn())
            sim::metrics::enable();
    }

    /**
     * Announce one labeled benchmark run: subsequent attribution
     * records into the tree named @p label, and (when --flight is
     * on) the next @p flightSamples requests are sampled end to end.
     * @p ticks_per_cycle lets flight timelines render cycles.
     */
    void
    beginRun(const std::string &label,
             double ticks_per_cycle = 0.0) const
    {
        if (profiling())
            sim::prof::beginTree(label);
        if (flightRecording())
            sim::flight::arm(flightSamples, label, ticks_per_cycle);
    }

    /** Write/print everything; returns nonzero on write failure. */
    int
    finishObservability() const
    {
        int rc = finishTrace();
        if (profiling()) {
            sim::prof::disable();
            std::string collapsed = profilePath + ".collapsed";
            if (!writeTextFile(
                    profilePath,
                    stampProvenance(sim::prof::exportJson(), seed,
                                    runtime)) ||
                !sim::prof::saveCollapsed(collapsed)) {
                std::fprintf(stderr, "failed to write %s\n",
                             profilePath.c_str());
                rc = 1;
            } else {
                std::printf("wrote cycle-attribution profile to %s "
                            "(flamegraph input: %s)\n",
                            profilePath.c_str(), collapsed.c_str());
            }
        }
        if (flightRecording()) {
            std::fputs(sim::flight::renderAll().c_str(), stdout);
            sim::flight::clear();
        }
        if (!metricsPath.empty()) {
            if (!writeTextFile(
                    metricsPath,
                    stampProvenance(sim::metrics::exportJson(), seed,
                                    runtime))) {
                std::fprintf(stderr, "failed to write %s\n",
                             metricsPath.c_str());
                rc = 1;
            } else {
                std::printf("wrote %zu metric families to %s\n",
                            sim::metrics::familyCount(),
                            metricsPath.c_str());
            }
        }
        return rc;
    }

    /**
     * A closure that re-applies the selected observability flags
     * inside a sweep cell's fresh sim::SimContext (the SweepExecutor
     * cell setup): each context's trace mask, capture buffer and
     * profiler start disabled, so every cell re-arms exactly what the
     * command line selected. The flight recorder needs no re-arming
     * here — beginRun() arms it per labeled run, inside the cell.
     */
    std::function<void()>
    cellSetup() const
    {
        std::uint32_t mask =
            traceCat.empty() ? 0
                             : sim::trace::parseCategories(traceCat);
        bool capture = !tracePath.empty();
        bool profile = profiling();
        bool metricsCell = metricsOn();
        return [mask, capture, profile, metricsCell] {
            if (mask != 0)
                sim::trace::enable(mask);
            if (capture)
                sim::trace::startCapture();
            if (profile)
                sim::prof::enable();
            if (metricsCell)
                sim::metrics::enable();
        };
    }
};

/**
 * Run one simulation cell per element of @p cells — `fn(cell)` — on
 * opt.jobs host threads via sim::SweepExecutor, returning the results
 * in cell order. Each invocation of @p fn runs under a private
 * SimContext with the Options' observability flags re-applied, and
 * must communicate only through its return value (rendering, golden
 * lines and baselines belong in a sequential pass over the returned
 * vector, which keeps stdout byte-identical at any -j).
 */
template <typename CellT, typename Fn>
auto
runSweep(const Options &opt, const std::vector<CellT> &cells, Fn &&fn)
    -> std::vector<decltype(fn(cells[0]))>
{
    using R = decltype(fn(cells[0]));
    std::vector<R> out(cells.size());
    sim::SweepExecutor ex(opt.jobs);
    ex.setCellSetup(opt.cellSetup());
    for (std::size_t i = 0; i < cells.size(); ++i)
        ex.add([&out, &cells, &fn, i] { out[i] = fn(cells[i]); });
    ex.run();
    return out;
}

/**
 * Collects one JSON line per benchmark configuration and writes them
 * to --golden FILE. Every recorded quantity is simulated (request
 * counts, simulated latencies, mechanism-cycle attribution), so for
 * a fixed seed the file is byte-identical across hosts and runs —
 * tests/golden/ pins these digests and test_golden_runs fails on any
 * drift.
 */
struct GoldenLog
{
    std::string path;
    std::string buf;

    explicit GoldenLog(std::string p) : path(std::move(p)) {}

    bool enabled() const { return !path.empty(); }

    void
    add(const std::string &line)
    {
        buf += line;
        buf += '\n';
    }

    /** Write the digest; returns nonzero on failure. */
    int
    finish() const
    {
        if (!enabled())
            return 0;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f ||
            std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
            std::fprintf(stderr, "failed to write %s\n", path.c_str());
            if (f)
                std::fclose(f);
            return 1;
        }
        std::fclose(f);
        return 0;
    }
};

/**
 * Collects one time-series document per benchmark run and writes
 * them to --timeseries FILE as {"runs":[{"label":...,"data":...}]}.
 * Like GoldenLog, every value is simulated, so the file is
 * deterministic for a fixed seed.
 */
struct SeriesLog
{
    std::string path;
    std::string buf;
    std::uint64_t seed = 0;
    std::string runtime;

    explicit SeriesLog(std::string p, std::uint64_t s = 0,
                       std::string rt = "")
        : path(std::move(p)), seed(s), runtime(std::move(rt))
    {
    }

    bool enabled() const { return !path.empty(); }

    void
    add(const std::string &label, const std::string &json)
    {
        if (!enabled())
            return;
        if (!buf.empty())
            buf += ",\n";
        buf += "{\"label\":\"" + label + "\",\"data\":" + json + "}";
    }

    /** Write the document (provenance-stamped); returns nonzero on
     *  failure. */
    int
    finish() const
    {
        if (!enabled())
            return 0;
        std::string out = stampProvenance(
            "{\"runs\":[\n" + buf + "\n]}\n", seed, runtime);
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f ||
            std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
            std::fprintf(stderr, "failed to write %s\n", path.c_str());
            if (f)
                std::fclose(f);
            return 1;
        }
        std::fclose(f);
        std::printf("wrote time series to %s\n", path.c_str());
        return 0;
    }
};

/** Register the standard macro-run probes: completed requests,
 *  busy cycles, and per-mechanism cycles on the server machine. */
inline void
addMacroProbes(sim::TimeSeries &series, hw::Machine &machine,
               const load::ClosedLoopDriver &driver)
{
    using Kind = sim::TimeSeries::Kind;
    const load::ClosedLoopDriver *d = &driver;
    series.addProbe("completed", Kind::Delta, [d] {
        return static_cast<double>(d->completed());
    });
    hw::Machine *m = &machine;
    series.addProbe("busy_cycles", Kind::Delta, [m] {
        double busy = 0;
        for (int i = 0; i < m->numCpus(); ++i) {
            hw::Cpu &cpu = m->cpu(i);
            busy += static_cast<double>(
                cpu.cyclesIn(hw::CycleClass::User) +
                cpu.cyclesIn(hw::CycleClass::Kernel) +
                cpu.cyclesIn(hw::CycleClass::Hypervisor));
        }
        return busy;
    });
    for (int i = 0; i < sim::kMechCount; ++i) {
        auto mech = static_cast<sim::Mech>(i);
        series.addProbe(
            std::string(sim::mechName(mech)) + "_cycles", Kind::Delta,
            [m, mech] {
                return static_cast<double>(m->mech().cyclesOf(mech));
            });
    }
}

/** The twelve cloud configurations of §5.1 (6 runtimes x patched?),
 *  as registry names for runtimes::buildRuntime. */
inline std::vector<std::string>
cloudRuntimeNames()
{
    return {
        "docker",          "docker-unpatched",
        "xen-container",   "xen-container-unpatched",
        "x-container",     "x-container-unpatched",
        "gvisor",          "gvisor-unpatched",
        "clear-container", "clear-container-unpatched",
        "kvm-microvm",     "kvm-microvm-unpatched",
    };
}

/** Build @p name on @p spec with the options' seed + fault plan.
 *  `!result` when unavailable (Clear Containers / KVM microVMs on
 *  EC2) — result.reason says why; result.warnings lists ignored
 *  settings. */
inline runtimes::RuntimeResult
makeCloudRuntime(const std::string &name, const hw::MachineSpec &spec,
                 const Options &opt = {})
{
    runtimes::RuntimeConfig cfg;
    cfg.spec = spec;
    cfg.seed = opt.seed;
    cfg.faults = opt.faultPlan();
    return runtimes::buildRuntime(name, cfg);
}

/** Report a skipped configuration the same way everywhere. */
inline void
printUnavailable(const std::string &label,
                 const runtimes::RuntimeResult &built)
{
    std::printf("  %-28s (%s: %s)\n", label.c_str(),
                runtimes::makeStatusName(built.status),
                built.reason.c_str());
}

/** Print any buildRuntime warnings (ignored/clamped settings). */
inline void
printBuildWarnings(const runtimes::RuntimeResult &built)
{
    for (const runtimes::ConfigWarning &w : built.warnings)
        std::fprintf(stderr, "warning: %s: %s\n", w.field.c_str(),
                     w.message.c_str());
}

/** Which macro app to deploy. */
enum class MacroApp { Nginx, Memcached, Redis };

inline const char *
macroAppName(MacroApp app)
{
    switch (app) {
      case MacroApp::Nginx: return "nginx";
      case MacroApp::Memcached: return "memcached";
      case MacroApp::Redis: return "redis";
    }
    return "?";
}

/** Knobs for one macrobenchmark run. */
struct MacroRun
{
    int connections = 160;
    sim::Tick duration = 400 * sim::kTicksPerMs;
    int workers = 4;
    std::uint64_t seed = 1;
    /** Client-side robustness (0 = no request timeouts). */
    sim::Tick requestTimeout = 0;
    int retryBudget = 2;
    /** Attribute the server machine's mechanism counters. */
    bool observeMech = false;
    /**
     * Intra-sim lookahead domains (see sim::DomainSet). 1 runs the
     * whole world on the machine's queue, exactly as before. N > 1
     * puts the server machine in domain 0 (the caller's thread) and
     * deals client machines round-robin across domains 1..N-1, each
     * advanced on its own host thread in windows bounded by the
     * cross-machine link latency. Requires a plain run: no hook, no
     * series, no faults (runMacro asserts).
     */
    int domains = 1;
    /** When non-null, sample the standard macro probes into this
     *  series for the duration of the run (see addMacroProbes). The
     *  probes reference run-local state: do not restart the series
     *  after runMacro returns. */
    sim::TimeSeries *series = nullptr;
    /**
     * When hook is set, it runs as an event at sim time hookAt —
     * the checkpoint/restore attachment point. The hook event is
     * posted immediately after the driver-start event, so it shifts
     * every later event's tie-break sequence by exactly one: a
     * uniform, order-preserving shift that leaves the run's outputs
     * byte-identical to a hook-free run (the hook itself must have
     * no simulated side effects — capture and verify both qualify).
     */
    sim::Tick hookAt = 0;
    std::function<void()> hook;
    /**
     * Additional timed events posted right after the hook event, in
     * order (fault storms, load-spike starts, SLO evaluations —
     * fig_slo). Same determinism argument as hook: posting them
     * shifts later tie-break sequence numbers uniformly, so a run
     * without them is untouched and a run with them is byte-identical
     * at any -j. Incompatible with domains > 1.
     */
    std::vector<std::pair<sim::Tick, std::function<void()>>>
        extraEvents;
    /**
     * Called once with the driver right after construction (before
     * any event runs) — the control plane uses it to hold a pointer
     * for live status queries. Must not start/steer the driver.
     */
    std::function<void(load::ClosedLoopDriver &)> driverObserver;
};

/** Deploy @p app on @p rt and drive it; returns the load result. */
inline load::LoadResult
runMacro(Runtime &rt, MacroApp app, const MacroRun &run)
{
    runtimes::ContainerOpts copts;
    copts.name = macroAppName(app);
    copts.image = apps::glibcImage("img");
    copts.vcpus = 4;
    copts.memBytes = 512ull << 20;
    runtimes::RtContainer *c = rt.createContainer(copts);
    if (!c) {
        std::fprintf(stderr, "%s: container failed to boot\n",
                     rt.name().c_str());
        return {};
    }

    std::unique_ptr<apps::NginxApp> nginx;
    std::unique_ptr<apps::KvApp> kv;
    guestos::Port port = 0;
    load::WorkloadSpec spec;

    switch (app) {
      case MacroApp::Nginx: {
        apps::NginxApp::Config ncfg;
        ncfg.workers = run.workers;
        nginx = std::make_unique<apps::NginxApp>(ncfg);
        nginx->deploy(*c);
        port = 80;
        // Apache ab: no keepalive.
        spec = load::abSpec(guestos::SockAddr{rt.hostIp(), 8080},
                            run.connections, run.duration);
        break;
      }
      case MacroApp::Memcached: {
        kv = std::make_unique<apps::KvApp>(
            apps::KvApp::memcachedConfig());
        kv->deploy(*c);
        port = 11211;
        spec = load::memtierSpec(guestos::SockAddr{rt.hostIp(), 8080},
                                 run.connections, run.duration);
        break;
      }
      case MacroApp::Redis: {
        kv = std::make_unique<apps::KvApp>(apps::KvApp::redisConfig());
        kv->deploy(*c);
        port = 6379;
        spec = load::memtierSpec(guestos::SockAddr{rt.hostIp(), 8080},
                                 run.connections, run.duration);
        break;
      }
    }
    rt.exposePort(c, 8080, port);

    spec.requestTimeout = run.requestTimeout;
    spec.retryBudget = run.retryBudget;
    spec.metricRuntime = rt.name();
    spec.metricApp = macroAppName(app);

    // Mirror the per-cell mechanism counters and queue depths into
    // the labeled-metrics registry as scrape-time collectors (zero
    // cost between scrapes). Their callbacks reference run-local
    // objects, so they are finalized before runMacro returns.
    if (sim::metrics::enabled()) {
        namespace m = sim::metrics;
        const std::string &rtName = rt.name();
        const char *appName = macroAppName(app);
        hw::Machine *mach = &rt.machine();
        for (int i = 0; i < sim::kMechCount; ++i) {
            auto mech = static_cast<sim::Mech>(i);
            m::addCollector(
                "xc_mech_cycles_total",
                "cycles attributed to each isolation mechanism",
                m::Kind::Counter, {"runtime", "mech"},
                {rtName, sim::mechName(mech)}, [mach, mech] {
                    return static_cast<double>(
                        mach->mech().cyclesOf(mech));
                });
        }
        guestos::NetFabric *fab = &rt.fabric();
        m::addCollector("xc_net_backlog",
                        "accept-backlog depth summed over listeners",
                        m::Kind::Gauge, {"runtime"}, {rtName},
                        [fab] {
                            return static_cast<double>(
                                fab->totalBacklog());
                        });
        guestos::GuestKernel *k = &c->kernel();
        m::addCollector("xc_runq_depth",
                        "runnable threads queued in the guest kernel",
                        m::Kind::Gauge, {"runtime", "app"},
                        {rtName, appName}, [k] {
                            return static_cast<double>(
                                k->runQueueLength());
                        });
        if (hw::CorePool *pool = k->schedPool()) {
            m::addCollector(
                "xc_cpu_pool_waiting",
                "vCPUs waiting for a core in the scheduling pool",
                m::Kind::Gauge, {"runtime"}, {rtName}, [pool] {
                    return static_cast<double>(pool->waiting());
                });
        }
    }

    const sim::Tick limit = 10 * sim::kTicksPerMs + spec.warmup +
                            spec.duration + 50 * sim::kTicksPerMs;

    if (run.domains > 1) {
        // Domain-parallel path: the server machine keeps its queue
        // (domain 0, this thread); all client machines live on
        // separate queues advanced on their own host threads. Only
        // the plain measurement configuration is supported.
        XC_ASSERT(!run.hook && run.series == nullptr &&
                  !run.driverObserver && run.extraEvents.empty());
        const int n = run.domains;
        std::vector<std::unique_ptr<sim::EventQueue>> clientQs;
        for (int d = 1; d < n; ++d)
            clientQs.push_back(std::make_unique<sim::EventQueue>());
        sim::DomainSet ds(n);
        ds.attach(0, &rt.machine().events());
        for (int d = 1; d < n; ++d)
            ds.attach(d, clientQs[static_cast<std::size_t>(d - 1)].get());
        // Machine 0 is the server; clients (ids 1+) deal round-robin
        // over domains 1..n-1, so every cross-domain link is a
        // cross-machine link and the window is its latency.
        rt.fabric().attachDomains(&ds, [n](int m) {
            return m == 0 ? 0 : 1 + (m - 1) % (n - 1);
        });

        // The driver's shared state (latency vector, error counters,
        // rng) is mutated from wire callbacks, which execute in the
        // domain owning each client machine — single-threaded only
        // when every client lands in ONE domain. So runMacro caps at
        // two domains (server || all clients); DomainSet itself
        // handles any count for worlds with partitionable load.
        XC_ASSERT(n == 2 &&
                  "runMacro --domains supports exactly 2 domains: "
                  "server + one client domain");
        sim::EventQueue &clientQ = *clientQs[0];
        load::ClosedLoopDriver driver(rt.fabric(), spec, run.seed,
                                      &clientQ);
        if (run.observeMech) {
            driver.observeMech(rt.machine().mech());
            // Baseline must be read in the server's domain at the
            // start tick; start() itself runs on the client queue.
            driver.deferMechBaseline();
            rt.machine().events().post(
                10 * sim::kTicksPerMs,
                [&] { driver.captureMechBaseline(); });
        }
        clientQ.post(10 * sim::kTicksPerMs, [&] { driver.start(); });
        ds.run(limit, rt.fabric().config().crossMachineLatency);
        rt.fabric().attachDomains(nullptr, {});
        return driver.collect();
    }

    load::ClosedLoopDriver driver(rt.fabric(), spec, run.seed);
    if (run.driverObserver)
        run.driverObserver(driver);
    if (run.observeMech)
        driver.observeMech(rt.machine().mech());
    if (run.series != nullptr) {
        addMacroProbes(*run.series, rt.machine(), driver);
        run.series->start();
    }
    rt.machine().events().post(10 * sim::kTicksPerMs,
                               [&] { driver.start(); });
    if (run.hookAt != 0 && run.hook)
        rt.machine().events().post(run.hookAt, [&run] { run.hook(); });
    for (const auto &ev : run.extraEvents)
        rt.machine().events().post(ev.first, ev.second);
    rt.machine().events().runUntil(limit);
    if (run.series != nullptr)
        run.series->stop();
    if (sim::metrics::enabled())
        sim::metrics::finalizeCollectors();
    return driver.collect();
}

/** Back-compat shim for the positional-argument call sites. */
inline load::LoadResult
runMacro(Runtime &rt, MacroApp app, int connections,
         sim::Tick duration = 400 * sim::kTicksPerMs, int workers = 4)
{
    MacroRun run;
    run.connections = connections;
    run.duration = duration;
    run.workers = workers;
    return runMacro(rt, app, run);
}

/** Print one paper-style relative row. */
inline void
printRelativeRow(const std::string &label, double value,
                 double baseline, const char *unit)
{
    std::printf("  %-28s %12.0f %s   (%.2fx vs docker)\n",
                label.c_str(), value, unit,
                baseline > 0 ? value / baseline : 0.0);
}

} // namespace xc::bench

#endif // XC_BENCH_COMMON_H
