#ifndef XC_BENCH_COMMON_H
#define XC_BENCH_COMMON_H

/**
 * @file
 * Shared harness for the paper-reproduction benchmarks: runtime
 * factories for every configuration of §5.1 and helpers that deploy
 * an application, drive it with a load generator, and report
 * paper-style rows.
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/images.h"
#include "apps/kv.h"
#include "apps/nginx.h"
#include "apps/php_mysql.h"
#include "load/driver.h"
#include "runtimes/clear_container.h"
#include "runtimes/docker.h"
#include "runtimes/graphene.h"
#include "runtimes/gvisor.h"
#include "runtimes/unikernel.h"
#include "runtimes/x_container.h"
#include "runtimes/xen_container.h"

namespace xc::bench {

using runtimes::Runtime;

/** The ten cloud configurations of §5.1 (5 runtimes x patched?). */
struct RuntimeKind
{
    std::string label;
    /** nullptr when unavailable on this machine (Clear on EC2). */
    std::function<std::unique_ptr<Runtime>(const hw::MachineSpec &)>
        make;
};

inline std::vector<RuntimeKind>
cloudRuntimes()
{
    using namespace runtimes;
    std::vector<RuntimeKind> kinds;
    auto add = [&](std::string label,
                   std::function<std::unique_ptr<Runtime>(
                       const hw::MachineSpec &)> make) {
        kinds.push_back(RuntimeKind{std::move(label), std::move(make)});
    };
    add("docker", [](const hw::MachineSpec &spec) {
        DockerRuntime::Options o;
        o.spec = spec;
        return std::make_unique<DockerRuntime>(o);
    });
    add("docker-unpatched", [](const hw::MachineSpec &spec) {
        DockerRuntime::Options o;
        o.spec = spec;
        o.meltdownPatched = false;
        return std::make_unique<DockerRuntime>(o);
    });
    add("xen-container", [](const hw::MachineSpec &spec) {
        XenContainerRuntime::Options o;
        o.spec = spec;
        return std::make_unique<XenContainerRuntime>(o);
    });
    add("xen-container-unpatched", [](const hw::MachineSpec &spec) {
        XenContainerRuntime::Options o;
        o.spec = spec;
        o.meltdownPatched = false;
        return std::make_unique<XenContainerRuntime>(o);
    });
    add("x-container", [](const hw::MachineSpec &spec) {
        XContainerRuntime::Options o;
        o.spec = spec;
        return std::make_unique<XContainerRuntime>(o);
    });
    add("x-container-unpatched", [](const hw::MachineSpec &spec) {
        XContainerRuntime::Options o;
        o.spec = spec;
        o.meltdownPatched = false;
        return std::make_unique<XContainerRuntime>(o);
    });
    add("gvisor", [](const hw::MachineSpec &spec) {
        GvisorRuntime::Options o;
        o.spec = spec;
        return std::make_unique<GvisorRuntime>(o);
    });
    add("gvisor-unpatched", [](const hw::MachineSpec &spec) {
        GvisorRuntime::Options o;
        o.spec = spec;
        o.meltdownPatched = false;
        return std::make_unique<GvisorRuntime>(o);
    });
    add("clear-container",
        [](const hw::MachineSpec &spec)
            -> std::unique_ptr<Runtime> {
            if (!runtimes::ClearContainerRuntime::availableOn(spec))
                return nullptr;
            ClearContainerRuntime::Options o;
            o.spec = spec;
            return std::make_unique<ClearContainerRuntime>(o);
        });
    add("clear-container-unpatched",
        [](const hw::MachineSpec &spec)
            -> std::unique_ptr<Runtime> {
            if (!runtimes::ClearContainerRuntime::availableOn(spec))
                return nullptr;
            ClearContainerRuntime::Options o;
            o.spec = spec;
            o.hostMeltdownPatched = false;
            return std::make_unique<ClearContainerRuntime>(o);
        });
    return kinds;
}

/** Which macro app to deploy. */
enum class MacroApp { Nginx, Memcached, Redis };

inline const char *
macroAppName(MacroApp app)
{
    switch (app) {
      case MacroApp::Nginx: return "nginx";
      case MacroApp::Memcached: return "memcached";
      case MacroApp::Redis: return "redis";
    }
    return "?";
}

/** Deploy @p app on @p rt and drive it; returns the load result. */
inline load::LoadResult
runMacro(Runtime &rt, MacroApp app, int connections,
         sim::Tick duration = 400 * sim::kTicksPerMs, int workers = 4)
{
    runtimes::ContainerOpts copts;
    copts.name = macroAppName(app);
    copts.image = apps::glibcImage("img");
    copts.vcpus = 4;
    copts.memBytes = 512ull << 20;
    runtimes::RtContainer *c = rt.createContainer(copts);
    if (!c) {
        std::fprintf(stderr, "%s: container failed to boot\n",
                     rt.name().c_str());
        return {};
    }

    std::unique_ptr<apps::NginxApp> nginx;
    std::unique_ptr<apps::KvApp> kv;
    guestos::Port port = 0;
    load::WorkloadSpec spec;

    switch (app) {
      case MacroApp::Nginx: {
        apps::NginxApp::Config ncfg;
        ncfg.workers = workers;
        nginx = std::make_unique<apps::NginxApp>(ncfg);
        nginx->deploy(*c);
        port = 80;
        // Apache ab: no keepalive.
        spec = load::abSpec(guestos::SockAddr{rt.hostIp(), 8080},
                            connections, duration);
        break;
      }
      case MacroApp::Memcached: {
        kv = std::make_unique<apps::KvApp>(
            apps::KvApp::memcachedConfig());
        kv->deploy(*c);
        port = 11211;
        spec = load::memtierSpec(guestos::SockAddr{rt.hostIp(), 8080},
                                 connections, duration);
        break;
      }
      case MacroApp::Redis: {
        kv = std::make_unique<apps::KvApp>(apps::KvApp::redisConfig());
        kv->deploy(*c);
        port = 6379;
        spec = load::memtierSpec(guestos::SockAddr{rt.hostIp(), 8080},
                                 connections, duration);
        break;
      }
    }
    rt.exposePort(c, 8080, port);

    load::ClosedLoopDriver driver(rt.fabric(), spec);
    rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(10 * sim::kTicksPerMs + spec.warmup +
                                   spec.duration +
                                   50 * sim::kTicksPerMs);
    return driver.collect();
}

/** Print one paper-style relative row. */
inline void
printRelativeRow(const std::string &label, double value,
                 double baseline, const char *unit)
{
    std::printf("  %-28s %12.0f %s   (%.2fx vs docker)\n",
                label.c_str(), value, unit,
                baseline > 0 ? value / baseline : 0.0);
}

} // namespace xc::bench

#endif // XC_BENCH_COMMON_H
