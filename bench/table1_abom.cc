/**
 * @file
 * Table 1: efficacy of the Automatic Binary Optimization Module.
 *
 * For each of the twelve applications the paper tested, deploy it in
 * a fresh X-Container (its own X-Kernel with its own ABOM counters,
 * like the paper's per-application counter), drive it with its usual
 * workload generator, and report the fraction of system-call
 * invocations ABOM converted into function calls.
 *
 * Paper: >=92% for all but MySQL; MySQL 44.6% online, 92.2% after
 * the offline tool patches libpthread's read/write wrappers.
 */

#include <cstdio>

#include "apps/images.h"
#include "apps/php_mysql.h"
#include "apps/nginx.h"
#include "apps/roster.h"
#include "core/offline_patch.h"
#include "load/driver.h"
#include "runtimes/x_container.h"

using namespace xc;

namespace {

struct Row
{
    const char *app;
    const char *impl;
    const char *benchmark;
    double paperPct;
    double measuredPct;
};

/** Drive @p port on @p rt for a short window. */
void
drive(runtimes::XContainerRuntime &rt, runtimes::RtContainer *c,
      guestos::Port priv, int conns, sim::Tick duration)
{
    rt.exposePort(c, 9000, priv);
    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 9000}, conns, duration);
    spec.requestBytes = 90;
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(10 * sim::kTicksPerMs +
                                   spec.warmup + spec.duration +
                                   50 * sim::kTicksPerMs);
}

double
measureServer(apps::RosterServerApp::Config cfg)
{
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.name = cfg.name;
    copts.image = cfg.image;
    copts.vcpus = cfg.threads;
    copts.memBytes = 256ull << 20;
    auto *c = rt.createContainer(copts);
    apps::RosterServerApp app(cfg);
    app.deploy(*c);
    drive(rt, c, cfg.port, 32, 250 * sim::kTicksPerMs);
    return 100.0 * rt.xkernel().abom().stats().reductionRatio();
}

double
measureNginx()
{
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.name = "nginx";
    copts.image = apps::glibcImage("img");
    copts.vcpus = 1;
    copts.memBytes = 256ull << 20;
    auto *c = rt.createContainer(copts);
    apps::NginxApp::Config ncfg;
    ncfg.workers = 1;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*c);
    // Table 1 drives NGINX with Apache ab (fresh connections).
    rt.exposePort(c, 9000, 80);
    load::WorkloadSpec spec = load::abSpec(
        guestos::SockAddr{rt.hostIp(), 9000}, 32,
        250 * sim::kTicksPerMs);
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(spec.warmup + spec.duration +
                                   60 * sim::kTicksPerMs);
    return 100.0 * rt.xkernel().abom().stats().reductionRatio();
}

double
measureMysql(bool offline_patched)
{
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.name = "mysql";
    copts.image = apps::glibcImage("img");
    copts.vcpus = 1;
    copts.memBytes = 256ull << 20;
    auto *c = rt.createContainer(copts);
    apps::MysqlApp mysql;
    mysql.deploy(*c);
    if (offline_patched) {
        // The paper's offline tool: rewrite libpthread's read/write
        // wrapper locations in the binary (before it runs — wrappers
        // must exist in the image first, as in a real ELF file).
        auto &stubs = *mysql.image()->stubs;
        for (int nr : {guestos::NR_read, guestos::NR_write,
                       guestos::NR_recvfrom, guestos::NR_sendto}) {
            stubs.ensure(nr, mysql.image()->wrapperKind(nr));
        }
        auto report = core::offlinePatchOnly(
            stubs, {guestos::NR_read, guestos::NR_write,
                    guestos::NR_recvfrom, guestos::NR_sendto});
        if (report.sitesPatched == 0)
            std::fprintf(stderr, "offline tool patched nothing!\n");
    }
    drive(rt, c, 3306, 32, 250 * sim::kTicksPerMs);
    return 100.0 * rt.xkernel().abom().stats().reductionRatio();
}

double
measureKernelCompile()
{
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.name = "kbuild";
    copts.image = apps::glibcImage("img");
    copts.vcpus = 1;
    copts.memBytes = 512ull << 20;
    auto *c = rt.createContainer(copts);
    apps::KernelCompileApp kc;
    kc.deploy(*c);
    rt.machine().events().runUntil(20 * sim::kTicksPerSec);
    if (!kc.finished())
        std::fprintf(stderr, "kernel compile did not finish\n");
    return 100.0 * rt.xkernel().abom().stats().reductionRatio();
}

} // namespace

int
main()
{
    std::printf("Table 1: ABOM system-call reduction "
                "(%% of invocations converted to function calls)\n\n");
    std::printf("%-18s %-8s %-24s %9s %9s\n", "Application", "Impl",
                "Benchmark", "paper", "measured");

    auto emit = [](const Row &row) {
        std::printf("%-18s %-8s %-24s %8.1f%% %8.1f%%\n", row.app,
                    row.impl, row.benchmark, row.paperPct,
                    row.measuredPct);
    };

    emit({"memcached", "C/C++", "memtier_benchmark", 100.0,
          measureServer(apps::memcachedProfile())});
    emit({"Redis", "C/C++", "redis-benchmark", 100.0,
          measureServer(apps::redisProfile())});
    emit({"etcd", "Go", "etcd-benchmark", 100.0,
          measureServer(apps::etcdProfile())});
    emit({"MongoDB", "C/C++", "YCSB", 100.0,
          measureServer(apps::mongodbProfile())});
    emit({"InfluxDB", "Go", "influxdb-comparisons", 100.0,
          measureServer(apps::influxdbProfile())});
    emit({"Postgres", "C/C++", "pgbench", 99.8,
          measureServer(apps::postgresProfile())});
    emit({"Fluentd", "Ruby", "fluentd-benchmark", 99.4,
          measureServer(apps::fluentdProfile())});
    emit({"Elasticsearch", "Java", "es-stress-test", 98.8,
          measureServer(apps::elasticsearchProfile())});
    emit({"RabbitMQ", "Erlang", "rabbitmq-perf-test", 98.6,
          measureServer(apps::rabbitmqProfile())});
    emit({"Kernel Compile", "tools", "tiny config build", 95.3,
          measureKernelCompile()});
    emit({"Nginx", "C/C++", "Apache ab", 92.3, measureNginx()});
    emit({"MySQL", "C/C++", "sysbench", 44.6, measureMysql(false)});
    emit({"MySQL (manual)", "C/C++", "sysbench + offline tool", 92.2,
          measureMysql(true)});
    return 0;
}
