/**
 * @file
 * Ablation: which X-Container mechanism buys what (DESIGN.md's
 * design-choice index). Starting from the full system and disabling
 * one mechanism at a time on the raw-syscall and NGINX workloads:
 *
 *  - ABOM off: syscalls keep taking the trap-and-forward slow path
 *    (still no address-space switch — the §4.2 saving remains).
 *  - For reference: Xen-Container = no X-Kernel ABI changes at all.
 */

#include "common.h"

#include "load/unixbench.h"
#include "runtimes/x_container.h"
#include "runtimes/xen_container.h"

using namespace xc;
using namespace xc::bench;

namespace {

double
syscallRate(runtimes::Runtime &rt)
{
    return load::runMicro(rt, load::MicroKind::Syscall,
                          150 * sim::kTicksPerMs, 1)
        .opsPerSec;
}

double
nginxRate(runtimes::Runtime &rt)
{
    return runMacro(rt, MacroApp::Nginx, 160, 250 * sim::kTicksPerMs)
        .throughput;
}

} // namespace

int
main()
{
    auto spec = hw::MachineSpec::ec2C4_2xlarge();

    std::printf("Ablation: X-Container mechanisms\n\n");
    std::printf("%-34s %14s %14s\n", "configuration", "syscall-loops/s",
                "nginx-req/s");

    double full_sys = 0, full_nginx = 0;
    {
        runtimes::XContainerRuntime::Options o;
        o.spec = spec;
        runtimes::XContainerRuntime rt(o);
        full_sys = syscallRate(rt);
    }
    {
        runtimes::XContainerRuntime::Options o;
        o.spec = spec;
        runtimes::XContainerRuntime rt(o);
        full_nginx = nginxRate(rt);
    }
    std::printf("%-34s %14.0f %14.0f\n", "x-container (full)",
                full_sys, full_nginx);

    double noabom_sys = 0, noabom_nginx = 0;
    {
        runtimes::XContainerRuntime::Options o;
        o.spec = spec;
        o.abomEnabled = false;
        runtimes::XContainerRuntime rt(o);
        noabom_sys = syscallRate(rt);
    }
    {
        runtimes::XContainerRuntime::Options o;
        o.spec = spec;
        o.abomEnabled = false;
        runtimes::XContainerRuntime rt(o);
        noabom_nginx = nginxRate(rt);
    }
    std::printf("%-34s %14.0f %14.0f   (%.2fx / %.2fx of full)\n",
                "  - ABOM disabled", noabom_sys, noabom_nginx,
                noabom_sys / full_sys, noabom_nginx / full_nginx);

    double pv_sys = 0, pv_nginx = 0;
    {
        runtimes::XenContainerRuntime::Options o;
        o.spec = spec;
        runtimes::XenContainerRuntime rt(o);
        pv_sys = syscallRate(rt);
    }
    {
        runtimes::XenContainerRuntime::Options o;
        o.spec = spec;
        runtimes::XenContainerRuntime rt(o);
        pv_nginx = nginxRate(rt);
    }
    std::printf("%-34s %14.0f %14.0f   (%.2fx / %.2fx of full)\n",
                "  - all ABI changes (stock Xen PV)", pv_sys, pv_nginx,
                pv_sys / full_sys, pv_nginx / full_nginx);

    std::printf("\nInterpretation: ABOM contributes the bulk of the "
                "syscall win; removing the\nsame-address-space ABI "
                "too (stock PV) pays the §4.1 forwarding penalty on "
                "top.\n");
    return 0;
}
