#ifndef XC_BENCH_PROVENANCE_H
#define XC_BENCH_PROVENANCE_H

/**
 * @file
 * Common provenance header for every JSON export (trace, profile,
 * timeseries, metrics, perf_report): seed, runtime, git describe and
 * build flavor, so an artifact found on disk identifies the build
 * and run that produced it.
 *
 * Deliberately NOT stamped on --golden digests: goldens are
 * byte-compared against files committed from other checkouts, so
 * they must stay provenance-free (cmake/run_profile_golden.cmake
 * strips the header before comparing profiles for the same reason).
 *
 * XC_GIT_DESCRIBE / XC_BUILD_FLAGS are configure-time compile
 * definitions (bench/CMakeLists.txt); standalone builds fall back to
 * "unknown".
 */

#include <cstdint>
#include <cstdio>
#include <string>

#ifndef XC_GIT_DESCRIBE
#define XC_GIT_DESCRIBE "unknown"
#endif
#ifndef XC_BUILD_FLAGS
#define XC_BUILD_FLAGS "unknown"
#endif

namespace xc::bench {

/** The provenance header as one JSON object. */
inline std::string
provenanceObject(std::uint64_t seed, const std::string &runtime = "")
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(seed));
    std::string out = "{\"seed\":";
    out += buf;
    out += ",\"runtime\":\"" + runtime + "\"";
    out += ",\"git\":\"" XC_GIT_DESCRIBE "\"";
    out += ",\"build\":\"" XC_BUILD_FLAGS "\"}";
    return out;
}

/**
 * Splice `"provenance": {...}` as the first member of @p json's
 * top-level object. Documents that do not start with an object pass
 * through unchanged.
 */
inline std::string
stampProvenance(std::string json, std::uint64_t seed,
                const std::string &runtime = "")
{
    std::size_t brace = json.find('{');
    if (brace == std::string::npos)
        return json;
    std::string head = "\"provenance\":" +
                       provenanceObject(seed, runtime);
    // Keep "{}" valid: only add the separating comma when the object
    // already has members.
    std::size_t next = json.find_first_not_of(" \t\n", brace + 1);
    if (next != std::string::npos && json[next] != '}')
        head += ",";
    json.insert(brace + 1, head);
    return json;
}

} // namespace xc::bench

#endif // XC_BENCH_PROVENANCE_H
