/**
 * @file
 * Figure 5: relative performance of the remaining microbenchmarks
 * (Execl, File Copy, Pipe Throughput, Context Switching, Process
 * Creation, iperf), normalized to patched Docker, single and
 * 4-copy concurrent, on EC2 and GCE machine models.
 *
 * Paper shape: X-Containers at or above Docker on execl / file copy
 * / pipe; *below* Docker on process creation and context switching
 * (page-table operations go through the X-Kernel); the Meltdown
 * patch does not affect X-Containers / Clear Containers.
 *
 * Cells run in parallel under --jobs/-j; rendering is sequential in
 * cell order, so output is byte-identical at any -j.
 */

#include "common.h"

#include "load/iperf.h"
#include "load/unixbench.h"

using namespace xc;
using namespace xc::bench;

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);

    struct Cloud
    {
        const char *label;
        hw::MachineSpec spec;
    };
    std::vector<Cloud> clouds = {
        {"Amazon EC2", hw::MachineSpec::ec2C4_2xlarge()},
        {"Google GCE", hw::MachineSpec::gceCustom4()},
    };
    std::vector<int> copiesList = {1, 4};
    // --quick: one cloud, single copy, short window.
    if (opt.quick) {
        clouds.resize(1);
        copiesList = {1};
    }
    const load::MicroKind kinds[] = {
        load::MicroKind::Execl,
        load::MicroKind::FileCopy,
        load::MicroKind::PipeThroughput,
        load::MicroKind::ContextSwitch,
        load::MicroKind::ProcessCreation,
    };
    constexpr int kNumKinds =
        static_cast<int>(sizeof kinds / sizeof kinds[0]);

    std::printf("Figure 5: relative microbenchmark performance "
                "(higher is better)\n\n");

    opt.startObservability();

    sim::Tick duration =
        opt.durationOr((opt.quick ? 40 : 150) * sim::kTicksPerMs);

    struct Cell
    {
        std::size_t cloud;
        int copies;
        int kind; ///< index into kinds; kNumKinds = iperf
        std::string name;
    };
    struct Result
    {
        bool available = false;
        load::MicroResult micro;
        double gbps = 0.0;
    };

    std::vector<Cell> cells;
    for (std::size_t ci = 0; ci < clouds.size(); ++ci) {
        for (int copies : copiesList) {
            for (int k = 0; k <= kNumKinds; ++k)
                for (const std::string &name : cloudRuntimeNames())
                    if (opt.wantRuntime(name))
                        cells.push_back(Cell{ci, copies, k, name});
        }
    }

    std::vector<Result> results = runSweep(
        opt, cells, [&](const Cell &cell) -> Result {
            const Cloud &cloud = clouds[cell.cloud];
            Result res;
            auto rt = makeCloudRuntime(cell.name, cloud.spec, opt);
            if (!rt)
                return res;
            res.available = true;
            const char *kindName = cell.kind < kNumKinds
                                       ? load::microKindName(
                                             kinds[cell.kind])
                                       : "iperf";
            char label[96];
            std::snprintf(label, sizeof label, "%s/%s/%s/x%d",
                          cloud.label, kindName, cell.name.c_str(),
                          cell.copies);
            opt.beginRun(label, static_cast<double>(
                                    cloud.spec.periodTicks()));
            if (cell.kind < kNumKinds) {
                res.micro = load::runMicro(*rt, kinds[cell.kind],
                                           duration, cell.copies);
            } else {
                res.gbps = load::runIperf(*rt, duration, cell.copies)
                               .gbitPerSec;
            }
            return res;
        });

    std::size_t i = 0;
    for (std::size_t ci = 0; ci < clouds.size(); ++ci) {
        const Cloud &cloud = clouds[ci];
        for (int copies : copiesList) {
            std::printf("===== %s, %s =====\n", cloud.label,
                        copies == 1 ? "single" : "concurrent(4)");
            for (int k = 0; k < kNumKinds; ++k) {
                std::printf("-- %s --\n",
                            load::microKindName(kinds[k]));
                double docker = 0.0;
                for (const std::string &name : cloudRuntimeNames()) {
                    if (!opt.wantRuntime(name))
                        continue;
                    const Result &res = results[i++];
                    if (!res.available) {
                        std::printf("  %-28s n/a\n", name.c_str());
                        continue;
                    }
                    const load::MicroResult &r = res.micro;
                    if (name == "docker")
                        docker = r.opsPerSec;
                    std::printf(
                        "  %-28s %12.0f ops/s  (%5.2fx)\n",
                        name.c_str(), r.opsPerSec,
                        docker > 0 ? r.opsPerSec / docker : 0.0);
                    if (opt.mech)
                        std::printf("%s", r.mechReport().c_str());
                }
            }
            // iperf throughput.
            std::printf("-- iperf --\n");
            double docker_gbps = 0.0;
            for (const std::string &name : cloudRuntimeNames()) {
                if (!opt.wantRuntime(name))
                    continue;
                const Result &res = results[i++];
                if (!res.available) {
                    std::printf("  %-28s n/a\n", name.c_str());
                    continue;
                }
                if (name == "docker")
                    docker_gbps = res.gbps;
                std::printf("  %-28s %10.2f Gbit/s  (%5.2fx)\n",
                            name.c_str(), res.gbps,
                            docker_gbps > 0 ? res.gbps / docker_gbps
                                            : 0.0);
            }
            std::printf("\n");
        }
    }

    return opt.finishObservability();
}
