/**
 * @file
 * Figure 5: relative performance of the remaining microbenchmarks
 * (Execl, File Copy, Pipe Throughput, Context Switching, Process
 * Creation, iperf), normalized to patched Docker, single and
 * 4-copy concurrent, on EC2 and GCE machine models.
 *
 * Paper shape: X-Containers at or above Docker on execl / file copy
 * / pipe; *below* Docker on process creation and context switching
 * (page-table operations go through the X-Kernel); the Meltdown
 * patch does not affect X-Containers / Clear Containers.
 */

#include "common.h"

#include <cstring>

#include "load/iperf.h"
#include "load/unixbench.h"
#include "sim/trace.h"

using namespace xc;
using namespace xc::bench;

int
main(int argc, char **argv)
{
    std::string trace_path;
    bool mech_report = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--mech") == 0) {
            mech_report = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace out.json] [--mech]\n",
                         argv[0]);
            return 2;
        }
    }

    struct Cloud
    {
        const char *label;
        hw::MachineSpec spec;
    };
    const Cloud clouds[] = {
        {"Amazon EC2", hw::MachineSpec::ec2C4_2xlarge()},
        {"Google GCE", hw::MachineSpec::gceCustom4()},
    };
    const load::MicroKind kinds[] = {
        load::MicroKind::Execl,
        load::MicroKind::FileCopy,
        load::MicroKind::PipeThroughput,
        load::MicroKind::ContextSwitch,
        load::MicroKind::ProcessCreation,
    };

    std::printf("Figure 5: relative microbenchmark performance "
                "(higher is better)\n\n");

    if (!trace_path.empty())
        sim::trace::startCapture();

    for (const Cloud &cloud : clouds) {
        for (int copies : {1, 4}) {
            std::printf("===== %s, %s =====\n", cloud.label,
                        copies == 1 ? "single" : "concurrent(4)");
            for (load::MicroKind kind : kinds) {
                std::printf("-- %s --\n", load::microKindName(kind));
                double docker = 0.0;
                for (auto &rk : cloudRuntimes()) {
                    auto rt = rk.make(cloud.spec);
                    if (!rt) {
                        std::printf("  %-28s n/a\n", rk.label.c_str());
                        continue;
                    }
                    auto r = load::runMicro(*rt, kind,
                                            150 * sim::kTicksPerMs,
                                            copies);
                    if (rk.label == "docker")
                        docker = r.opsPerSec;
                    std::printf(
                        "  %-28s %12.0f ops/s  (%5.2fx)\n",
                        rk.label.c_str(), r.opsPerSec,
                        docker > 0 ? r.opsPerSec / docker : 0.0);
                    if (mech_report)
                        std::printf("%s", r.mechReport().c_str());
                }
            }
            // iperf throughput.
            std::printf("-- iperf --\n");
            double docker_gbps = 0.0;
            for (auto &rk : cloudRuntimes()) {
                auto rt = rk.make(cloud.spec);
                if (!rt) {
                    std::printf("  %-28s n/a\n", rk.label.c_str());
                    continue;
                }
                auto r = load::runIperf(*rt, 150 * sim::kTicksPerMs,
                                        copies);
                if (rk.label == "docker")
                    docker_gbps = r.gbitPerSec;
                std::printf("  %-28s %10.2f Gbit/s  (%5.2fx)\n",
                            rk.label.c_str(), r.gbitPerSec,
                            docker_gbps > 0
                                ? r.gbitPerSec / docker_gbps
                                : 0.0);
            }
            std::printf("\n");
        }
    }

    if (!trace_path.empty()) {
        sim::trace::stopCapture();
        if (!sim::trace::saveJson(trace_path)) {
            std::fprintf(stderr, "failed to write %s\n",
                        trace_path.c_str());
            return 1;
        }
        std::printf("wrote %zu trace events to %s (%llu dropped)\n",
                    sim::trace::capturedEvents(), trace_path.c_str(),
                    static_cast<unsigned long long>(
                        sim::trace::droppedEvents()));
    }
    return 0;
}
