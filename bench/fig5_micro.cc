/**
 * @file
 * Figure 5: relative performance of the remaining microbenchmarks
 * (Execl, File Copy, Pipe Throughput, Context Switching, Process
 * Creation, iperf), normalized to patched Docker, single and
 * 4-copy concurrent, on EC2 and GCE machine models.
 *
 * Paper shape: X-Containers at or above Docker on execl / file copy
 * / pipe; *below* Docker on process creation and context switching
 * (page-table operations go through the X-Kernel); the Meltdown
 * patch does not affect X-Containers / Clear Containers.
 */

#include "common.h"

#include "load/iperf.h"
#include "load/unixbench.h"

using namespace xc;
using namespace xc::bench;

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);

    struct Cloud
    {
        const char *label;
        hw::MachineSpec spec;
    };
    std::vector<Cloud> clouds = {
        {"Amazon EC2", hw::MachineSpec::ec2C4_2xlarge()},
        {"Google GCE", hw::MachineSpec::gceCustom4()},
    };
    std::vector<int> copiesList = {1, 4};
    // --quick: one cloud, single copy, short window.
    if (opt.quick) {
        clouds.resize(1);
        copiesList = {1};
    }
    const load::MicroKind kinds[] = {
        load::MicroKind::Execl,
        load::MicroKind::FileCopy,
        load::MicroKind::PipeThroughput,
        load::MicroKind::ContextSwitch,
        load::MicroKind::ProcessCreation,
    };

    std::printf("Figure 5: relative microbenchmark performance "
                "(higher is better)\n\n");

    opt.startObservability();

    sim::Tick duration =
        opt.durationOr((opt.quick ? 40 : 150) * sim::kTicksPerMs);
    for (const Cloud &cloud : clouds) {
        for (int copies : copiesList) {
            std::printf("===== %s, %s =====\n", cloud.label,
                        copies == 1 ? "single" : "concurrent(4)");
            for (load::MicroKind kind : kinds) {
                std::printf("-- %s --\n", load::microKindName(kind));
                double docker = 0.0;
                for (const std::string &name : cloudRuntimeNames()) {
                    if (!opt.wantRuntime(name))
                        continue;
                    auto rt = makeCloudRuntime(name, cloud.spec, opt);
                    if (!rt) {
                        std::printf("  %-28s n/a\n", name.c_str());
                        continue;
                    }
                    char label[96];
                    std::snprintf(label, sizeof label, "%s/%s/%s/x%d",
                                  cloud.label,
                                  load::microKindName(kind),
                                  name.c_str(), copies);
                    opt.beginRun(label,
                                 static_cast<double>(
                                     cloud.spec.periodTicks()));
                    auto r = load::runMicro(*rt, kind, duration,
                                            copies);
                    if (name == "docker")
                        docker = r.opsPerSec;
                    std::printf(
                        "  %-28s %12.0f ops/s  (%5.2fx)\n",
                        name.c_str(), r.opsPerSec,
                        docker > 0 ? r.opsPerSec / docker : 0.0);
                    if (opt.mech)
                        std::printf("%s", r.mechReport().c_str());
                }
            }
            // iperf throughput.
            std::printf("-- iperf --\n");
            double docker_gbps = 0.0;
            for (const std::string &name : cloudRuntimeNames()) {
                if (!opt.wantRuntime(name))
                    continue;
                auto rt = makeCloudRuntime(name, cloud.spec, opt);
                if (!rt) {
                    std::printf("  %-28s n/a\n", name.c_str());
                    continue;
                }
                auto r = load::runIperf(*rt, duration, copies);
                if (name == "docker")
                    docker_gbps = r.gbitPerSec;
                std::printf("  %-28s %10.2f Gbit/s  (%5.2fx)\n",
                            name.c_str(), r.gbitPerSec,
                            docker_gbps > 0
                                ? r.gbitPerSec / docker_gbps
                                : 0.0);
            }
            std::printf("\n");
        }
    }

    return opt.finishObservability();
}
