// Calibration scratch: prints absolute throughputs per runtime/app.
#include "common.h"

using namespace xc;
using namespace xc::bench;

int main()
{
    auto spec = hw::MachineSpec::ec2C4_2xlarge();
    for (MacroApp app : {MacroApp::Nginx, MacroApp::Memcached,
                         MacroApp::Redis}) {
        std::printf("== %s ==\n", macroAppName(app));
        double docker_tp = 0;
        for (auto &kind : cloudRuntimes()) {
            auto rt = kind.make(spec);
            if (!rt) { std::printf("  %-28s n/a\n", kind.label.c_str()); continue; }
            int conns = app == MacroApp::Nginx ? 160 : 400;
            auto r = runMacro(*rt, app, conns, 300 * sim::kTicksPerMs);
            if (kind.label == "docker") docker_tp = r.throughput;
            std::printf("  %-28s %9.0f req/s  lat p50 %7.0fus  (%.2fx)\n",
                        kind.label.c_str(), r.throughput, r.p50LatencyUs,
                        docker_tp > 0 ? r.throughput / docker_tp : 0.0);
        }
    }
    return 0;
}
