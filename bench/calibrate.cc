// Calibration scratch: prints absolute throughputs per runtime/app.
#include "common.h"

using namespace xc;
using namespace xc::bench;

int main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);
    auto spec = hw::MachineSpec::ec2C4_2xlarge();
    for (MacroApp app : {MacroApp::Nginx, MacroApp::Memcached,
                         MacroApp::Redis}) {
        std::printf("== %s ==\n", macroAppName(app));
        double docker_tp = 0;
        for (const std::string &name : cloudRuntimeNames()) {
            if (!opt.wantRuntime(name))
                continue;
            auto rt = makeCloudRuntime(name, spec, opt);
            if (!rt) { std::printf("  %-28s n/a\n", name.c_str()); continue; }
            MacroRun run;
            int defConns = app == MacroApp::Nginx ? 160 : 400;
            if (opt.quick)
                defConns /= 4;
            run.connections = opt.connectionsOr(defConns);
            run.duration = opt.durationOr(
                (opt.quick ? 60 : 300) * sim::kTicksPerMs);
            run.seed = opt.seed;
            auto r = runMacro(*rt, app, run);
            if (name == "docker") docker_tp = r.throughput;
            std::printf("  %-28s %9.0f req/s  lat p50 %7.0fus  (%.2fx)\n",
                        name.c_str(), r.throughput, r.p50LatencyUs,
                        docker_tp > 0 ? r.throughput / docker_tp : 0.0);
        }
    }
    return 0;
}
