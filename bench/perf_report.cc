/**
 * @file
 * Simulator performance report: runs the sim-core microbenchmarks
 * plus the --quick figure benches as subprocesses and emits one JSON
 * document (BENCH_sim.json) summarising:
 *
 *  - events/sec and ns/op for each EventQueue microbenchmark,
 *  - host wall time and peak RSS for each figure bench,
 *  - the simulated-seconds-per-host-second ratio per figure bench,
 *  - a profiled fig4 rerun (--profile) with its wall-time overhead
 *    relative to the plain run, plus the profile JSON itself
 *    (--profile-out, uploaded by CI as an artifact).
 *
 * CI runs this on every PR and compares the result against the
 * committed baseline (ci/perf_compare.py); regressions >20% warn.
 * A separate ci.yml step asserts the profiler-disabled fig4 wall
 * stays within 2% of the committed baseline.
 *
 *   perf_report [--out FILE] [--bindir DIR] [--profile-out FILE]
 *
 * The figure-bench numbers are host-dependent (wall time, RSS); only
 * the golden digests pin simulated behaviour. This report tracks the
 * simulator's own speed, not the paper's results.
 */

#include <sys/resource.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "provenance.h"

namespace {

/** Wall time + rusage + captured stdout of one child process. */
struct ChildResult
{
    int exitCode = -1;
    double wallSeconds = 0.0;
    long maxRssKb = 0;
    std::string out;
};

double
monotonicSeconds()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

/** fork/exec @p argv, capture stdout, collect rusage via wait4. */
bool
runChild(const std::vector<std::string> &argv, ChildResult &res)
{
    int fds[2];
    if (pipe(fds) != 0)
        return false;

    double start = monotonicSeconds();
    pid_t pid = fork();
    if (pid < 0) {
        close(fds[0]);
        close(fds[1]);
        return false;
    }
    if (pid == 0) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
        std::vector<char *> cargv;
        for (const std::string &a : argv)
            cargv.push_back(const_cast<char *>(a.c_str()));
        cargv.push_back(nullptr);
        execv(cargv[0], cargv.data());
        std::perror("execv");
        _exit(127);
    }
    close(fds[1]);
    res.out.clear();
    char buf[4096];
    ssize_t n;
    while ((n = read(fds[0], buf, sizeof buf)) > 0)
        res.out.append(buf, static_cast<std::size_t>(n));
    close(fds[0]);

    int status = 0;
    struct rusage ru;
    std::memset(&ru, 0, sizeof ru);
    if (wait4(pid, &status, 0, &ru) != pid)
        return false;
    res.wallSeconds = monotonicSeconds() - start;
    res.maxRssKb = ru.ru_maxrss;
    res.exitCode =
        WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
    return true;
}

/** Scan google-benchmark JSON output for "name" / value pairs. A
 *  full JSON parser is overkill: the format is flat and stable. */
double
jsonNumberAfter(const std::string &text, std::size_t from,
                std::size_t until, const std::string &key)
{
    std::size_t k = text.find("\"" + key + "\":", from);
    if (k == std::string::npos || k >= until)
        return 0.0;
    return std::strtod(text.c_str() + k + key.size() + 3, nullptr);
}

struct MicroRow
{
    std::string name;
    double nsPerOp = 0.0;
    double itemsPerSec = 0.0;
};

std::vector<MicroRow>
parseMicrobench(const std::string &text)
{
    std::vector<MicroRow> rows;
    // Entries live under "benchmarks": [ {"name": ...}, ... ].
    std::size_t pos = text.find("\"benchmarks\"");
    while (pos != std::string::npos) {
        std::size_t k = text.find("\"name\": \"", pos);
        if (k == std::string::npos)
            break;
        k += 9;
        std::size_t e = text.find('"', k);
        if (e == std::string::npos)
            break;
        MicroRow row;
        row.name = text.substr(k, e - k);
        // Bound field lookups to this entry: later benchmarks may
        // not report items_per_second at all.
        std::size_t next = text.find("\"name\": \"", e);
        if (next == std::string::npos)
            next = text.size();
        row.nsPerOp = jsonNumberAfter(text, e, next, "real_time");
        row.itemsPerSec =
            jsonNumberAfter(text, e, next, "items_per_second");
        rows.push_back(std::move(row));
        pos = e;
    }
    return rows;
}

/** Parse the figure benches' "total simulated time: X s" line. */
double
parseSimSeconds(const std::string &text)
{
    std::size_t k = text.find("total simulated time:");
    if (k == std::string::npos)
        return 0.0;
    return std::strtod(text.c_str() + k + 21, nullptr);
}

/** Parse a "<label> <number>" stdout line (fig_cluster's density and
 *  event-count keys). Returns 0 when the label is absent. */
double
parseLabelledNumber(const std::string &text, const char *label)
{
    std::size_t k = text.find(label);
    if (k == std::string::npos)
        return 0.0;
    return std::strtod(text.c_str() + k + std::strlen(label), nullptr);
}

std::string
dirnameOf(const char *argv0)
{
    std::string s(argv0);
    std::size_t slash = s.rfind('/');
    return slash == std::string::npos ? std::string(".")
                                      : s.substr(0, slash);
}

void
appendKv(std::string &json, const char *key, double value,
         bool last = false)
{
    char buf[128];
    std::snprintf(buf, sizeof buf, "    \"%s\": %.6g%s\n", key, value,
                  last ? "" : ",");
    json += buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_sim.json";
    std::string bindir = dirnameOf(argv[0]);
    std::string profileOut = "fig4_profile.json";
    // Worker threads for the parallel-sweep row; 0 = min(8, nproc).
    int parallelJobs = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--bindir") == 0 &&
                   i + 1 < argc) {
            bindir = argv[++i];
        } else if (std::strcmp(argv[i], "--profile-out") == 0 &&
                   i + 1 < argc) {
            profileOut = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                   i + 1 < argc) {
            parallelJobs = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE] [--bindir DIR] "
                         "[--profile-out FILE] [--jobs N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (parallelJobs <= 0) {
        long nproc = sysconf(_SC_NPROCESSORS_ONLN);
        parallelJobs = nproc > 0 ? static_cast<int>(nproc) : 1;
        if (parallelJobs > 8)
            parallelJobs = 8;
    }

    std::string json = "{\n";
    int failures = 0;

    // --- sim-core microbenchmarks ---------------------------------
    {
        ChildResult r;
        std::vector<std::string> cmd = {
            bindir + "/sim_microbench",
            "--benchmark_format=json",
            "--benchmark_min_time=0.2",
        };
        std::printf("running sim_microbench...\n");
        if (!runChild(cmd, r) || r.exitCode != 0) {
            std::fprintf(stderr, "sim_microbench failed (rc=%d)\n",
                         r.exitCode);
            ++failures;
        }
        json += "  \"microbench\": {\n";
        std::vector<MicroRow> rows = parseMicrobench(r.out);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            json += "    \"" + rows[i].name + "\": {\"ns_per_op\": ";
            char buf[96];
            std::snprintf(buf, sizeof buf,
                          "%.4g, \"events_per_sec\": %.6g}%s\n",
                          rows[i].nsPerOp, rows[i].itemsPerSec,
                          i + 1 < rows.size() ? "," : "");
            json += buf;
            std::printf("  %-40s %8.1f ns/op  %12.3g ev/s\n",
                        rows[i].name.c_str(), rows[i].nsPerOp,
                        rows[i].itemsPerSec);
        }
        json += "  },\n";
    }

    // --- figure benches (--quick) ---------------------------------
    //
    // The last row reruns fig4 with the cycle-attribution profiler
    // on; its wall time against the plain fig4 row above is the
    // profiler-enabled overhead (ci.yml asserts the *disabled* run
    // stays within 2% of the committed baseline).
    json += "  \"figures\": {\n";
    struct FigRun
    {
        const char *name; ///< binary under bindir
        const char *key;  ///< JSON key ("<key>_quick")
        bool profiled;    ///< add --profile and report overhead
        int jobs;         ///< >0: add -j N, report sweep speedup
        int snapMode;     ///< 1: capture a snapshot, 2: restore it
        std::vector<std::string> extraArgs; ///< appended verbatim
    };
    // The fig3_checkpoint row runs before fig3_restore so the
    // snapshot the restore run verifies against exists. The
    // fig3_verbatim row runs before fig3_superblock so the
    // superblock row can report its speedup over the verbatim
    // interpreter (DESIGN.md §15) from the same host conditions.
    const std::string metricsOut = out + ".metrics.json";
    const FigRun benches[] = {
        {"fig4_syscall", "fig4_syscall", false, 0, 0, {}},
        {"fig3_macro", "fig3_macro", false, 0, 0, {}},
        {"fig3_macro", "fig3_verbatim", false, 0, 0,
         {"--no-superblock"}},
        {"fig3_macro", "fig3_superblock", false, 0, 0, {}},
        {"fig3_macro", "fig3_domains", false, 0, 0,
         {"--domains", "2"}},
        {"fig3_macro", "fig3_parallel", false, parallelJobs, 0, {}},
        {"fig3_macro", "fig3_checkpoint", false, 0, 1, {}},
        {"fig3_macro", "fig3_restore", false, 0, 2, {}},
        // The labeled-metrics registry enabled (DESIGN.md §16): its
        // wall time against the plain fig3 row is the metrics-ENABLED
        // overhead; ci.yml separately asserts the disabled run stays
        // within 2% of the committed baseline.
        {"fig3_macro", "fig3_metrics", false, 0, 0,
         {"--metrics", metricsOut}},
        // SLO monitors + fault storm + load spike on top of the
        // registry (bench/fig_slo.cc).
        {"fig_slo", "fig_slo", false, 0, 0, {}},
        // The hardware-virtualized family exercises a different hot
        // path (vm-exit pricing + virtio rings on every packet).
        {"fig3_macro",
         "fig3_kvm",
         false,
         0,
         0,
         {"--cloud", "gce", "--runtime", "kvm-microvm"}},
        // The 10k-container density sweep (bench/fig_cluster.cc):
        // flyweight bytes/container at N=10k plus the open-loop
        // event-processing rate on this host.
        {"fig_cluster", "fig_cluster", false, 0, 0, {}},
        {"fig4_syscall", "fig4_syscall_profile", true, 0, 0, {}},
    };
    const std::string snapPath = out + ".snap";
    const std::size_t numBenches = sizeof benches / sizeof benches[0];
    double plainFig4Wall = 0.0;
    double plainFig3Wall = 0.0;
    double verbatimFig3Wall = 0.0;
    for (std::size_t i = 0; i < numBenches; ++i) {
        const FigRun &fig = benches[i];
        ChildResult r;
        std::vector<std::string> cmd = {bindir + "/" + fig.name,
                                        "--quick"};
        if (fig.profiled) {
            cmd.push_back("--profile");
            cmd.push_back(profileOut);
        }
        if (fig.jobs > 0) {
            cmd.push_back("-j");
            cmd.push_back(std::to_string(fig.jobs));
        }
        if (fig.snapMode == 1) {
            cmd.push_back("--checkpoint-at");
            cmd.push_back("40");
            cmd.push_back("--checkpoint");
            cmd.push_back(snapPath);
        } else if (fig.snapMode == 2) {
            cmd.push_back("--restore");
            cmd.push_back(snapPath);
        }
        for (const std::string &a : fig.extraArgs)
            cmd.push_back(a);
        std::printf("running %s --quick%s%s%s...\n", fig.name,
                    fig.profiled ? " --profile" : "",
                    fig.jobs > 0
                        ? (" -j" + std::to_string(fig.jobs)).c_str()
                        : "",
                    fig.snapMode == 1   ? " --checkpoint"
                    : fig.snapMode == 2 ? " --restore"
                                        : "");
        if (!runChild(cmd, r) || r.exitCode != 0) {
            std::fprintf(stderr, "%s failed (rc=%d)\n", fig.name,
                         r.exitCode);
            ++failures;
        }
        if (std::strcmp(fig.key, "fig4_syscall") == 0)
            plainFig4Wall = r.wallSeconds;
        else if (std::strcmp(fig.key, "fig3_macro") == 0)
            plainFig3Wall = r.wallSeconds;
        else if (std::strcmp(fig.key, "fig3_verbatim") == 0)
            verbatimFig3Wall = r.wallSeconds;
        double simS = parseSimSeconds(r.out);
        json += std::string("    \"") + fig.key + "_quick\": {\n";
        appendKv(json, "wall_s", r.wallSeconds);
        appendKv(json, "max_rss_kb", static_cast<double>(r.maxRssKb));
        appendKv(json, "sim_s", simS);
        if (fig.profiled) {
            appendKv(json, "sim_per_host",
                     r.wallSeconds > 0 ? simS / r.wallSeconds : 0.0);
            appendKv(json, "profile_overhead",
                     plainFig4Wall > 0
                         ? r.wallSeconds / plainFig4Wall - 1.0
                         : 0.0,
                     true);
        } else if (fig.jobs > 0) {
            appendKv(json, "sim_per_host",
                     r.wallSeconds > 0 ? simS / r.wallSeconds : 0.0);
            appendKv(json, "jobs", static_cast<double>(fig.jobs));
            appendKv(json, "speedup",
                     r.wallSeconds > 0 && plainFig3Wall > 0
                         ? plainFig3Wall / r.wallSeconds
                         : 0.0,
                     true);
        } else if (fig.snapMode != 0) {
            // Wall cost of the snapshot machinery relative to the
            // plain fig3 run: capture serializes + hashes every
            // subsystem at the checkpoint tick; restore replays and
            // then byte-verifies all sections against the file.
            appendKv(json, "sim_per_host",
                     r.wallSeconds > 0 ? simS / r.wallSeconds : 0.0);
            appendKv(json,
                     fig.snapMode == 1 ? "checkpoint_overhead"
                                       : "restore_overhead",
                     plainFig3Wall > 0
                         ? r.wallSeconds / plainFig3Wall - 1.0
                         : 0.0,
                     true);
        } else if (std::strcmp(fig.key, "fig3_metrics") == 0) {
            // Wall cost of the enabled metrics path (instrument
            // updates + scrape-time collectors) vs the plain run.
            appendKv(json, "sim_per_host",
                     r.wallSeconds > 0 ? simS / r.wallSeconds : 0.0);
            appendKv(json, "metrics_overhead",
                     plainFig3Wall > 0
                         ? r.wallSeconds / plainFig3Wall - 1.0
                         : 0.0,
                     true);
        } else if (std::strcmp(fig.key, "fig_cluster") == 0) {
            // Density + event-rate rows: host bytes per container at
            // N=10k (simulated state, host-independent) and fired
            // simulation events per host second (host-dependent).
            appendKv(json, "sim_per_host",
                     r.wallSeconds > 0 ? simS / r.wallSeconds : 0.0);
            appendKv(json, "bytes_per_container",
                     parseLabelledNumber(r.out,
                                         "bytes_per_container_10k:"));
            appendKv(json, "events_per_sec",
                     r.wallSeconds > 0
                         ? parseLabelledNumber(r.out, "events fired:") /
                               r.wallSeconds
                         : 0.0,
                     true);
        } else if (std::strcmp(fig.key, "fig3_superblock") == 0) {
            // The superblock direct-execution row: same run as
            // fig3_macro, reported against the verbatim-interpreter
            // reference measured moments earlier on this host.
            appendKv(json, "sim_per_host",
                     r.wallSeconds > 0 ? simS / r.wallSeconds : 0.0);
            appendKv(json, "speedup_vs_verbatim",
                     r.wallSeconds > 0 && verbatimFig3Wall > 0
                         ? verbatimFig3Wall / r.wallSeconds
                         : 0.0,
                     true);
        } else {
            appendKv(json, "sim_per_host",
                     r.wallSeconds > 0 ? simS / r.wallSeconds : 0.0,
                     true);
        }
        json += i + 1 < numBenches ? "    },\n" : "    }\n";
        std::printf("  %-24s wall %6.2f s   rss %6ld MB   "
                    "sim/host %.4f\n",
                    fig.key, r.wallSeconds, r.maxRssKb / 1024,
                    r.wallSeconds > 0 ? simS / r.wallSeconds : 0.0);
    }
    json += "  }\n}\n";
    // Figure benches above all run at the default seed (42).
    json = xc::bench::stampProvenance(json, 42);

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f || std::fwrite(json.data(), 1, json.size(), f) !=
                  json.size()) {
        std::fprintf(stderr, "failed to write %s\n", out.c_str());
        if (f)
            std::fclose(f);
        return 1;
    }
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return failures != 0;
}
