/**
 * @file
 * Fault-injection sweep: NGINX under the closed-loop driver while
 * FaultPlan::uniform(rate) injects packet loss/delay, connection
 * resets, link partitions, dropped event-channel notifications and
 * vCPU stalls. Reports absolute throughput and p50/p99 latency
 * degradation per runtime, plus the client-observed error taxonomy.
 *
 * The client runs with request timeouts and capped exponential
 * backoff (3 retries), so injected faults surface as latency tails
 * and taxonomy counts rather than hangs. At rate 0 every error
 * column must be zero and results are byte-identical to a build
 * without the fault subsystem.
 */

#include "common.h"

using namespace xc;
using namespace xc::bench;

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);

    std::vector<double> rates =
        opt.faultRate > 0.0
            ? std::vector<double>{0.0, opt.faultRate}
            : std::vector<double>{0.0, 0.001, 0.005, 0.01, 0.02};
    if (opt.quick)
        rates = {0.0, 0.01};

    auto spec = hw::MachineSpec::ec2C4_2xlarge();

    std::printf("Fault sweep: NGINX + closed-loop clients "
                "(timeout 50 ms, 3 retries)\n");
    std::printf("FaultPlan::uniform(rate): packet loss/delay, conn "
                "resets, partitions, evtchn drops, vCPU stalls\n\n");

    opt.startObservability();

    const std::vector<std::string> names = {
        "docker",    "xen-container",   "x-container", "gvisor",
        "clear-container", "unikernel", "graphene"};

    struct Cell
    {
        std::string name;
        double rate;
    };
    struct Result
    {
        bool available = false;
        load::LoadResult r;
    };

    std::vector<Cell> cells;
    for (const std::string &name : names) {
        if (!opt.wantRuntime(name))
            continue;
        for (double rate : rates)
            cells.push_back(Cell{name, rate});
    }

    std::vector<Result> results = runSweep(
        opt, cells, [&](const Cell &cell) -> Result {
            Result res;
            runtimes::RuntimeConfig cfg;
            cfg.spec = spec;
            cfg.seed = opt.seed;
            cfg.faults =
                fault::FaultPlan::uniform(cell.rate, opt.seed);
            auto rt = runtimes::makeRuntime(cell.name, cfg);
            if (!rt)
                return res;
            res.available = true;
            MacroRun run;
            run.connections = opt.connectionsOr(64);
            run.duration = opt.durationOr(300 * sim::kTicksPerMs);
            run.seed = opt.seed;
            run.requestTimeout = 50 * sim::kTicksPerMs;
            run.retryBudget = 3;
            run.observeMech = opt.mech;
            char label[96];
            std::snprintf(label, sizeof label, "%s/rate%.3f",
                          cell.name.c_str(), cell.rate);
            opt.beginRun(label,
                         static_cast<double>(spec.periodTicks()));
            res.r = runMacro(*rt, MacroApp::Nginx, run);
            return res;
        });

    std::size_t i = 0;
    for (const std::string &name : names) {
        if (!opt.wantRuntime(name))
            continue;
        std::printf("== %s ==\n", name.c_str());
        std::printf("  %8s %10s %10s %10s %6s %6s %6s %6s %6s\n",
                    "rate", "req/s", "p50(us)", "p99(us)", "timeo",
                    "reset", "refus", "trunc", "retry");
        for (std::size_t ri = 0; ri < rates.size(); ++ri) {
            const Result &res = results[i + ri];
            if (!res.available) {
                // Matches the sequential loop's `break`: one line,
                // remaining rates skipped.
                std::printf("  %8s (not available on this machine "
                            "model)\n",
                            "-");
                break;
            }
            const load::LoadResult &r = res.r;
            const load::ErrorBreakdown &e = r.errorDetail;
            std::printf(
                "  %8.3f %10.0f %10.0f %10.0f %6llu %6llu %6llu "
                "%6llu %6llu\n",
                rates[ri], r.throughput, r.p50LatencyUs,
                r.p99LatencyUs,
                static_cast<unsigned long long>(e.timeouts),
                static_cast<unsigned long long>(e.resets),
                static_cast<unsigned long long>(e.refused),
                static_cast<unsigned long long>(e.truncated),
                static_cast<unsigned long long>(e.retries));
            if (opt.mech)
                std::printf("%s", r.mechReport().c_str());
        }
        i += rates.size();
        std::printf("\n");
    }

    return opt.finishObservability();
}
