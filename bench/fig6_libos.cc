/**
 * @file
 * Figure 6: comparison with other LibOS platforms on the local
 * cluster (Dell R720s) — Graphene (G), Unikernel/Rumprun (U), and
 * X-Containers (X).
 *
 *  (a) NGINX, 1 worker, 1 core each: X ~ U, X > 2x G.
 *  (b) NGINX, 4 workers: X > 1.5x G (U cannot run multi-process).
 *  (c) two PHP servers + MySQL (Fig. 7 topologies): X beats U by
 *      >40% on Shared/Dedicated; the Dedicated&Merged configuration
 *      (PHP+MySQL in ONE container, impossible on a unikernel)
 *      reaches ~3x U-Dedicated.
 */

#include "common.h"

#include "apps/php_mysql.h"

using namespace xc;
using namespace xc::bench;

namespace {

/** Measurement window; main() shrinks it under --quick. */
sim::Tick gDuration = 300 * sim::kTicksPerMs;

std::unique_ptr<runtimes::Runtime>
makeLibosRuntime(const std::string &which)
{
    // The local-cluster configurations (§5.1) via the registry;
    // "graphene" maps to the paper's unpatched-host build.
    return runtimes::makeRuntime(
        which, hw::MachineSpec::xeonE52690Local());
}

double
nginxThroughput(runtimes::Runtime &rt, int workers)
{
    runtimes::ContainerOpts copts;
    copts.name = "web";
    copts.image = apps::glibcImage("img");
    copts.vcpus = workers;
    copts.memBytes = 512ull << 20;
    auto *c = rt.createContainer(copts);
    if (!c)
        return 0.0;
    apps::NginxApp::Config ncfg;
    ncfg.workers = workers;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*c);
    rt.exposePort(c, 8080, 80);

    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 8080}, 64 * workers,
        gDuration);
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    rt.machine().events().post(10 * sim::kTicksPerMs,
                               [&] { driver.start(); });
    rt.machine().events().runUntil(10 * sim::kTicksPerMs +
                                   spec.warmup + spec.duration +
                                   50 * sim::kTicksPerMs);
    return driver.collect().throughput;
}

enum class PhpTopology { Shared, Dedicated, DedicatedMerged };

/** Fig. 6c: total throughput of two PHP servers. */
double
phpMysqlThroughput(runtimes::Runtime &rt, PhpTopology topo)
{
    using runtimes::ContainerOpts;
    ContainerOpts base;
    base.image = apps::glibcImage("img");
    base.vcpus = 1;
    base.memBytes = 512ull << 20;

    std::vector<std::unique_ptr<apps::MysqlApp>> dbs;
    std::vector<std::unique_ptr<apps::PhpApp>> phps;

    auto deploy_mysql = [&](runtimes::RtContainer *c) {
        dbs.push_back(std::make_unique<apps::MysqlApp>());
        dbs.back()->deploy(*c);
        return guestos::SockAddr{c->ip(), 3306};
    };
    auto deploy_php = [&](runtimes::RtContainer *c,
                          guestos::SockAddr db) {
        apps::PhpApp::Config pcfg;
        pcfg.mysql = db;
        phps.push_back(std::make_unique<apps::PhpApp>(pcfg));
        phps.back()->deploy(*c);
    };

    runtimes::RtContainer *php1 = nullptr;
    runtimes::RtContainer *php2 = nullptr;

    switch (topo) {
      case PhpTopology::Shared: {
        ContainerOpts o = base;
        o.name = "mysql";
        auto db = deploy_mysql(rt.createContainer(o));
        o.name = "php1";
        php1 = rt.createContainer(o);
        deploy_php(php1, db);
        o.name = "php2";
        php2 = rt.createContainer(o);
        deploy_php(php2, db);
        break;
      }
      case PhpTopology::Dedicated: {
        ContainerOpts o = base;
        o.name = "mysql1";
        auto db1 = deploy_mysql(rt.createContainer(o));
        o.name = "mysql2";
        auto db2 = deploy_mysql(rt.createContainer(o));
        o.name = "php1";
        php1 = rt.createContainer(o);
        deploy_php(php1, db1);
        o.name = "php2";
        php2 = rt.createContainer(o);
        deploy_php(php2, db2);
        break;
      }
      case PhpTopology::DedicatedMerged: {
        // PHP + MySQL in one container: requires multi-process.
        ContainerOpts o = base;
        o.vcpus = 1;
        o.name = "stack1";
        php1 = rt.createContainer(o);
        if (!php1->supportsMultiProcess())
            return -1.0;
        auto db1 = deploy_mysql(php1);
        deploy_php(php1, db1);
        o.name = "stack2";
        php2 = rt.createContainer(o);
        auto db2 = deploy_mysql(php2);
        deploy_php(php2, db2);
        break;
      }
    }

    rt.exposePort(php1, 8081, 8080);
    rt.exposePort(php2, 8082, 8080);

    load::WorkloadSpec s1 = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 8081}, 48, gDuration);
    load::WorkloadSpec s2 = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 8082}, 48, gDuration);
    load::ClosedLoopDriver d1(rt.fabric(), s1, 1);
    load::ClosedLoopDriver d2(rt.fabric(), s2, 2);
    rt.machine().events().post(20 * sim::kTicksPerMs, [&] {
        d1.start();
        d2.start();
    });
    rt.machine().events().runUntil(20 * sim::kTicksPerMs + s1.warmup +
                                   s1.duration + 60 * sim::kTicksPerMs);
    return d1.collect().throughput + d2.collect().throughput;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);
    gDuration = opt.durationOr((opt.quick ? 60 : 300) *
                               sim::kTicksPerMs);

    std::printf("Figure 6: LibOS platform comparison "
                "(local cluster)\n\n");

    opt.startObservability();
    const double tpc = static_cast<double>(
        hw::MachineSpec::xeonE52690Local().periodTicks());

    // One cell per (runtime, workload); gDuration is set above,
    // before the sweep, and read-only inside cells.
    struct Cell
    {
        const char *runtime;
        std::string label;
        int workers;      ///< nginx workers; 0 = PHP+MySQL cell
        PhpTopology topo; ///< PHP cells only
    };
    std::vector<Cell> cells = {
        {"graphene", "nginx-w1/graphene", 1, PhpTopology::Shared},
        {"unikernel", "nginx-w1/unikernel", 1, PhpTopology::Shared},
        {"x-container", "nginx-w1/x-container", 1,
         PhpTopology::Shared},
        {"graphene", "nginx-w4/graphene", 4, PhpTopology::Shared},
        {"x-container", "nginx-w4/x-container", 4,
         PhpTopology::Shared},
    };
    struct PhpCase
    {
        const char *label;
        PhpTopology topo;
    };
    const PhpCase phpCases[] = {
        {"Shared", PhpTopology::Shared},
        {"Dedicated", PhpTopology::Dedicated},
        {"Dedicated&Merged", PhpTopology::DedicatedMerged},
    };
    for (const PhpCase &pc : phpCases) {
        cells.push_back({"unikernel",
                         std::string("php-mysql/") + pc.label +
                             "/unikernel",
                         0, pc.topo});
        cells.push_back({"x-container",
                         std::string("php-mysql/") + pc.label +
                             "/x-container",
                         0, pc.topo});
    }

    std::vector<double> tp = runSweep(
        opt, cells, [&](const Cell &cell) -> double {
            auto rt = makeLibosRuntime(cell.runtime);
            opt.beginRun(cell.label, tpc);
            return cell.workers > 0
                       ? nginxThroughput(*rt, cell.workers)
                       : phpMysqlThroughput(*rt, cell.topo);
        });

    std::printf("(a) NGINX, 1 worker (requests/s)\n");
    double g1 = tp[0], u1 = tp[1], x1 = tp[2];
    std::printf("  G %8.0f   U %8.0f   X %8.0f    "
                "(X/G=%.2f, X/U=%.2f; paper: X~U, X>2xG)\n\n",
                g1, u1, x1, g1 > 0 ? x1 / g1 : 0,
                u1 > 0 ? x1 / u1 : 0);

    std::printf("(b) NGINX, 4 workers (requests/s; U n/a)\n");
    double g4 = tp[3], x4 = tp[4];
    std::printf("  G %8.0f   X %8.0f    (X/G=%.2f; paper: >1.5x)\n\n",
                g4, x4, g4 > 0 ? x4 / g4 : 0);

    std::printf("(c) 2x PHP + MySQL total throughput (requests/s)\n");
    double u_dedicated = 0;
    std::size_t i = 5;
    for (const PhpCase &pc : phpCases) {
        double ur = tp[i++];
        double xr = tp[i++];
        if (pc.topo == PhpTopology::Dedicated)
            u_dedicated = ur;
        std::printf("  %-18s U %8.0f   X %8.0f   (X/U=%.2f)\n",
                    pc.label, ur, xr, ur > 0 ? xr / ur : 0);
        if (pc.topo == PhpTopology::DedicatedMerged &&
            u_dedicated > 0) {
            std::printf(
                "  merged X vs U-Dedicated: %.2fx (paper: ~3x)\n",
                xr / u_dedicated);
        }
    }
    return opt.finishObservability();
}
