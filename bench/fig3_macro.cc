/**
 * @file
 * Figure 3: relative throughput and latency of the macrobenchmarks
 * (NGINX via Apache ab, memcached and Redis via memtier with a
 * 1:10 SET:GET ratio), across the ten §5.1 configurations on the
 * EC2 and GCE machine models, normalized to patched Docker.
 *
 * Paper shape: X-Containers beat Docker on NGINX (+21-50%) and
 * memcached (+34-108%), match it on Redis; gVisor collapses under
 * ptrace; Clear Containers (GCE only) pay nested-virtualization
 * penalties; Xen-Containers trail Docker.
 *
 * Every (app, cloud, runtime) cell is an independent simulation, so
 * the sweep runs them across host threads (--jobs/-j) and renders
 * the table afterwards in sequential-cell order — output is
 * byte-identical at any -j.
 */

#include <map>

#include "checkpoint.h"
#include "common.h"

using namespace xc;
using namespace xc::bench;

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);

    // --checkpoint / --restore (DESIGN.md §13). Capture hooks onto
    // the first sweep cell; restore hooks onto the cell the
    // snapshot's recipe names. Both run as side-effect-free events,
    // so stdout is byte-identical to an uninterrupted run.
    bool capture = !opt.checkpointPath.empty();
    if (capture && opt.checkpointAt == 0) {
        std::fprintf(stderr,
                     "%s: --checkpoint needs --checkpoint-at MS\n",
                     argv[0]);
        return 2;
    }
    sim::snap::Snapshot restoreSnap;
    CellRecipe restoreRecipe;
    bool restoring = !opt.restorePath.empty();
    if (restoring) {
        try {
            restoreSnap =
                sim::snap::Snapshot::loadFile(opt.restorePath);
            restoreRecipe = snapshotRecipe(restoreSnap);
        } catch (const sim::snap::SnapError &e) {
            std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
            return 3;
        }
        if (restoreRecipe.bench != "fig3_macro" ||
            opt.seed != restoreRecipe.seed) {
            std::fprintf(stderr,
                         "%s: snapshot is from bench '%s' seed %llu; "
                         "rerun with matching flags\n",
                         argv[0], restoreRecipe.bench.c_str(),
                         static_cast<unsigned long long>(
                             restoreRecipe.seed));
            return 3;
        }
    }

    struct Cloud
    {
        const char *label;
        hw::MachineSpec spec;
    };
    std::vector<Cloud> clouds = {
        {"Amazon EC2", hw::MachineSpec::ec2C4_2xlarge()},
        {"Google GCE", hw::MachineSpec::gceCustom4()},
    };
    // --cloud filters before --quick truncates, so
    // `--quick --cloud gce` keeps GCE (where kvm-microvm runs).
    std::erase_if(clouds, [&opt](const Cloud &c) {
        return !opt.wantCloud(c.label);
    });
    if (clouds.empty()) {
        std::fprintf(stderr, "%s: no cloud matches '%s'\n", argv[0],
                     opt.cloud.c_str());
        return 2;
    }
    // --quick: one cloud and a short measurement window; the
    // configuration sweep itself stays complete.
    if (opt.quick)
        clouds.resize(1);

    std::printf("Figure 3: macrobenchmarks, relative to patched "
                "Docker\n\n");

    opt.startObservability();
    GoldenLog golden(opt.goldenPath);
    SeriesLog seriesLog(opt.timeseriesPath, opt.seed, opt.runtime);

    struct Cell
    {
        MacroApp app;
        std::size_t cloud;
        std::string name;
    };
    struct Result
    {
        bool available = false;
        std::string reason; ///< why not, when !available
        load::LoadResult r;
        double simSec = 0.0;
        std::string seriesJson;
    };

    std::vector<Cell> cells;
    for (MacroApp app : {MacroApp::Nginx, MacroApp::Memcached,
                         MacroApp::Redis}) {
        for (std::size_t ci = 0; ci < clouds.size(); ++ci) {
            for (const std::string &name : cloudRuntimeNames()) {
                if (opt.wantRuntime(name))
                    cells.push_back(Cell{app, ci, name});
            }
        }
    }

    bool wantSeries = seriesLog.enabled();
    std::vector<Result> results = runSweep(
        opt, cells, [&](const Cell &cell) -> Result {
            const Cloud &cloud = clouds[cell.cloud];
            Result res;
            auto built = makeCloudRuntime(cell.name, cloud.spec, opt);
            if (!built) {
                res.reason =
                    std::string(runtimes::makeStatusName(
                        built.status)) +
                    ": " + built.reason;
                return res;
            }
            auto rt = std::move(built.runtime);
            res.available = true;
            MacroRun run;
            int defConns = cell.app == MacroApp::Nginx ? 160 : 400;
            if (opt.quick)
                defConns /= 4;
            run.connections = opt.connectionsOr(defConns);
            run.duration = opt.durationOr((opt.quick ? 60 : 300) *
                                          sim::kTicksPerMs);
            run.seed = opt.seed;
            run.observeMech = opt.mech || golden.enabled();
            run.domains = opt.domains;
            char label[96];
            std::snprintf(label, sizeof label, "%s/%s/%s",
                          macroAppName(cell.app), cloud.label,
                          cell.name.c_str());
            if (capture && &cell == &cells[0]) {
                CellRecipe rec;
                rec.bench = "fig3_macro";
                rec.app = macroAppName(cell.app);
                rec.cloud = cloud.label;
                rec.runtime = cell.name;
                rec.seed = opt.seed;
                rec.duration = run.duration;
                rec.connections = run.connections;
                rec.faultRate = opt.faultRate;
                rec.checkpointAt = opt.checkpointAt;
                run.hookAt = opt.checkpointAt;
                run.hook = [&rt, rec, &opt] {
                    try {
                        captureSnapshot(*rt, rec)
                            .save(opt.checkpointPath);
                    } catch (const sim::snap::SnapError &e) {
                        std::fprintf(stderr, "checkpoint failed: %s\n",
                                     e.what());
                        std::exit(3);
                    }
                    std::fprintf(
                        stderr, "checkpointed %s at sim time %llu\n",
                        opt.checkpointPath.c_str(),
                        static_cast<unsigned long long>(
                            rec.checkpointAt));
                };
            } else if (restoring &&
                       restoreRecipe.app == macroAppName(cell.app) &&
                       restoreRecipe.cloud == cloud.label &&
                       restoreRecipe.runtime == cell.name) {
                if (run.duration != restoreRecipe.duration ||
                    run.connections != restoreRecipe.connections) {
                    std::fprintf(stderr,
                                 "restore: run window differs from "
                                 "the snapshot's recipe\n");
                    std::exit(3);
                }
                run.hookAt = restoreRecipe.checkpointAt;
                run.hook = [&rt, &restoreSnap] {
                    verifySnapshotOrDie(*rt, restoreSnap);
                };
            }
            opt.beginRun(label, static_cast<double>(
                                    cloud.spec.periodTicks()));
            std::unique_ptr<sim::TimeSeries> ts;
            if (wantSeries) {
                sim::TimeSeries::Options to;
                to.cadence =
                    std::max<sim::Tick>(1, run.duration / 100);
                to.traceTrack = label;
                ts = std::make_unique<sim::TimeSeries>(
                    rt->machine().events(), to);
                run.series = ts.get();
            }

            // Live control plane / replay: bound to the first cell
            // only (one socket, one event queue). Commands execute
            // at quantized ticks; see DESIGN.md §14.
            std::unique_ptr<sim::ctl::Session> ctl;
            load::ClosedLoopDriver *driverPtr = nullptr;
            std::map<std::string, runtimes::RtContainer *> spawned;
            if (opt.ctlEnabled() && &cell == &cells[0]) {
                sim::ctl::SessionHooks hooks;
                runtimes::Runtime *rtp = rt.get();
                std::string run_label = label;
                hooks.status = [rtp, &driverPtr, run_label] {
                    char s[192];
                    std::snprintf(
                        s, sizeof s, "%s tick=%llu completed=%llu",
                        run_label.c_str(),
                        static_cast<unsigned long long>(
                            rtp->machine().events().now()),
                        static_cast<unsigned long long>(
                            driverPtr ? driverPtr->completed() : 0));
                    return std::string(s);
                };
                hooks.mechJson = [rtp] {
                    return rtp->machine().mech().renderJson();
                };
                if (ts) {
                    hooks.timeseries = [tsp = ts.get()] {
                        return tsp->exportJson();
                    };
                }
                if (opt.profiling()) {
                    hooks.profile = [] {
                        return sim::prof::exportJson();
                    };
                }
                if (opt.flightRecording()) {
                    hooks.flight = [] {
                        return sim::flight::renderAll();
                    };
                }
                if (opt.metricsOn()) {
                    // Live scrape for `xc_ctl metrics` / `watch`:
                    // reads the cell's own registry state (the hook
                    // runs on the simulation thread).
                    hooks.metrics = [](const std::string &format) {
                        return format == "json"
                                   ? sim::metrics::exportJson()
                                   : sim::metrics::renderText();
                    };
                }
                hooks.injectFaults = [rtp, seed = opt.seed](
                                         double rate) {
                    rtp->installFaults(
                        rate <= 0.0
                            ? fault::FaultPlan{}
                            : fault::FaultPlan::uniform(rate, seed));
                    return std::string();
                };
                hooks.spawn = [rtp, &spawned](
                                  const std::string &cname)
                    -> std::string {
                    if (spawned.count(cname))
                        return "container '" + cname +
                               "' already spawned";
                    runtimes::ContainerOpts copts =
                        runtimes::ContainerOpts::builder()
                            .name(cname)
                            .image(apps::glibcImage("img"))
                            .vcpus(1)
                            .memBytes(128ull << 20)
                            .build();
                    runtimes::RtContainer *c =
                        rtp->createContainer(copts);
                    if (c == nullptr)
                        return "boot failed (resources exhausted "
                               "or fault-injected)";
                    spawned[cname] = c;
                    return {};
                };
                hooks.kill = [rtp, &spawned](
                                 const std::string &cname)
                    -> std::string {
                    auto it = spawned.find(cname);
                    if (it == spawned.end())
                        return "no spawned container named '" +
                               cname + "'";
                    guestos::NetStack *stack =
                        it->second->netStack();
                    if (stack != nullptr)
                        rtp->fabric().crashStack(stack);
                    spawned.erase(it);
                    return {};
                };
                try {
                    ctl = std::make_unique<sim::ctl::Session>(
                        rtp->machine().events(),
                        opt.ctlSessionOptions(), std::move(hooks));
                    ctl->start();
                } catch (const sim::ctl::CtlError &e) {
                    std::fprintf(stderr, "ctl: %s\n", e.what());
                    std::exit(2);
                }
                run.driverObserver =
                    [&driverPtr](load::ClosedLoopDriver &d) {
                        driverPtr = &d;
                    };
            }

            res.r = runMacro(*rt, cell.app, run);
            if (ts)
                res.seriesJson = ts->exportJson();
            res.simSec =
                static_cast<double>(rt->machine().events().now()) /
                sim::kTicksPerSec;
            return res;
        });

    // Sequential render in cell order: the table, golden digest and
    // series document come out byte-identical to a -j1 run.
    double simSeconds = 0.0;
    std::size_t i = 0;
    for (MacroApp app : {MacroApp::Nginx, MacroApp::Memcached,
                         MacroApp::Redis}) {
        for (std::size_t ci = 0; ci < clouds.size(); ++ci) {
            const Cloud &cloud = clouds[ci];
            std::printf("== %s on %s ==\n", macroAppName(app),
                        cloud.label);
            std::printf("  %-28s %12s %8s %12s %8s\n", "runtime",
                        "req/s", "rel", "p50-lat(us)", "rel");
            double docker_tp = 0.0, docker_lat = 0.0;
            for (const std::string &name : cloudRuntimeNames()) {
                if (!opt.wantRuntime(name))
                    continue;
                const Result &res = results[i++];
                if (!res.available) {
                    std::printf("  %-28s (%s)\n", name.c_str(),
                                res.reason.c_str());
                    continue;
                }
                char label[96];
                std::snprintf(label, sizeof label, "%s/%s/%s",
                              macroAppName(app), cloud.label,
                              name.c_str());
                if (!res.seriesJson.empty())
                    seriesLog.add(label, res.seriesJson);
                simSeconds += res.simSec;
                const load::LoadResult &r = res.r;
                if (name == "docker") {
                    docker_tp = r.throughput;
                    docker_lat = r.p50LatencyUs;
                }
                std::printf(
                    "  %-28s %12.0f %7.2fx %12.0f %7.2fx\n",
                    name.c_str(), r.throughput,
                    docker_tp > 0 ? r.throughput / docker_tp : 0.0,
                    r.p50LatencyUs,
                    docker_lat > 0 ? r.p50LatencyUs / docker_lat
                                   : 0.0);
                if (opt.mech)
                    std::printf("%s", r.mechReport().c_str());
                if (golden.enabled()) {
                    char head[192];
                    std::snprintf(
                        head, sizeof head,
                        "{\"bench\":\"fig3_macro\",\"app\":\"%s\","
                        "\"cloud\":\"%s\",\"runtime\":\"%s\","
                        "\"requests\":%llu,\"errors\":%llu,"
                        "\"p50_us\":%.3f,\"mech\":",
                        macroAppName(app), cloud.label, name.c_str(),
                        static_cast<unsigned long long>(r.requests),
                        static_cast<unsigned long long>(r.errors),
                        r.p50LatencyUs);
                    golden.add(std::string(head) + r.mechJson() + "}");
                }
            }
            std::printf("\n");
        }
    }
    std::printf("total simulated time: %.6f s\n", simSeconds);
    return opt.finishObservability() + golden.finish() +
           seriesLog.finish();
}
