/**
 * @file
 * Figure 3: relative throughput and latency of the macrobenchmarks
 * (NGINX via Apache ab, memcached and Redis via memtier with a
 * 1:10 SET:GET ratio), across the ten §5.1 configurations on the
 * EC2 and GCE machine models, normalized to patched Docker.
 *
 * Paper shape: X-Containers beat Docker on NGINX (+21-50%) and
 * memcached (+34-108%), match it on Redis; gVisor collapses under
 * ptrace; Clear Containers (GCE only) pay nested-virtualization
 * penalties; Xen-Containers trail Docker.
 */

#include "common.h"

using namespace xc;
using namespace xc::bench;

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);

    struct Cloud
    {
        const char *label;
        hw::MachineSpec spec;
    };
    std::vector<Cloud> clouds = {
        {"Amazon EC2", hw::MachineSpec::ec2C4_2xlarge()},
        {"Google GCE", hw::MachineSpec::gceCustom4()},
    };
    // --quick: one cloud and a short measurement window; the
    // configuration sweep itself stays complete.
    if (opt.quick)
        clouds.resize(1);

    std::printf("Figure 3: macrobenchmarks, relative to patched "
                "Docker\n\n");

    opt.startObservability();
    GoldenLog golden(opt.goldenPath);
    SeriesLog seriesLog(opt.timeseriesPath);
    double simSeconds = 0.0;

    for (MacroApp app : {MacroApp::Nginx, MacroApp::Memcached,
                         MacroApp::Redis}) {
        for (const Cloud &cloud : clouds) {
            std::printf("== %s on %s ==\n", macroAppName(app),
                        cloud.label);
            std::printf("  %-28s %12s %8s %12s %8s\n", "runtime",
                        "req/s", "rel", "p50-lat(us)", "rel");
            double docker_tp = 0.0, docker_lat = 0.0;
            for (const std::string &name : cloudRuntimeNames()) {
                if (!opt.wantRuntime(name))
                    continue;
                auto rt = makeCloudRuntime(name, cloud.spec, opt);
                if (!rt) {
                    std::printf("  %-28s (requires nested HW "
                                "virtualization)\n",
                                name.c_str());
                    continue;
                }
                MacroRun run;
                int defConns = app == MacroApp::Nginx ? 160 : 400;
                if (opt.quick)
                    defConns /= 4;
                run.connections = opt.connectionsOr(defConns);
                run.duration = opt.durationOr(
                    (opt.quick ? 60 : 300) * sim::kTicksPerMs);
                run.seed = opt.seed;
                run.observeMech = opt.mech || golden.enabled();
                char label[96];
                std::snprintf(label, sizeof label, "%s/%s/%s",
                              macroAppName(app), cloud.label,
                              name.c_str());
                opt.beginRun(label, static_cast<double>(
                                        cloud.spec.periodTicks()));
                std::unique_ptr<sim::TimeSeries> ts;
                if (seriesLog.enabled()) {
                    sim::TimeSeries::Options to;
                    to.cadence = std::max<sim::Tick>(
                        1, run.duration / 100);
                    to.traceTrack = label;
                    ts = std::make_unique<sim::TimeSeries>(
                        rt->machine().events(), to);
                    run.series = ts.get();
                }
                auto r = runMacro(*rt, app, run);
                if (ts)
                    seriesLog.add(label, ts->exportJson());
                simSeconds += static_cast<double>(
                                  rt->machine().events().now()) /
                              sim::kTicksPerSec;
                if (name == "docker") {
                    docker_tp = r.throughput;
                    docker_lat = r.p50LatencyUs;
                }
                std::printf(
                    "  %-28s %12.0f %7.2fx %12.0f %7.2fx\n",
                    name.c_str(), r.throughput,
                    docker_tp > 0 ? r.throughput / docker_tp : 0.0,
                    r.p50LatencyUs,
                    docker_lat > 0 ? r.p50LatencyUs / docker_lat
                                   : 0.0);
                if (opt.mech)
                    std::printf("%s", r.mechReport().c_str());
                if (golden.enabled()) {
                    char head[192];
                    std::snprintf(
                        head, sizeof head,
                        "{\"bench\":\"fig3_macro\",\"app\":\"%s\","
                        "\"cloud\":\"%s\",\"runtime\":\"%s\","
                        "\"requests\":%llu,\"errors\":%llu,"
                        "\"p50_us\":%.3f,\"mech\":",
                        macroAppName(app), cloud.label, name.c_str(),
                        static_cast<unsigned long long>(r.requests),
                        static_cast<unsigned long long>(r.errors),
                        r.p50LatencyUs);
                    golden.add(std::string(head) + r.mechJson() + "}");
                }
            }
            std::printf("\n");
        }
    }
    std::printf("total simulated time: %.6f s\n", simSeconds);
    return opt.finishObservability() + golden.finish() +
           seriesLog.finish();
}
