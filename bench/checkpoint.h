#ifndef XC_BENCH_CHECKPOINT_H
#define XC_BENCH_CHECKPOINT_H

/**
 * @file
 * Checkpoint/restore driver for benchmark cells (DESIGN.md §13).
 *
 * A checkpoint is a sim::snap::Snapshot with one section per
 * subsystem plus a "recipe" section recording how to rebuild the
 * cell (bench, app, cloud, runtime, seed, window). Because event
 * callbacks are type-erased closures over live objects, restore is
 * *deterministic replay plus byte-verification*: the restoring
 * process replays the recipe to the checkpoint tick — which
 * reconstructs every closure — and then loads each section, which
 * adopts counters and *verifies* all identity-bearing state against
 * the file. Finally the restored cell is re-captured and every
 * section is compared byte-for-byte with the file; any divergence
 * throws sim::snap::SnapError.
 *
 * True warm-start (no replay) is fork()-based cloning of an
 * already-booted parent — see bench/fig_whatif.cc.
 */

#include <cstdio>
#include <string>

#include "runtimes/runtime.h"
#include "sim/snapshot.h"

namespace xc::bench {

// Section names, in capture order.
inline constexpr const char *kSecRecipe = "recipe";
inline constexpr const char *kSecQueue = "queue";
inline constexpr const char *kSecRng = "rng";
inline constexpr const char *kSecMech = "mech";
inline constexpr const char *kSecFaults = "faults";
inline constexpr const char *kSecHw = "hw";
inline constexpr const char *kSecRuntime = "runtime";
inline constexpr const char *kSecObservability = "observability";

/**
 * Everything needed to rebuild the checkpointed cell by replay.
 * Restore refuses to proceed when the restoring invocation's flags
 * disagree with the recipe — replaying a different cell would fail
 * byte-verification anyway, but the recipe turns that into a clear
 * error up front.
 */
struct CellRecipe
{
    std::string bench;   ///< producing benchmark ("fig3_macro", ...)
    std::string app;     ///< macro app name ("nginx", ...)
    std::string cloud;   ///< machine-spec label ("Amazon EC2", ...)
    std::string runtime; ///< runtime registry name
    std::uint64_t seed = 0;
    sim::Tick duration = 0;    ///< measurement window (ticks)
    int connections = 0;       ///< client connections
    double faultRate = 0.0;    ///< --faults rate armed at boot
    sim::Tick checkpointAt = 0; ///< sim time the snapshot captures

    void
    save(sim::snap::SnapWriter &w) const
    {
        w.str(bench);
        w.str(app);
        w.str(cloud);
        w.str(runtime);
        w.u64(seed);
        w.u64(checkpointAt);
        w.u64(duration);
        w.i64(connections);
        w.f64(faultRate);
    }

    static CellRecipe
    load(sim::snap::SnapReader &r)
    {
        CellRecipe c;
        c.bench = r.str();
        c.app = r.str();
        c.cloud = r.str();
        c.runtime = r.str();
        c.seed = r.u64();
        c.checkpointAt = r.u64();
        c.duration = r.u64();
        c.connections = static_cast<int>(r.i64());
        c.faultRate = r.f64();
        r.expectEnd("recipe section");
        return c;
    }
};

/** Parse the recipe section out of a loaded snapshot. */
inline CellRecipe
snapshotRecipe(const sim::snap::Snapshot &snap)
{
    sim::snap::SnapReader r(snap.require(kSecRecipe));
    return CellRecipe::load(r);
}

/**
 * Capture @p rt's full simulation state at the current sim time.
 * Must run from inside the cell's event loop (an event-queue hook),
 * so no request is between "fired" and "accounted".
 */
inline sim::snap::Snapshot
captureSnapshot(runtimes::Runtime &rt, const CellRecipe &recipe)
{
    using sim::snap::SnapWriter;
    sim::snap::Snapshot snap;
    auto section = [&snap](const char *name, auto &&fill) {
        SnapWriter w;
        fill(w);
        snap.set(name, w.take());
    };
    section(kSecRecipe, [&](SnapWriter &w) { recipe.save(w); });
    section(kSecQueue, [&](SnapWriter &w) {
        rt.machine().events().saveState(w);
    });
    section(kSecRng,
            [&](SnapWriter &w) { rt.machine().rng().saveState(w); });
    section(kSecMech,
            [&](SnapWriter &w) { rt.machine().mech().saveState(w); });
    section(kSecFaults, [&](SnapWriter &w) {
        rt.machine().faults().saveState(w);
    });
    section(kSecHw, [&](SnapWriter &w) { rt.machine().saveState(w); });
    section(kSecRuntime, [&](SnapWriter &w) { rt.saveState(w); });
    section(kSecObservability,
            [&](SnapWriter &w) { sim::snap::saveObservability(w); });
    return snap;
}

/**
 * Restore-by-verification, the continuation-safe path: @p rt must
 * have been replayed from the snapshot's recipe to exactly the
 * checkpoint tick; this re-captures it and byte-compares every
 * section against the file. Throws sim::snap::SnapError on any
 * divergence. Because nothing is loaded, the cell's event callbacks
 * stay intact and the run can continue — this is what --restore
 * uses. (If the bytes match, every counter, identity, queue entry
 * and RNG word already equals the checkpoint; adoption would be a
 * no-op.)
 */
inline void
verifySnapshot(runtimes::Runtime &rt, const sim::snap::Snapshot &snap)
{
    using sim::snap::SnapError;
    CellRecipe recipe = snapshotRecipe(snap);
    if (recipe.runtime != rt.name()) {
        throw SnapError("snapshot is for runtime '" + recipe.runtime +
                        "', not '" + rt.name() + "'");
    }
    if (rt.machine().events().now() != recipe.checkpointAt) {
        throw SnapError(
            "verify attempted at the wrong sim time (replay must "
            "reach the checkpoint tick first)");
    }
    sim::snap::Snapshot again = captureSnapshot(rt, recipe);
    for (const auto &[name, payload] : snap.sections()) {
        const std::string *mine = again.find(name);
        if (mine == nullptr || *mine != payload) {
            throw SnapError("section '" + name +
                            "' diverged from the snapshot (replay did "
                            "not reproduce the checkpointed state)");
        }
    }
}

/**
 * Full adoption restore: loads every section into @p rt (adopting
 * counters, verifying identity-bearing state), then re-captures and
 * byte-compares like verifySnapshot. Throws sim::snap::SnapError on
 * any divergence. Loading the event queue leaves its callbacks
 * hollow and invalidates pre-existing EventHandles (the slab's
 * restore nonce is bumped), so the cell CANNOT continue running
 * afterwards — use verifySnapshot for restore-and-continue; this
 * path exists to exercise the adoption code in tests.
 */
inline void
restoreSnapshot(runtimes::Runtime &rt, const sim::snap::Snapshot &snap)
{
    using sim::snap::SnapError;
    using sim::snap::SnapReader;
    CellRecipe recipe = snapshotRecipe(snap);
    if (recipe.runtime != rt.name()) {
        throw SnapError("snapshot is for runtime '" + recipe.runtime +
                        "', not '" + rt.name() + "'");
    }
    if (rt.machine().events().now() != recipe.checkpointAt) {
        throw SnapError(
            "restore attempted at the wrong sim time (replay must "
            "reach the checkpoint tick first)");
    }
    auto section = [&snap](const char *name, auto &&drain) {
        SnapReader r(snap.require(name));
        drain(r);
    };
    // The event queue first: its load bumps the restore nonce, so
    // handles created before this call are dead from here on.
    section(kSecQueue, [&](SnapReader &r) {
        rt.machine().events().loadState(r); // calls expectEnd itself
    });
    section(kSecRng, [&](SnapReader &r) {
        rt.machine().rng().loadState(r);
        r.expectEnd("rng section");
    });
    section(kSecMech, [&](SnapReader &r) {
        rt.machine().mech().loadState(r);
        r.expectEnd("mech section");
    });
    section(kSecFaults, [&](SnapReader &r) {
        rt.machine().faults().loadState(r);
        r.expectEnd("faults section");
    });
    section(kSecHw, [&](SnapReader &r) {
        rt.machine().loadState(r);
        r.expectEnd("hw section");
    });
    section(kSecRuntime, [&](SnapReader &r) {
        rt.loadState(r);
        r.expectEnd("runtime section");
    });
    section(kSecObservability, [&](SnapReader &r) {
        sim::snap::loadObservability(r); // verify-only + expectEnd
    });
    // The byte-identity theorem: what we now hold re-serializes to
    // exactly the file. Any subsystem whose load silently dropped or
    // mangled state fails here, not miles downstream.
    sim::snap::Snapshot again = captureSnapshot(rt, recipe);
    for (const auto &[name, payload] : snap.sections()) {
        const std::string *mine = again.find(name);
        if (mine == nullptr || *mine != payload) {
            throw SnapError("section '" + name +
                            "' diverged after restore (replay did not "
                            "reproduce the checkpointed state)");
        }
    }
}

/**
 * Restore-and-continue from an already-loaded snapshot, with the
 * standard reporting: verifySnapshot + a notice to stderr (stderr so
 * stdout stays byte-identical to an uninterrupted run). Exits with
 * code 3 on any snapshot error — restore failures are hard errors,
 * never silent degradation.
 */
inline void
verifySnapshotOrDie(runtimes::Runtime &rt,
                    const sim::snap::Snapshot &snap)
{
    try {
        verifySnapshot(rt, snap);
        std::fprintf(stderr,
                     "restored at sim time %llu (all %zu sections "
                     "byte-verified)\n",
                     static_cast<unsigned long long>(
                         rt.machine().events().now()),
                     snap.sectionCount());
    } catch (const sim::snap::SnapError &e) {
        std::fprintf(stderr, "restore failed: %s\n", e.what());
        std::exit(3);
    }
}

} // namespace xc::bench

#endif // XC_BENCH_CHECKPOINT_H
