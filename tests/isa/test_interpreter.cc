#include <gtest/gtest.h>

#include <vector>

#include "isa/assembler.h"
#include "isa/interpreter.h"

namespace xc::isa {
namespace {

/** Records every environment callback; configurable responses. */
class RecordingEnv : public ExecEnv
{
  public:
    struct SyscallRecord
    {
        std::uint64_t nr;
        GuestAddr ip_after;
    };

    std::vector<SyscallRecord> syscalls;
    std::vector<int> vsyscallSlots;
    std::vector<GuestAddr> invalidOpcodes;
    std::uint64_t syscallReturn = 0;
    bool faultOnInvalid = true;
    GuestAddr invalidFixup = 0;

    GuestAddr
    onSyscall(Regs &regs, CodeBuffer &, GuestAddr ip_after) override
    {
        syscalls.push_back({regs.rax, ip_after});
        regs.rax = syscallReturn;
        return ip_after;
    }

    GuestAddr
    onVsyscallCall(int slot, Regs &regs, CodeBuffer &,
                   GuestAddr ret_addr) override
    {
        vsyscallSlots.push_back(slot);
        regs.rax = syscallReturn;
        return ret_addr;
    }

    GuestAddr
    onInvalidOpcode(Regs &, CodeBuffer &, GuestAddr ip) override
    {
        invalidOpcodes.push_back(ip);
        return faultOnInvalid ? kFault : invalidFixup;
    }
};

TEST(Interpreter, GlibcWrapperRaisesSyscallWithNumber)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.movEaxImm(39); // getpid
    as.syscallInsn();
    as.ret();

    Regs regs;
    RecordingEnv env;
    env.syscallReturn = 1234;
    RunResult r = execute(code, entry, regs, env);

    ASSERT_EQ(env.syscalls.size(), 1u);
    EXPECT_EQ(env.syscalls[0].nr, 39u);
    EXPECT_EQ(regs.rax, 1234u);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(r.instructions, 3u); // mov, syscall, ret
}

TEST(Interpreter, MovRaxWrapperCarriesNumber)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.movRaxImm(15);
    as.syscallInsn();
    as.ret();

    Regs regs;
    RecordingEnv env;
    execute(code, entry, regs, env);
    ASSERT_EQ(env.syscalls.size(), 1u);
    EXPECT_EQ(env.syscalls[0].nr, 15u);
}

TEST(Interpreter, GoWrapperLoadsNumberFromStack)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.movRaxFromRsp(0x08);
    as.syscallInsn();
    as.ret();

    Regs regs;
    regs.stack[1] = 1; // trap number at 0x8(%rsp): write
    RecordingEnv env;
    execute(code, entry, regs, env);
    ASSERT_EQ(env.syscalls.size(), 1u);
    EXPECT_EQ(env.syscalls[0].nr, 1u);
}

TEST(Interpreter, PatchedCallDispatchesThroughVsyscallSlot)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.callAbs(vsyscallSlotAddr(0));
    as.ret();

    Regs regs;
    RecordingEnv env;
    env.syscallReturn = 55;
    RunResult r = execute(code, entry, regs, env);
    ASSERT_EQ(env.vsyscallSlots.size(), 1u);
    EXPECT_EQ(env.vsyscallSlots[0], 0);
    EXPECT_TRUE(env.syscalls.empty());
    EXPECT_EQ(regs.rax, 55u);
    EXPECT_FALSE(r.faulted);
}

TEST(Interpreter, ArgumentMovsSetRegisters)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.movEdiImm(3);
    as.movEsiImm(4);
    as.movEdxImm(5);
    as.ret();

    Regs regs;
    RecordingEnv env;
    execute(code, entry, regs, env);
    EXPECT_EQ(regs.rdi, 3u);
    EXPECT_EQ(regs.rsi, 4u);
    EXPECT_EQ(regs.rdx, 5u);
}

TEST(Interpreter, MovEaxZeroExtends)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.movEaxImm(0xffffffffu);
    as.ret();

    Regs regs;
    regs.rax = 0xdeadbeefcafebabeull;
    RecordingEnv env;
    execute(code, entry, regs, env);
    EXPECT_EQ(regs.rax, 0xffffffffull); // upper half cleared
}

TEST(Interpreter, JmpRel8Follows)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    // entry: jmp over a syscall to a ret.
    GuestAddr entry = as.here();
    as.jmpTo(0x1000 + 2 + 2); // skip the syscall at +2
    as.syscallInsn();
    as.ret();

    Regs regs;
    RecordingEnv env;
    RunResult r = execute(code, entry, regs, env);
    EXPECT_TRUE(env.syscalls.empty());
    EXPECT_FALSE(r.faulted);
}

TEST(Interpreter, InvalidOpcodeFaultsWithoutFixup)
{
    CodeBuffer code(0x1000);
    code.append({0x60}); // invalid in long mode
    Regs regs;
    RecordingEnv env;
    env.faultOnInvalid = true;
    RunResult r = execute(code, 0x1000, regs, env);
    EXPECT_TRUE(r.faulted);
    ASSERT_EQ(env.invalidOpcodes.size(), 1u);
    EXPECT_EQ(env.invalidOpcodes[0], 0x1000u);
}

TEST(Interpreter, InvalidOpcodeFixupResumes)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    as.nop();              // 0x1000 (fixup target)
    GuestAddr bad = as.here();
    code.append(0x60);     // 0x1001 invalid
    // After fixup we resume at 0x1002 (skip the bad byte): place ret.
    CodeBuffer fresh(0x1000);
    (void)fresh;

    Regs regs;
    RecordingEnv env;
    env.faultOnInvalid = false;
    env.invalidFixup = bad + 1;
    code.append(kOpRet); // 0x1002
    RunResult r = execute(code, 0x1000, regs, env);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(env.invalidOpcodes.size(), 1u);
}

TEST(Interpreter, VsyscallHandlerCanAdjustReturnAddress)
{
    // Phase-1 9-byte patch layout: call; syscall; ret. The handler
    // must skip the stale syscall by bumping the return address.
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.callAbs(vsyscallSlotAddr(7)); // 7 bytes
    as.syscallInsn();                                  // stale
    as.ret();

    class SkippingEnv : public RecordingEnv
    {
      public:
        GuestAddr
        onVsyscallCall(int slot, Regs &regs, CodeBuffer &code,
                       GuestAddr ret_addr) override
        {
            RecordingEnv::onVsyscallCall(slot, regs, code, ret_addr);
            Insn next = decode(code, ret_addr);
            if (next.op == Op::Syscall)
                return ret_addr + next.length; // skip it
            return ret_addr;
        }
    };

    Regs regs;
    SkippingEnv env;
    RunResult r = execute(code, entry, regs, env);
    EXPECT_EQ(env.vsyscallSlots.size(), 1u);
    EXPECT_TRUE(env.syscalls.empty()); // stale syscall never trapped
    EXPECT_FALSE(r.faulted);
}

TEST(Interpreter, RunawayLoopHitsInstructionLimit)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.here();
    as.jmpTo(entry); // jmp self

    Regs regs;
    RecordingEnv env;
    RunResult r = execute(code, entry, regs, env, 100);
    EXPECT_TRUE(r.hitLimit);
    EXPECT_EQ(r.instructions, 100u);
}

TEST(Interpreter, CallToNonVsyscallAddressIsInvalid)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.callAbs(0x400000); // not a vsyscall slot
    as.ret();

    Regs regs;
    RecordingEnv env;
    RunResult r = execute(code, entry, regs, env);
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(env.invalidOpcodes.size(), 1u);
}

} // namespace
} // namespace xc::isa
