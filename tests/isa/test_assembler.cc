#include <gtest/gtest.h>

#include "isa/assembler.h"

namespace xc::isa {
namespace {

TEST(Assembler, EmitsGlibcWrapperBytes)
{
    CodeBuffer code(0xeb6a9); // __read example address from Fig. 2
    Assembler as(code);
    as.movEaxImm(0);
    as.syscallInsn();
    EXPECT_EQ(code.bytes(),
              (std::vector<std::uint8_t>{0xb8, 0x00, 0x00, 0x00, 0x00,
                                         0x0f, 0x05}));
}

TEST(Assembler, EmitsMovRaxWrapperBytes)
{
    CodeBuffer code(0x10330); // __restore_rt example address
    Assembler as(code);
    as.movRaxImm(0xf);
    as.syscallInsn();
    EXPECT_EQ(code.bytes(),
              (std::vector<std::uint8_t>{0x48, 0xc7, 0xc0, 0x0f, 0x00,
                                         0x00, 0x00, 0x0f, 0x05}));
}

TEST(Assembler, EmitsCallToVsyscallSlot)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    as.callAbs(vsyscallSlotAddr(0));
    // Fig. 2: ff 14 25 08 00 60 ff
    EXPECT_EQ(code.bytes(),
              (std::vector<std::uint8_t>{0xff, 0x14, 0x25, 0x08, 0x00,
                                         0x60, 0xff}));
}

TEST(Assembler, EmitsGoStackLoad)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    as.movRaxFromRsp(0x08);
    EXPECT_EQ(code.bytes(),
              (std::vector<std::uint8_t>{0x48, 0x8b, 0x44, 0x24, 0x08}));
}

TEST(Assembler, JmpToEncodesBackwardRel8)
{
    CodeBuffer code(0x10330);
    Assembler as(code);
    as.callAbs(vsyscallSlotAddr(15)); // 7 bytes at 0x10330
    GuestAddr jmp_at = as.jmpTo(0x10330); // at 0x10337
    EXPECT_EQ(jmp_at, 0x10337u);
    // Fig. 2 phase 2: eb f7
    EXPECT_EQ(code.read8(0x10337), 0xeb);
    EXPECT_EQ(code.read8(0x10338), 0xf7);
}

TEST(Assembler, ReturnsAddressOfEachInsn)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    EXPECT_EQ(as.movEaxImm(1), 0x1000u);
    EXPECT_EQ(as.syscallInsn(), 0x1005u);
    EXPECT_EQ(as.ret(), 0x1007u);
    EXPECT_EQ(as.here(), 0x1008u);
}

TEST(Assembler, RoundTripsThroughDecoder)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    as.movEdiImm(3);
    as.movEsiImm(4);
    as.movEdxImm(5);
    as.movEaxImm(1);
    as.syscallInsn();
    as.nop(2);
    as.ret();

    GuestAddr ip = 0x1000;
    std::vector<Op> ops;
    while (ip < code.end()) {
        Insn insn = decode(code, ip);
        ASSERT_TRUE(insn.valid());
        ops.push_back(insn.op);
        ip += insn.length;
    }
    EXPECT_EQ(ops, (std::vector<Op>{Op::MovEdiImm, Op::MovEsiImm,
                                    Op::MovEdxImm, Op::MovEaxImm,
                                    Op::Syscall, Op::Nop, Op::Nop,
                                    Op::Ret}));
}

TEST(CodeBuffer, CmpxchgMatchesAndSwaps)
{
    CodeBuffer code(0x1000);
    code.append({0xb8, 0x00, 0x00, 0x00, 0x00, 0x0f, 0x05});
    std::uint8_t expected[7] = {0xb8, 0x00, 0x00, 0x00, 0x00, 0x0f, 0x05};
    std::uint8_t repl[7] = {0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff};
    EXPECT_TRUE(code.cmpxchg(0x1000, expected, repl, 7));
    EXPECT_EQ(code.read8(0x1000), 0xff);
}

TEST(CodeBuffer, CmpxchgFailsOnMismatchWithoutWriting)
{
    CodeBuffer code(0x1000);
    code.append({0xb8, 0x01, 0x00, 0x00, 0x00});
    std::uint8_t expected[2] = {0xb8, 0x02};
    std::uint8_t repl[2] = {0x90, 0x90};
    EXPECT_FALSE(code.cmpxchg(0x1000, expected, repl, 2));
    EXPECT_EQ(code.read8(0x1000), 0xb8);
    EXPECT_EQ(code.read8(0x1001), 0x01);
}

TEST(CodeBuffer, CmpxchgRejectsOversizedPatch)
{
    sim::setThrowOnError(true);
    CodeBuffer code(0x1000);
    code.append({0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
    std::uint8_t buf[9] = {};
    // The 8-byte cmpxchg limit is what forces the 9-byte two-phase
    // protocol; exceeding it is a simulator bug.
    EXPECT_THROW(code.cmpxchg(0x1000, buf, buf, 9), sim::SimError);
    sim::setThrowOnError(false);
}

} // namespace
} // namespace xc::isa
