/**
 * @file
 * Differential lockstep suite for superblock direct execution
 * (DESIGN.md §15): ~1e5 randomized assembled sequences run through
 * both the verbatim interpreter (the reference semantics) and
 * SuperblockCache::execute, asserting identical final registers,
 * instruction counts, cycle charges, environment-callback sequences
 * and fault addresses. Any divergence prints the offending seed so
 * the case can be replayed in isolation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "isa/interpreter.h"
#include "isa/superblock.h"
#include "sim/rng.h"

namespace xc::isa {
namespace {

/**
 * Environment that journals every callback with its full argument
 * set and accrues a synthetic cycle charge per interaction, so two
 * runs compare as (journal, cycles, Regs, RunResult) tuples. The
 * responses themselves are driven by a deterministic Rng, covering
 * fixups, faults and return-address adjustment.
 */
class JournalEnv : public ExecEnv
{
  public:
    explicit JournalEnv(std::uint64_t seed) : rng(seed) {}

    std::vector<std::string> journal;
    std::uint64_t cycles = 0;

    GuestAddr
    onSyscall(Regs &regs, CodeBuffer &, GuestAddr ip_after) override
    {
        journal.push_back("sys nr=" + std::to_string(regs.rax) +
                          " ip=" + std::to_string(ip_after));
        cycles += 700 + regs.rax % 64;
        regs.rax = rng.next() % 4096;
        return ip_after;
    }

    GuestAddr
    onVsyscallCall(int slot, Regs &regs, CodeBuffer &code,
                   GuestAddr ret_addr) override
    {
        journal.push_back("vsys slot=" + std::to_string(slot) +
                          " ret=" + std::to_string(ret_addr));
        cycles += 120 + static_cast<std::uint64_t>(slot);
        regs.rax = rng.next() % 4096;
        // Mimic the phase-1 skip logic on occasion: if the byte at
        // the return address decodes as a (stale) syscall, hop it.
        Insn next = decode(code, ret_addr);
        if (next.op == Op::Syscall && rng.next() % 2 == 0)
            return ret_addr + next.length;
        return ret_addr;
    }

    GuestAddr
    onInvalidOpcode(Regs &, CodeBuffer &code, GuestAddr ip) override
    {
        journal.push_back("ud2 ip=" + std::to_string(ip));
        cycles += 900;
        switch (rng.next() % 4) {
          case 0:
            return kFault;
          case 1:
            return ip + 1; // skip the bad byte
          case 2:
            // Jump somewhere pseudo-random inside (or just past)
            // the text — may land mid-instruction, which is exactly
            // the desync the differential must survive.
            return code.base() + rng.next() % (code.size() + 2);
          default:
            return kFault;
        }
    }

  private:
    sim::Rng rng;
};

/** Assemble a random wrapper-like sequence; identical for any two
 *  calls with the same seed. */
void
assembleRandom(CodeBuffer &code, sim::Rng &rng)
{
    Assembler as(code);
    int len = 1 + static_cast<int>(rng.next() % 12);
    for (int i = 0; i < len; ++i) {
        switch (rng.next() % 12) {
          case 0:
            as.movEaxImm(static_cast<std::uint32_t>(rng.next()));
            break;
          case 1:
            as.movRaxImm(static_cast<std::int32_t>(rng.next()));
            break;
          case 2:
            as.movRaxFromRsp(static_cast<std::uint8_t>(
                8 * (rng.next() % Regs::kStackSlots)));
            break;
          case 3:
            as.movEdiImm(static_cast<std::uint32_t>(rng.next()));
            break;
          case 4:
            as.movEsiImm(static_cast<std::uint32_t>(rng.next()));
            break;
          case 5:
            as.movEdxImm(static_cast<std::uint32_t>(rng.next()));
            break;
          case 6:
            as.nop(1 + static_cast<int>(rng.next() % 3));
            break;
          case 7:
            as.syscallInsn();
            break;
          case 8:
            as.callAbs(vsyscallSlotAddr(
                static_cast<int>(rng.next() % 16)));
            break;
          case 9:
            // call to a non-vsyscall target: invalid-opcode path.
            as.callAbs(0x400000 + rng.next() % 0x1000);
            break;
          case 10:
            // Raw garbage byte: undecodable.
            code.append(static_cast<std::uint8_t>(
                0x60 + rng.next() % 8));
            break;
          default: {
            // Forward jmp landing anywhere in the next few bytes —
            // including mid-instruction once later bytes exist.
            GuestAddr at = as.here();
            as.jmpTo(at + 2 + rng.next() % 6);
            break;
          }
        }
    }
    as.ret();
}

struct Outcome
{
    RunResult r;
    Regs regs;
    std::vector<std::string> journal;
    std::uint64_t cycles = 0;
};

Outcome
runOne(std::uint64_t seed, bool superblocks, std::uint64_t budget)
{
    sim::Rng rng(seed);
    CodeBuffer code(0x1000);
    assembleRandom(code, rng);

    Outcome out;
    out.regs.rax = rng.next();
    out.regs.rdi = rng.next();
    out.regs.rsi = rng.next();
    out.regs.rdx = rng.next();
    for (auto &slot : out.regs.stack)
        slot = rng.next() % 512;

    JournalEnv env(seed ^ 0x5b7e11ull);
    if (superblocks) {
        SuperblockCache cache;
        out.r = cache.execute(code, 0x1000, out.regs, env, budget);
    } else {
        out.r = execute(code, 0x1000, out.regs, env, budget);
    }
    out.journal = std::move(env.journal);
    out.cycles = env.cycles;
    return out;
}

void
expectSame(std::uint64_t seed, const Outcome &a, const Outcome &b)
{
    ASSERT_EQ(a.r.instructions, b.r.instructions) << "seed " << seed;
    ASSERT_EQ(a.r.faulted, b.r.faulted) << "seed " << seed;
    ASSERT_EQ(a.r.hitLimit, b.r.hitLimit) << "seed " << seed;
    ASSERT_EQ(a.cycles, b.cycles) << "seed " << seed;
    ASSERT_EQ(a.regs.rax, b.regs.rax) << "seed " << seed;
    ASSERT_EQ(a.regs.rdi, b.regs.rdi) << "seed " << seed;
    ASSERT_EQ(a.regs.rsi, b.regs.rsi) << "seed " << seed;
    ASSERT_EQ(a.regs.rdx, b.regs.rdx) << "seed " << seed;
    ASSERT_EQ(a.journal, b.journal) << "seed " << seed;
}

TEST(SuperblockDifferential, RandomSequencesLockstep)
{
    // ~1e5 sequences; the budget keeps jmp-loops bounded while still
    // exercising the hitLimit path on both sides.
    for (std::uint64_t seed = 1; seed <= 100000; ++seed) {
        Outcome ref = runOne(seed, false, 200);
        Outcome sb = runOne(seed, true, 200);
        expectSame(seed, ref, sb);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(SuperblockDifferential, TinyBudgetsLockstep)
{
    // Budget exhaustion must bite at the same instruction regardless
    // of block shape: sweep budgets across the same programs.
    for (std::uint64_t seed = 1; seed <= 2000; ++seed) {
        for (std::uint64_t budget : {1ull, 2ull, 3ull, 5ull, 9ull}) {
            Outcome ref = runOne(seed, false, budget);
            Outcome sb = runOne(seed, true, budget);
            expectSame(seed * 16 + budget, ref, sb);
            if (::testing::Test::HasFatalFailure())
                return;
        }
    }
}

/** Env that patches code text mid-run: the first syscall rewrites
 *  its own site into nops (ABOM-style), which must invalidate any
 *  cached superblocks before the next block executes. */
class PatchingEnv : public ExecEnv
{
  public:
    std::vector<std::string> journal;

    GuestAddr
    onSyscall(Regs &regs, CodeBuffer &code,
              GuestAddr ip_after) override
    {
        journal.push_back("sys nr=" + std::to_string(regs.rax));
        if (!patched_) {
            patched_ = true;
            // Overwrite the 2-byte syscall just executed with nops.
            code.write8(ip_after - 2, kOpNop);
            code.write8(ip_after - 1, kOpNop);
        }
        regs.rax = 7;
        return ip_after;
    }

    GuestAddr
    onVsyscallCall(int slot, Regs &, CodeBuffer &,
                   GuestAddr ret_addr) override
    {
        journal.push_back("vsys slot=" + std::to_string(slot));
        return ret_addr;
    }

    GuestAddr
    onInvalidOpcode(Regs &, CodeBuffer &, GuestAddr ip) override
    {
        journal.push_back("ud2 ip=" + std::to_string(ip));
        return kFault;
    }

  private:
    bool patched_ = false;
};

TEST(SuperblockDifferential, MidRunPatchInvalidatesCache)
{
    // loop: mov; syscall; jmp loop — the second iteration must see
    // the patched (nop'd) text, not a stale superblock.
    auto build = [](CodeBuffer &code) {
        Assembler as(code);
        GuestAddr entry = as.movEaxImm(39);
        as.syscallInsn();
        as.jmpTo(entry);
        return entry;
    };

    CodeBuffer refCode(0x1000);
    GuestAddr entry = build(refCode);
    Regs refRegs;
    PatchingEnv refEnv;
    RunResult ref = execute(refCode, entry, refRegs, refEnv, 50);

    CodeBuffer sbCode(0x1000);
    build(sbCode);
    Regs sbRegs;
    PatchingEnv sbEnv;
    SuperblockCache cache;
    RunResult sb = cache.execute(sbCode, entry, sbRegs, sbEnv, 50);

    EXPECT_EQ(ref.instructions, sb.instructions);
    EXPECT_EQ(ref.hitLimit, sb.hitLimit);
    EXPECT_EQ(refEnv.journal, sbEnv.journal);
    EXPECT_EQ(refRegs.rax, sbRegs.rax);
    EXPECT_GE(cache.invalidations(), 2u); // initial key + the patch
}

TEST(SuperblockDifferential, CacheReusesBlocksAcrossCalls)
{
    CodeBuffer code(0x1000);
    Assembler as(code);
    GuestAddr entry = as.movEaxImm(1);
    as.nop(4);
    as.ret();

    SuperblockCache cache;
    JournalEnv env(1);
    for (int i = 0; i < 10; ++i) {
        Regs regs;
        RunResult r = cache.execute(code, entry, regs, env);
        EXPECT_EQ(r.instructions, 6u);
    }
    EXPECT_EQ(cache.blockCount(), 1u);
    EXPECT_EQ(cache.invalidations(), 1u); // first-touch key only
}

} // namespace
} // namespace xc::isa
