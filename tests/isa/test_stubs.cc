#include <gtest/gtest.h>

#include "isa/interpreter.h"
#include "isa/syscall_stub.h"

namespace xc::isa {
namespace {

/** Minimal env: record syscall numbers, fault on invalid. */
class CountingEnv : public ExecEnv
{
  public:
    std::vector<std::uint64_t> numbers;

    GuestAddr
    onSyscall(Regs &regs, CodeBuffer &, GuestAddr ip_after) override
    {
        numbers.push_back(regs.rax);
        return ip_after;
    }

    GuestAddr
    onVsyscallCall(int, Regs &, CodeBuffer &, GuestAddr ret) override
    {
        return ret;
    }

    GuestAddr
    onInvalidOpcode(Regs &, CodeBuffer &, GuestAddr) override
    {
        return kFault;
    }
};

TEST(StubLibrary, GlibcMovEaxStubExecutes)
{
    StubLibrary lib;
    const SyscallStub stub = lib.build(39, WrapperKind::GlibcMovEax,
                                        "getpid");
    Regs regs;
    CountingEnv env;
    RunResult r = execute(lib.code(), stub.entry, regs, env);
    EXPECT_FALSE(r.faulted);
    ASSERT_EQ(env.numbers.size(), 1u);
    EXPECT_EQ(env.numbers[0], 39u);
}

TEST(StubLibrary, GlibcMovRaxStubExecutes)
{
    StubLibrary lib;
    const SyscallStub stub = lib.build(15, WrapperKind::GlibcMovRax,
                                        "rt_sigreturn");
    Regs regs;
    CountingEnv env;
    execute(lib.code(), stub.entry, regs, env);
    ASSERT_EQ(env.numbers.size(), 1u);
    EXPECT_EQ(env.numbers[0], 15u);
}

TEST(StubLibrary, GoStackArgStubReadsStack)
{
    StubLibrary lib;
    const SyscallStub stub = lib.build(1, WrapperKind::GoStackArg,
                                        "syscall.Syscall");
    Regs regs;
    regs.stack[1] = 1;
    CountingEnv env;
    execute(lib.code(), stub.entry, regs, env);
    ASSERT_EQ(env.numbers.size(), 1u);
    EXPECT_EQ(env.numbers[0], 1u);
}

TEST(StubLibrary, PthreadCancellableStillWorksUnpatched)
{
    StubLibrary lib;
    const SyscallStub stub =
        lib.build(0, WrapperKind::PthreadCancellable, "read_cancel");
    Regs regs;
    CountingEnv env;
    RunResult r = execute(lib.code(), stub.entry, regs, env);
    EXPECT_FALSE(r.faulted);
    ASSERT_EQ(env.numbers.size(), 1u);
    EXPECT_EQ(env.numbers[0], 0u);
}

TEST(StubLibrary, PthreadCancellableHasGapBeforeSyscall)
{
    StubLibrary lib;
    const SyscallStub stub =
        lib.build(0, WrapperKind::PthreadCancellable, "read_cancel");
    // The defining property: the syscall is NOT immediately preceded
    // by the mov (ABOM's pattern match must fail).
    EXPECT_GT(stub.syscallSite, stub.entry + 5);
}

TEST(StubLibrary, JumpToSyscallLandsOnVictimSite)
{
    StubLibrary lib;
    const SyscallStub victim = lib.build(39, WrapperKind::GlibcMovEax,
                                          "getpid");
    const SyscallStub jumper = lib.buildJumpInto(victim, "tail_getpid");
    EXPECT_EQ(jumper.syscallSite, victim.syscallSite);

    Regs regs;
    CountingEnv env;
    RunResult r = execute(lib.code(), jumper.entry, regs, env);
    EXPECT_FALSE(r.faulted);
    ASSERT_EQ(env.numbers.size(), 1u);
    EXPECT_EQ(env.numbers[0], 39u);
}

TEST(StubLibrary, ManyStubsCoexist)
{
    StubLibrary lib;
    for (int nr = 0; nr < 50; ++nr)
        lib.build(nr, WrapperKind::GlibcMovEax);
    EXPECT_EQ(lib.stubs().size(), 50u);

    CountingEnv env;
    for (const auto &stub : lib.stubs()) {
        Regs regs;
        execute(lib.code(), stub.entry, regs, env);
    }
    ASSERT_EQ(env.numbers.size(), 50u);
    for (int nr = 0; nr < 50; ++nr)
        EXPECT_EQ(env.numbers[nr], static_cast<std::uint64_t>(nr));
}

TEST(StubLibrary, WrapperKindNamesAreDistinct)
{
    EXPECT_STRNE(wrapperKindName(WrapperKind::GlibcMovEax),
                 wrapperKindName(WrapperKind::GlibcMovRax));
    EXPECT_STRNE(wrapperKindName(WrapperKind::GoStackArg),
                 wrapperKindName(WrapperKind::PthreadCancellable));
}

} // namespace
} // namespace xc::isa
