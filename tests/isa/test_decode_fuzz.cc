#include <gtest/gtest.h>

#include "isa/insn.h"
#include "isa/interpreter.h"
#include "sim/rng.h"

namespace xc::isa {
namespace {

/** Env that never recovers: fuzzing must end in fault or ret. */
class InertEnv : public ExecEnv
{
  public:
    GuestAddr
    onSyscall(Regs &, CodeBuffer &, GuestAddr ip_after) override
    {
        return ip_after;
    }
    GuestAddr
    onVsyscallCall(int, Regs &, CodeBuffer &, GuestAddr ret) override
    {
        return ret;
    }
    GuestAddr
    onInvalidOpcode(Regs &, CodeBuffer &, GuestAddr) override
    {
        return kFault;
    }
};

class DecodeFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DecodeFuzz, RandomBytesNeverCrashDecoderOrInterpreter)
{
    sim::Rng rng(GetParam());
    for (int round = 0; round < 200; ++round) {
        CodeBuffer code(0x1000, 64);
        int len = 1 + static_cast<int>(rng.below(63));
        for (int i = 0; i < len; ++i)
            code.append(static_cast<std::uint8_t>(rng.below(256)));

        // Decoding any offset must terminate and return something
        // sane.
        for (GuestAddr va = 0x1000; va < code.end(); ++va) {
            Insn insn = decode(code, va);
            if (insn.valid()) {
                EXPECT_GE(insn.length, 1);
                EXPECT_LE(insn.length, 7);
            }
        }

        // Executing from the start must end (ret, fault, or the
        // instruction budget) without UB.
        Regs regs;
        InertEnv env;
        RunResult r = execute(code, 0x1000, regs, env, 500);
        EXPECT_TRUE(r.faulted || r.hitLimit ||
                    r.instructions <= 500);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 777u));

TEST(DecodeFuzz, AllSingleBytePrefixesTerminate)
{
    // Exhaustive: every first byte decodes to something bounded.
    for (int b = 0; b < 256; ++b) {
        CodeBuffer code(0x1000, 16);
        code.append(static_cast<std::uint8_t>(b));
        for (int i = 0; i < 8; ++i)
            code.append(0x00);
        Insn insn = decode(code, 0x1000);
        if (insn.valid()) {
            EXPECT_GE(insn.length, 1);
            EXPECT_LE(insn.length, 7);
        }
    }
}

} // namespace
} // namespace xc::isa
