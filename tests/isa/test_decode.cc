#include <gtest/gtest.h>

#include "isa/insn.h"

namespace xc::isa {
namespace {

CodeBuffer
bufWith(std::initializer_list<std::uint8_t> bytes)
{
    CodeBuffer code(0x1000);
    code.append(bytes);
    return code;
}

TEST(Decode, MovEaxImm)
{
    // mov $0x0,%eax — the __read wrapper prologue from Fig. 2.
    auto code = bufWith({0xb8, 0x00, 0x00, 0x00, 0x00});
    Insn insn = decode(code, 0x1000);
    EXPECT_EQ(insn.op, Op::MovEaxImm);
    EXPECT_EQ(insn.length, 5);
    EXPECT_EQ(insn.imm, 0);
}

TEST(Decode, MovRaxImm)
{
    // mov $0xf,%rax — the __restore_rt wrapper from Fig. 2.
    auto code = bufWith({0x48, 0xc7, 0xc0, 0x0f, 0x00, 0x00, 0x00});
    Insn insn = decode(code, 0x1000);
    EXPECT_EQ(insn.op, Op::MovRaxImm);
    EXPECT_EQ(insn.length, 7);
    EXPECT_EQ(insn.imm, 15);
}

TEST(Decode, MovRaxImmSignExtends)
{
    auto code = bufWith({0x48, 0xc7, 0xc0, 0xff, 0xff, 0xff, 0xff});
    Insn insn = decode(code, 0x1000);
    EXPECT_EQ(insn.op, Op::MovRaxImm);
    EXPECT_EQ(insn.imm, -1);
}

TEST(Decode, MovRaxFromRsp)
{
    // mov 0x8(%rsp),%rax — Go's syscall.Syscall from Fig. 2.
    auto code = bufWith({0x48, 0x8b, 0x44, 0x24, 0x08});
    Insn insn = decode(code, 0x1000);
    EXPECT_EQ(insn.op, Op::MovRaxRsp);
    EXPECT_EQ(insn.length, 5);
    EXPECT_EQ(insn.imm, 8);
}

TEST(Decode, Syscall)
{
    auto code = bufWith({0x0f, 0x05});
    Insn insn = decode(code, 0x1000);
    EXPECT_EQ(insn.op, Op::Syscall);
    EXPECT_EQ(insn.length, 2);
}

TEST(Decode, CallAbsWithSignExtendedVsyscallAddress)
{
    // callq *0xffffffffff600008 — patched __read from Fig. 2.
    auto code = bufWith({0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff});
    Insn insn = decode(code, 0x1000);
    EXPECT_EQ(insn.op, Op::CallAbs);
    EXPECT_EQ(insn.length, 7);
    EXPECT_EQ(static_cast<GuestAddr>(insn.imm), 0xffffffffff600008ull);
}

TEST(Decode, JmpRel8Backward)
{
    // jmp 0x10330 at 0x10337 — the phase-2 9-byte patch from Fig. 2.
    CodeBuffer code(0x10337);
    code.append({0xeb, 0xf7});
    Insn insn = decode(code, 0x10337);
    EXPECT_EQ(insn.op, Op::JmpRel8);
    EXPECT_EQ(insn.imm, -9);
    EXPECT_EQ(0x10337 + insn.length + insn.imm, 0x10330);
}

TEST(Decode, RetAndNop)
{
    auto code = bufWith({0xc3, 0x90});
    EXPECT_EQ(decode(code, 0x1000).op, Op::Ret);
    EXPECT_EQ(decode(code, 0x1001).op, Op::Nop);
}

TEST(Decode, ArgRegisterMovs)
{
    auto code = bufWith({0xbf, 0x01, 0x00, 0x00, 0x00,
                         0xbe, 0x02, 0x00, 0x00, 0x00,
                         0xba, 0x03, 0x00, 0x00, 0x00});
    EXPECT_EQ(decode(code, 0x1000).op, Op::MovEdiImm);
    EXPECT_EQ(decode(code, 0x1005).op, Op::MovEsiImm);
    EXPECT_EQ(decode(code, 0x100a).op, Op::MovEdxImm);
}

TEST(Decode, MidInstructionBytesOfPatchedCallAreInvalid)
{
    // Jumping to the "0x60 0xff" tail of a patched call must decode
    // as an invalid opcode (0x60 is not valid in 64-bit mode).
    auto code = bufWith({0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff});
    Insn insn = decode(code, 0x1005); // last two bytes
    EXPECT_EQ(insn.op, Op::Invalid);
}

TEST(Decode, TruncatedInstructionIsInvalid)
{
    auto code = bufWith({0xb8, 0x00}); // mov eax needs 5 bytes
    EXPECT_EQ(decode(code, 0x1000).op, Op::Invalid);
}

TEST(Decode, OutOfRangeIsInvalid)
{
    auto code = bufWith({0x90});
    EXPECT_EQ(decode(code, 0x2000).op, Op::Invalid);
}

TEST(Decode, UnknownOpcodeIsInvalid)
{
    auto code = bufWith({0x60}); // invalid in long mode
    EXPECT_EQ(decode(code, 0x1000).op, Op::Invalid);
}

TEST(VsyscallTable, SlotAddressesMatchPaperExamples)
{
    // __read (nr 0)        -> *0xffffffffff600008
    // __restore_rt (nr 15) -> *0xffffffffff600080
    // Go stack-arg slot    -> *0xffffffffff600c08
    EXPECT_EQ(vsyscallSlotAddr(0), 0xffffffffff600008ull);
    EXPECT_EQ(vsyscallSlotAddr(15), 0xffffffffff600080ull);
    EXPECT_EQ(vsyscallSlotAddr(kStackArgSlot), 0xffffffffff600c08ull);
}

TEST(VsyscallTable, SlotIndexInvertsSlotAddr)
{
    for (int nr : {0, 1, 15, 60, 231, kStackArgSlot})
        EXPECT_EQ(vsyscallSlotIndex(vsyscallSlotAddr(nr)), nr);
    EXPECT_EQ(vsyscallSlotIndex(kVsyscallBase), -1);
    EXPECT_EQ(vsyscallSlotIndex(kVsyscallBase + 4), -1);
    EXPECT_EQ(vsyscallSlotIndex(0x400000), -1);
}

TEST(VsyscallTable, Abs32RoundTripsThroughSignExtension)
{
    GuestAddr slot = vsyscallSlotAddr(0);
    EXPECT_EQ(sextAbs32(abs32Of(slot)), slot);
}

TEST(Disassemble, ProducesReadableText)
{
    auto code = bufWith({0xb8, 0x00, 0x00, 0x00, 0x00, 0x0f, 0x05});
    Insn mov = decode(code, 0x1000);
    Insn sc = decode(code, 0x1005);
    EXPECT_NE(disassemble(mov, 0x1000).find("mov"), std::string::npos);
    EXPECT_NE(disassemble(sc, 0x1005).find("syscall"), std::string::npos);
}

} // namespace
} // namespace xc::isa
