#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.h"
#include "hw/machine.h"
#include "xen/hypervisor.h"

namespace xc::test {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::kFaultKindCount;

TEST(Fault, KindNamesAreStableAndDistinct)
{
    std::vector<std::string> seen;
    for (int i = 0; i < kFaultKindCount; ++i) {
        std::string name =
            fault::faultKindName(static_cast<FaultKind>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_EQ(name.find(' '), std::string::npos) << name;
        for (const std::string &prev : seen)
            EXPECT_NE(name, prev);
        seen.push_back(name);
    }
    EXPECT_STREQ(fault::faultKindName(FaultKind::PacketLoss),
                 "packet_loss");
    EXPECT_STREQ(fault::faultKindName(FaultKind::VcpuStall),
                 "vcpu_stall");
}

TEST(Fault, DefaultPlanIsInert)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < kFaultKindCount; ++i) {
        FaultKind k = static_cast<FaultKind>(i);
        for (sim::Tick t = 0; t < 1000; t += 7)
            EXPECT_FALSE(inj.shouldInject(k, t, t * 3));
        EXPECT_EQ(inj.injected(k), 0u);
    }
    EXPECT_EQ(inj.totalInjected(), 0u);
}

TEST(Fault, RateOneAlwaysFires)
{
    FaultPlan plan;
    plan.at(FaultKind::PacketLoss).rate = 1.0;
    FaultInjector inj;
    inj.configure(plan);
    EXPECT_TRUE(inj.enabled());
    for (sim::Tick t = 0; t < 100; ++t)
        EXPECT_TRUE(inj.shouldInject(FaultKind::PacketLoss, t, t));
    EXPECT_EQ(inj.injected(FaultKind::PacketLoss), 100u);
    // Other kinds stay silent.
    EXPECT_FALSE(inj.shouldInject(FaultKind::ConnReset, 5, 5));
}

TEST(Fault, DecisionsArePureFunctionsOfSeedTickSalt)
{
    FaultPlan plan;
    plan.at(FaultKind::PacketLoss).rate = 0.1;
    plan.at(FaultKind::ConnReset).rate = 0.05;

    FaultInjector a, b;
    a.configure(plan);
    b.configure(plan);

    std::vector<bool> seq_a, seq_b;
    for (sim::Tick t = 0; t < 5000; t += 3) {
        seq_a.push_back(a.shouldInject(FaultKind::PacketLoss, t, 7));
        seq_a.push_back(a.shouldInject(FaultKind::ConnReset, t, 7));
    }
    // b asks in a different order — per-decision results must not
    // depend on call history (stateless hashing, no shared stream).
    for (sim::Tick t = 0; t < 5000; t += 3)
        seq_b.push_back(b.shouldInject(FaultKind::PacketLoss, t, 7));
    std::vector<bool> resets;
    for (sim::Tick t = 0; t < 5000; t += 3)
        resets.push_back(b.shouldInject(FaultKind::ConnReset, t, 7));
    std::vector<bool> interleaved;
    for (std::size_t i = 0; i < resets.size(); ++i) {
        interleaved.push_back(seq_b[i]);
        interleaved.push_back(resets[i]);
    }
    EXPECT_EQ(seq_a, interleaved);
    // Asking the same question twice gives the same answer.
    FaultInjector c;
    c.configure(plan);
    bool first = c.shouldInject(FaultKind::PacketLoss, 42, 9);
    EXPECT_EQ(c.shouldInject(FaultKind::PacketLoss, 42, 9), first);
}

TEST(Fault, DifferentSeedsGiveDifferentSchedules)
{
    FaultPlan p1, p2;
    p1.at(FaultKind::PacketLoss).rate = 0.5;
    p2.at(FaultKind::PacketLoss).rate = 0.5;
    p1.seed = 1;
    p2.seed = 2;
    FaultInjector a, b;
    a.configure(p1);
    b.configure(p2);
    int differing = 0;
    for (sim::Tick t = 0; t < 2000; ++t)
        if (a.shouldInject(FaultKind::PacketLoss, t, 0) !=
            b.shouldInject(FaultKind::PacketLoss, t, 0))
            ++differing;
    EXPECT_GT(differing, 100);
}

TEST(Fault, FiringCountTracksRateMonotonically)
{
    auto fired = [](double rate) {
        FaultPlan plan;
        plan.at(FaultKind::PacketLoss).rate = rate;
        FaultInjector inj;
        inj.configure(plan);
        for (sim::Tick t = 0; t < 20000; ++t)
            inj.shouldInject(FaultKind::PacketLoss, t, 1);
        return inj.injected(FaultKind::PacketLoss);
    };
    std::uint64_t low = fired(0.01);
    std::uint64_t mid = fired(0.1);
    std::uint64_t high = fired(0.5);
    EXPECT_LT(low, mid);
    EXPECT_LT(mid, high);
    // Rough calibration: 10% rate fires within [5%, 15%] over 20k.
    EXPECT_GT(mid, 20000ull / 20);
    EXPECT_LT(mid, 20000ull * 3 / 20);
}

TEST(Fault, UniformPlanArmsDataPathOnly)
{
    FaultPlan plan = FaultPlan::uniform(0.01, 7);
    EXPECT_TRUE(plan.anyEnabled());
    EXPECT_GT(plan.at(FaultKind::PacketLoss).rate, 0.0);
    EXPECT_GT(plan.at(FaultKind::EvtchnDrop).rate, 0.0);
    EXPECT_GT(plan.at(FaultKind::VcpuStall).rate, 0.0);
    // Boot-lifecycle faults stay off so sweeps degrade rather than
    // kill the service.
    EXPECT_EQ(plan.at(FaultKind::OomKill).rate, 0.0);
    EXPECT_EQ(plan.at(FaultKind::ContainerCrash).rate, 0.0);
    EXPECT_EQ(plan.at(FaultKind::SlowBoot).rate, 0.0);
    EXPECT_EQ(FaultPlan::uniform(0.0, 7).anyEnabled(), false);
}

TEST(Fault, JitterIsDeterministicAndBounded)
{
    FaultPlan plan;
    plan.at(FaultKind::ContainerCrash).rate = 1.0;
    FaultInjector inj;
    inj.configure(plan);
    for (std::uint64_t salt = 0; salt < 200; ++salt) {
        sim::Tick v =
            inj.jitter(FaultKind::ContainerCrash, salt, 100, 300);
        EXPECT_GE(v, 100u);
        EXPECT_LE(v, 300u);
        EXPECT_EQ(
            inj.jitter(FaultKind::ContainerCrash, salt, 100, 300), v);
    }
}

TEST(Fault, EvtchnDropLosesNotifications)
{
    hw::Machine machine(hw::MachineSpec::ec2C4_2xlarge(), 1);
    FaultPlan plan;
    plan.at(FaultKind::EvtchnDrop).rate = 1.0;
    machine.configureFaults(plan);

    xen::EventChannels evtchn;
    evtchn.attachFaults(&machine.faults(), &machine.events());
    int delivered = 0;
    xen::EvtchnPort port =
        evtchn.bind(1, [&delivered] { ++delivered; });
    for (int i = 0; i < 10; ++i)
        evtchn.notify(port);
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(evtchn.dropped(), 10u);
    EXPECT_EQ(evtchn.notifications(), 10u);

    // Disabled again: everything flows.
    machine.configureFaults(FaultPlan{});
    evtchn.notify(port);
    EXPECT_EQ(delivered, 1);
}

TEST(Fault, GrantOpsFailUnderInjection)
{
    hw::Machine machine(hw::MachineSpec::ec2C4_2xlarge(), 1);
    FaultPlan plan;
    plan.at(FaultKind::GrantFail).rate = 1.0;
    machine.configureFaults(plan);

    xen::GrantTable grants(1);
    grants.attachFaults(&machine.faults(), &machine.events());
    xen::GrantRef ref = grants.grantAccess(2, 0x100, false);
    EXPECT_FALSE(grants.mapGrant(ref, 2));
    EXPECT_FALSE(grants.grantCopy(ref, 2));
    EXPECT_EQ(grants.failedOps(), 2u);

    machine.configureFaults(FaultPlan{});
    EXPECT_TRUE(grants.mapGrant(ref, 2));
}

TEST(Fault, ReportListsOnlyFiredKinds)
{
    FaultPlan plan;
    plan.at(FaultKind::PacketLoss).rate = 1.0;
    FaultInjector inj;
    inj.configure(plan);
    inj.shouldInject(FaultKind::PacketLoss, 1, 1);
    std::string report = inj.report();
    EXPECT_NE(report.find("packet_loss"), std::string::npos);
    EXPECT_EQ(report.find("vcpu_stall"), std::string::npos);
}

} // namespace
} // namespace xc::test
