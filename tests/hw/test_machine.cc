#include <gtest/gtest.h>

#include "hw/machine.h"

namespace xc::hw {
namespace {

TEST(Machine, BuildsLogicalCpus)
{
    Machine m(MachineSpec::ec2C4_2xlarge());
    EXPECT_EQ(m.numCpus(), 8); // 4 cores x 2 threads
    EXPECT_EQ(m.cpu(0).id(), 0);
    EXPECT_EQ(m.cpu(7).id(), 7);
}

TEST(Machine, MemorySizedFromSpec)
{
    Machine m(MachineSpec::ec2C4_2xlarge());
    EXPECT_EQ(m.memory().totalBytes(), 15ull << 30);
}

TEST(Machine, SameSeedSameRngStream)
{
    Machine a(MachineSpec::ec2C4_2xlarge(), 7);
    Machine b(MachineSpec::ec2C4_2xlarge(), 7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.rng().next(), b.rng().next());
}

TEST(Machine, CycleAccountingPerClass)
{
    Machine m(MachineSpec::ec2C4_2xlarge());
    Cpu &cpu = m.cpu(0);
    cpu.account(CycleClass::User, 100);
    cpu.account(CycleClass::Kernel, 50);
    cpu.account(CycleClass::User, 10);
    EXPECT_EQ(cpu.cyclesIn(CycleClass::User), 110u);
    EXPECT_EQ(cpu.cyclesIn(CycleClass::Kernel), 50u);
    EXPECT_EQ(cpu.cyclesIn(CycleClass::Hypervisor), 0u);
}

TEST(Tlb, GlobalBitSkipsKernelRefill)
{
    CostModel costs;
    Tlb tlb;
    Cycles with_global = tlb.onAddressSpaceSwitch(costs, true);
    Cycles without_global = tlb.onAddressSpaceSwitch(costs, false);
    EXPECT_EQ(with_global, costs.tlbRefillUser);
    EXPECT_EQ(without_global, costs.tlbRefillUser + costs.tlbRefillKernel);
    EXPECT_EQ(tlb.switches(), 2u);
    EXPECT_EQ(tlb.kernelFlushes(), 1u);
}

TEST(Tlb, FullFlushChargesEverything)
{
    CostModel costs;
    Tlb tlb;
    Cycles c = tlb.onFullFlush(costs);
    EXPECT_EQ(c, costs.tlbRefillUser + costs.tlbRefillKernel);
    EXPECT_EQ(tlb.fullFlushes(), 1u);
}

TEST(Machine, TicksAdvanceOnlyViaEvents)
{
    Machine m(MachineSpec::ec2C4_2xlarge());
    EXPECT_EQ(m.now(), 0u);
    m.events().schedule(1000, [] {});
    m.events().run();
    EXPECT_EQ(m.now(), 1000u);
}

} // namespace
} // namespace xc::hw
