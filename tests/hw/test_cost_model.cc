#include <gtest/gtest.h>

#include "hw/cost_model.h"

namespace xc::hw {
namespace {

TEST(CostModel, PresetsHaveExpectedShape)
{
    auto ec2 = MachineSpec::ec2C4_2xlarge();
    EXPECT_EQ(ec2.cores, 4);
    EXPECT_EQ(ec2.threadsPerCore, 2);
    EXPECT_TRUE(ec2.nestedCloud);

    auto gce = MachineSpec::gceCustom4();
    EXPECT_EQ(gce.cores, 4);
    EXPECT_TRUE(gce.nestedCloud);

    auto local = MachineSpec::xeonE52690Local();
    EXPECT_EQ(local.cores, 16);
    EXPECT_FALSE(local.nestedCloud);
    EXPECT_GT(local.memBytes, ec2.memBytes);
}

TEST(CostModel, CyclesToTicksScalesWithFrequency)
{
    MachineSpec spec;
    spec.ghz = 2.0; // period 500 ps
    EXPECT_EQ(spec.periodTicks(), 500u);
    EXPECT_EQ(spec.cyclesToTicks(10), 5000u);
}

TEST(CostModel, TransitionCostOrderingMatchesArchitecture)
{
    CostModel c;
    // The entire X-Containers argument in one assertion chain:
    // function-call syscalls are far cheaper than native traps,
    // KPTI makes traps much worse, PV forwarding is worse still,
    // ptrace is the worst, nested exits dwarf plain exits.
    EXPECT_LT(c.functionCallDispatch, c.syscallTrap);
    EXPECT_GT(c.kptiTrapOverhead, c.syscallTrap);
    // The full PV forwarding path (incl. the address-space switch
    // and TLB refills of §4.1) costs more than even a KPTI trap.
    EXPECT_GT(c.pvSyscallForward + c.pvIretHypercall +
                  2 * c.pageTableSwitch + c.tlbRefillUser +
                  c.tlbRefillKernel,
              c.syscallTrap + c.kptiTrapOverhead);
    EXPECT_GT(2 * c.ptraceStop + c.sentryHandling,
              c.pvSyscallForward + c.pvIretHypercall);
    EXPECT_GT(c.vmexitNested, 5 * c.vmexit);
    EXPECT_LT(c.userIret, c.pvIretHypercall);
    EXPECT_LT(c.xcEventDelivery, c.pvEventDelivery);
    EXPECT_LT(c.syscallTrapStripped, c.syscallTrap);
}

TEST(CostModel, SchedulingAndMemoryCostsPositive)
{
    CostModel c;
    EXPECT_GT(c.contextSwitchBase, 0u);
    EXPECT_GT(c.vcpuSwitch, c.contextSwitchBase);
    EXPECT_GT(c.tlbRefillKernel, 0u);
    EXPECT_GT(c.tlbRefillUser, 0u);
    EXPECT_GT(c.mmuUpdatePte, c.nativePte);
    EXPECT_GT(c.forkBase, 0u);
    EXPECT_GT(c.execBase, c.forkBase);
}

} // namespace
} // namespace xc::hw
