#include <gtest/gtest.h>

#include "hw/virtio.h"
#include "sim/snapshot.h"

namespace xc::test {
namespace {

using hw::VirtQueue;
using sim::snap::SnapError;
using sim::snap::SnapReader;
using sim::snap::SnapWriter;

VirtQueue::Config
cfg(std::uint16_t size, bool suppression = true)
{
    VirtQueue::Config c;
    c.size = size;
    c.kickSuppression = suppression;
    return c;
}

TEST(VirtQueue, StartsEmpty)
{
    VirtQueue q(cfg(8));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.pending(), 0);
    EXPECT_FALSE(q.kickNeeded());
}

TEST(VirtQueue, KickOnlyOnEmptyToNonEmptyEdge)
{
    VirtQueue q(cfg(8));
    ASSERT_TRUE(q.produce());
    EXPECT_TRUE(q.kickNeeded()); // first descriptor wakes the device
    q.noteKick();
    ASSERT_TRUE(q.produce());
    EXPECT_FALSE(q.kickNeeded()); // device already processing
    q.noteSuppressed();
    EXPECT_EQ(q.kicks(), 1u);
    EXPECT_EQ(q.suppressedKicks(), 1u);

    // Drain; the next produce is an edge again.
    EXPECT_EQ(q.consume(), 2);
    ASSERT_TRUE(q.produce());
    EXPECT_TRUE(q.kickNeeded());
}

TEST(VirtQueue, NoSuppressionKicksEveryProduce)
{
    VirtQueue q(cfg(8, /*suppression=*/false));
    ASSERT_TRUE(q.produce());
    EXPECT_TRUE(q.kickNeeded());
    ASSERT_TRUE(q.produce());
    EXPECT_TRUE(q.kickNeeded()); // pre-1.0 driver: kick per batch
}

TEST(VirtQueue, FullRingStallsNotLoses)
{
    VirtQueue q(cfg(4));
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(q.produce());
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.produce()); // backpressure, not overwrite
    EXPECT_FALSE(q.produce());
    EXPECT_EQ(q.stalls(), 2u);
    EXPECT_EQ(q.produced(), 4u);
    EXPECT_EQ(q.pending(), 4);

    EXPECT_EQ(q.consume(), 4);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.produce()); // room again after the drain
}

TEST(VirtQueue, ConsumeHonorsBatchLimit)
{
    VirtQueue q(cfg(16));
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(q.produce());
    EXPECT_EQ(q.consume(4), 4);
    EXPECT_EQ(q.pending(), 6);
    EXPECT_EQ(q.consume(4), 4);
    EXPECT_EQ(q.consume(4), 2); // partial final batch
    EXPECT_EQ(q.consume(4), 0); // empty: not a batch
    EXPECT_EQ(q.batches(), 3u);
    EXPECT_EQ(q.consumed(), 10u);
}

TEST(VirtQueue, IndicesWrapAtSixtyFourK)
{
    // Push >65536 descriptors through a small ring: the u16 indices
    // must wrap while pending() stays correct throughout.
    VirtQueue q(cfg(4));
    for (int i = 0; i < 70000; ++i) {
        ASSERT_TRUE(q.produce()) << i;
        ASSERT_EQ(q.consume(), 1) << i;
        ASSERT_TRUE(q.empty()) << i;
    }
    EXPECT_EQ(q.produced(), 70000u);
    EXPECT_EQ(q.consumed(), 70000u);
    // 70000 mod 65536 = 4464: the raw indices wrapped.
    EXPECT_EQ(q.availIdx(), 4464);
    EXPECT_EQ(q.usedIdx(), 4464);
    EXPECT_EQ(q.pending(), 0);
}

TEST(VirtQueue, PendingCorrectAcrossTheWrapBoundary)
{
    VirtQueue q(cfg(8));
    // Park the indices just below the wrap point.
    for (int i = 0; i < 65534; ++i) {
        ASSERT_TRUE(q.produce());
        q.consume();
    }
    EXPECT_EQ(q.availIdx(), 65534);
    // Straddle the boundary: availIdx wraps past 0 while usedIdx
    // has not.
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(q.produce());
    EXPECT_EQ(q.availIdx(), 3); // 65534 + 5 mod 65536
    EXPECT_EQ(q.usedIdx(), 65534);
    EXPECT_EQ(q.pending(), 5);
    EXPECT_EQ(q.consume(), 5);
    EXPECT_EQ(q.usedIdx(), 3);
}

std::string
saved(const VirtQueue &q)
{
    SnapWriter w;
    q.saveState(w);
    return w.take();
}

TEST(VirtQueue, SnapshotRoundtripIsAFixedPoint)
{
    VirtQueue q(cfg(8));
    for (int i = 0; i < 5; ++i)
        q.produce();
    q.noteKick();
    q.consume(3);
    q.produce(); // leave it mid-flight
    std::string a = saved(q);

    VirtQueue fresh(cfg(8));
    SnapReader r(a);
    fresh.loadState(r);
    EXPECT_EQ(saved(fresh), a);
    EXPECT_EQ(fresh.pending(), q.pending());
    EXPECT_EQ(fresh.kicks(), q.kicks());
    EXPECT_EQ(fresh.produced(), q.produced());
}

TEST(VirtQueue, SnapshotRejectsMismatchedGeometry)
{
    VirtQueue q(cfg(8));
    std::string a = saved(q);

    VirtQueue wrongSize(cfg(16));
    SnapReader r1(a);
    EXPECT_THROW(wrongSize.loadState(r1), SnapError);

    VirtQueue wrongMode(cfg(8, /*suppression=*/false));
    SnapReader r2(a);
    EXPECT_THROW(wrongMode.loadState(r2), SnapError);
}

} // namespace
} // namespace xc::test
