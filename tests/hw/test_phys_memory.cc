#include <gtest/gtest.h>

#include "hw/phys_memory.h"
#include "sim/snapshot.h"

namespace xc::hw {
namespace {

TEST(PhysMemory, TotalFramesFromBytes)
{
    PhysMemory mem(1 << 20); // 1 MB
    EXPECT_EQ(mem.totalFrames(), 256u);
    EXPECT_EQ(mem.freeFrames(), 256u);
    EXPECT_EQ(mem.totalBytes(), 1u << 20);
}

TEST(PhysMemory, AllocReducesFree)
{
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(100, 1);
    ASSERT_TRUE(run.has_value());
    EXPECT_EQ(mem.freeFrames(), 156u);
    EXPECT_EQ(mem.usedFrames(), 100u);
    EXPECT_EQ(mem.ownedFrames(1), 100u);
}

TEST(PhysMemory, ExhaustionReturnsNulloptNotPanic)
{
    PhysMemory mem(1 << 20);
    EXPECT_TRUE(mem.alloc(200, 1).has_value());
    EXPECT_FALSE(mem.alloc(100, 2).has_value());
    // Failed allocation must not leak accounting.
    EXPECT_EQ(mem.usedFrames(), 200u);
    EXPECT_EQ(mem.ownedFrames(2), 0u);
}

TEST(PhysMemory, FreeReturnsFrames)
{
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(64, 3);
    ASSERT_TRUE(run);
    mem.free(*run, 64);
    EXPECT_EQ(mem.freeFrames(), 256u);
    EXPECT_EQ(mem.ownedFrames(3), 0u);
}

TEST(PhysMemory, OwnerOfTracksRuns)
{
    PhysMemory mem(1 << 20);
    auto a = mem.alloc(10, 7);
    auto b = mem.alloc(10, 8);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(mem.ownerOf(*a), 7u);
    EXPECT_EQ(mem.ownerOf(*a + 9), 7u);
    EXPECT_EQ(mem.ownerOf(*b), 8u);
    EXPECT_EQ(mem.ownerOf(999999), kNoOwner);
}

TEST(PhysMemory, FreeAllOwnedByReleasesEverything)
{
    PhysMemory mem(1 << 20);
    mem.alloc(10, 7);
    mem.alloc(20, 7);
    auto other = mem.alloc(5, 9);
    ASSERT_TRUE(other);
    mem.freeAllOwnedBy(7);
    EXPECT_EQ(mem.ownedFrames(7), 0u);
    EXPECT_EQ(mem.usedFrames(), 5u);
    EXPECT_EQ(mem.ownerOf(*other), 9u);
}

TEST(PhysMemory, ManySmallVmAllocationsUntilFull)
{
    // Figure 8 mechanism: 96 GB machine, how many 512 MB VMs fit?
    PhysMemory mem(96ull << 30);
    std::uint64_t vm_frames = (512ull << 20) / kPageSize;
    int booted = 0;
    while (mem.alloc(vm_frames, booted + 1))
        ++booted;
    EXPECT_EQ(booted, 192); // 96 GB / 512 MB
}

TEST(PhysMemory, UntouchedFramesAliasTheZeroPage)
{
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(16, 1);
    ASSERT_TRUE(run);
    // Reads of never-written frames all resolve to one canonical
    // zero page: no per-frame host memory is materialized.
    EXPECT_EQ(mem.frameData(*run), PhysMemory::zeroPage());
    EXPECT_EQ(mem.frameData(*run + 15), PhysMemory::zeroPage());
    EXPECT_EQ(mem.touchedFrames(), 0u);
    for (std::uint64_t i = 0; i < kPageSize; ++i)
        ASSERT_EQ(mem.frameData(*run)[i], 0u);
}

TEST(PhysMemory, WriteMaterializesExactlyOneFrame)
{
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(16, 1);
    ASSERT_TRUE(run);
    std::uint8_t *p = mem.frameDataMutable(*run + 3);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p[0], 0u); // zero-filled on first touch
    p[0] = 0xab;
    p[kPageSize - 1] = 0xcd;
    EXPECT_EQ(mem.touchedFrames(), 1u);
    // The touched frame no longer aliases the zero page; its
    // neighbours still do.
    EXPECT_NE(mem.frameData(*run + 3), PhysMemory::zeroPage());
    EXPECT_EQ(mem.frameData(*run + 3)[0], 0xab);
    EXPECT_EQ(mem.frameData(*run + 3)[kPageSize - 1], 0xcd);
    EXPECT_EQ(mem.frameData(*run + 2), PhysMemory::zeroPage());
}

TEST(PhysMemory, FreeDropsMaterializedContents)
{
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(4, 1);
    ASSERT_TRUE(run);
    mem.frameDataMutable(*run)[0] = 0x5a;
    EXPECT_EQ(mem.touchedFrames(), 1u);
    mem.free(*run, 4);
    // Contents die with the run: a freed container's dirtied frames
    // stop costing host memory immediately.
    EXPECT_EQ(mem.touchedFrames(), 0u);
    EXPECT_EQ(mem.frameData(*run), PhysMemory::zeroPage());
}

TEST(PhysMemory, SnapshotIsByteFixedPointWithTouchedFrames)
{
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(8, 1);
    ASSERT_TRUE(run);
    mem.alloc(4, 2);
    mem.frameDataMutable(*run + 1)[7] = 0x11;
    mem.frameDataMutable(*run + 5)[0] = 0x22;

    sim::snap::SnapWriter first;
    mem.saveState(first);
    PhysMemory reloaded(1 << 20);
    sim::snap::SnapReader r(first.data());
    reloaded.loadState(r);
    sim::snap::SnapWriter second;
    reloaded.saveState(second);
    EXPECT_EQ(first.data(), second.data());

    // Restored contents and accounting match the original.
    EXPECT_EQ(reloaded.touchedFrames(), 2u);
    EXPECT_EQ(reloaded.usedFrames(), 12u);
    EXPECT_EQ(reloaded.frameData(*run + 1)[7], 0x11);
    EXPECT_EQ(reloaded.frameData(*run + 5)[0], 0x22);
    // Untouched frames alias the zero page after restore too.
    EXPECT_EQ(reloaded.frameData(*run), PhysMemory::zeroPage());
}

TEST(PhysMemory, HugePoolCostsNothingUntilWritten)
{
    // The 10k-container mechanism: reserving a whole rack's worth of
    // frames is free per frame; only dirtied pages cost host bytes.
    PhysMemory mem(384ull << 30); // 384 GB simulated pool
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(mem.alloc((32ull << 20) / kPageSize,
                              static_cast<OwnerId>(i)));
    EXPECT_EQ(mem.usedFrames(), 1000ull * 8192);
    EXPECT_EQ(mem.touchedFrames(), 0u);
}

TEST(PhysMemory, DoubleFreePanics)
{
    sim::setThrowOnError(true);
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(4, 1);
    ASSERT_TRUE(run);
    mem.free(*run, 4);
    EXPECT_THROW(mem.free(*run, 4), sim::SimError);
    sim::setThrowOnError(false);
}

} // namespace
} // namespace xc::hw
