#include <gtest/gtest.h>

#include "hw/phys_memory.h"

namespace xc::hw {
namespace {

TEST(PhysMemory, TotalFramesFromBytes)
{
    PhysMemory mem(1 << 20); // 1 MB
    EXPECT_EQ(mem.totalFrames(), 256u);
    EXPECT_EQ(mem.freeFrames(), 256u);
    EXPECT_EQ(mem.totalBytes(), 1u << 20);
}

TEST(PhysMemory, AllocReducesFree)
{
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(100, 1);
    ASSERT_TRUE(run.has_value());
    EXPECT_EQ(mem.freeFrames(), 156u);
    EXPECT_EQ(mem.usedFrames(), 100u);
    EXPECT_EQ(mem.ownedFrames(1), 100u);
}

TEST(PhysMemory, ExhaustionReturnsNulloptNotPanic)
{
    PhysMemory mem(1 << 20);
    EXPECT_TRUE(mem.alloc(200, 1).has_value());
    EXPECT_FALSE(mem.alloc(100, 2).has_value());
    // Failed allocation must not leak accounting.
    EXPECT_EQ(mem.usedFrames(), 200u);
    EXPECT_EQ(mem.ownedFrames(2), 0u);
}

TEST(PhysMemory, FreeReturnsFrames)
{
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(64, 3);
    ASSERT_TRUE(run);
    mem.free(*run, 64);
    EXPECT_EQ(mem.freeFrames(), 256u);
    EXPECT_EQ(mem.ownedFrames(3), 0u);
}

TEST(PhysMemory, OwnerOfTracksRuns)
{
    PhysMemory mem(1 << 20);
    auto a = mem.alloc(10, 7);
    auto b = mem.alloc(10, 8);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(mem.ownerOf(*a), 7u);
    EXPECT_EQ(mem.ownerOf(*a + 9), 7u);
    EXPECT_EQ(mem.ownerOf(*b), 8u);
    EXPECT_EQ(mem.ownerOf(999999), kNoOwner);
}

TEST(PhysMemory, FreeAllOwnedByReleasesEverything)
{
    PhysMemory mem(1 << 20);
    mem.alloc(10, 7);
    mem.alloc(20, 7);
    auto other = mem.alloc(5, 9);
    ASSERT_TRUE(other);
    mem.freeAllOwnedBy(7);
    EXPECT_EQ(mem.ownedFrames(7), 0u);
    EXPECT_EQ(mem.usedFrames(), 5u);
    EXPECT_EQ(mem.ownerOf(*other), 9u);
}

TEST(PhysMemory, ManySmallVmAllocationsUntilFull)
{
    // Figure 8 mechanism: 96 GB machine, how many 512 MB VMs fit?
    PhysMemory mem(96ull << 30);
    std::uint64_t vm_frames = (512ull << 20) / kPageSize;
    int booted = 0;
    while (mem.alloc(vm_frames, booted + 1))
        ++booted;
    EXPECT_EQ(booted, 192); // 96 GB / 512 MB
}

TEST(PhysMemory, DoubleFreePanics)
{
    sim::setThrowOnError(true);
    PhysMemory mem(1 << 20);
    auto run = mem.alloc(4, 1);
    ASSERT_TRUE(run);
    mem.free(*run, 4);
    EXPECT_THROW(mem.free(*run, 4), sim::SimError);
    sim::setThrowOnError(false);
}

} // namespace
} // namespace xc::hw
