/**
 * @file
 * Chunked copy-on-write page-table sharing (DESIGN.md §17): chunk
 * aliasing via shareFrom, fault-on-write breaks, interner dedupe of
 * cow-marked fork variants, footprint accounting, and snapshot byte
 * fixed points across shared state.
 */

#include <gtest/gtest.h>

#include "hw/page_table.h"
#include "sim/snapshot.h"

namespace xc::hw {
namespace {

/** Map @p n user pages starting at @p base, one page apart. */
void
mapUserPages(PageTable &pt, Vaddr base, int n,
             std::uint32_t flags = PtePresent | PteUser)
{
    for (int i = 0; i < n; ++i)
        pt.map(base + static_cast<Vaddr>(i) * kPageSize,
               static_cast<Pfn>(100 + i), flags);
}

TEST(PageTableCow, ShareFromAliasesChunksNotCopies)
{
    PageTable tmpl, clone;
    mapUserPages(tmpl, 0x400000, 8);
    tmpl.map(kKernelBase, 1, PtePresent | PteGlobal);

    clone.shareFrom(tmpl);
    EXPECT_EQ(clone.mappedPages(), tmpl.mappedPages());
    EXPECT_EQ(clone.globalPages(), tmpl.globalPages());
    EXPECT_EQ(clone.chunkCount(), tmpl.chunkCount());

    // Shared chunks are counted once by the footprint walker.
    PageTableFootprint fp;
    fp.add(tmpl);
    fp.add(clone);
    EXPECT_EQ(fp.tables, 2u);
    EXPECT_EQ(fp.uniqueChunkBytes,
              tmpl.chunkCount() * PageTable::kChunkBytes);
    EXPECT_EQ(fp.eagerChunkBytes, 2 * fp.uniqueChunkBytes);
}

TEST(PageTableCow, WriteBreaksOnlyTheTouchedChunk)
{
    PageTable tmpl, clone;
    // Two chunks: user pages in chunk 0x400000>>21 and a second
    // chunk far away.
    mapUserPages(tmpl, 0x400000, 4);
    mapUserPages(tmpl, 0x40000000, 4);
    clone.shareFrom(tmpl);
    ASSERT_EQ(clone.cowBreaks(), 0u);

    // A mutation through the clone clones exactly one chunk.
    clone.map(0x400000, 999, PtePresent | PteUser | PteWritable);
    EXPECT_EQ(clone.cowBreaks(), 1u);
    EXPECT_EQ(clone.lookup(0x400000)->pfn, 999u);
    // The template still sees the original mapping.
    EXPECT_EQ(tmpl.lookup(0x400000)->pfn, 100u);

    // The untouched chunk stays shared: footprint counts it once.
    PageTableFootprint fp;
    fp.add(tmpl);
    fp.add(clone);
    EXPECT_EQ(fp.uniqueChunkBytes, 3 * PageTable::kChunkBytes);
}

TEST(PageTableCow, LookupMutableBreaksSharing)
{
    PageTable tmpl, clone;
    mapUserPages(tmpl, 0x400000, 2);
    clone.shareFrom(tmpl);

    Pte *pte = clone.lookupMutable(0x400000);
    ASSERT_TRUE(pte);
    pte->flags |= PteDirty;
    EXPECT_EQ(clone.cowBreaks(), 1u);
    EXPECT_TRUE(clone.lookup(0x400000)->dirty());
    EXPECT_FALSE(tmpl.lookup(0x400000)->dirty());
}

TEST(PageTableCow, NFlyweightClonesShareOneTemplate)
{
    // The 10k-container claim in miniature: N aliases of one
    // template cost one template's worth of unique chunk bytes.
    PageTable tmpl;
    mapUserPages(tmpl, 0x400000, 32);
    tmpl.map(kKernelBase, 1, PtePresent | PteGlobal);

    constexpr int kN = 100;
    std::vector<PageTable> clones(kN);
    for (PageTable &c : clones)
        c.shareFrom(tmpl);

    PageTableFootprint fp;
    fp.add(tmpl);
    for (PageTable &c : clones)
        fp.add(c);
    EXPECT_EQ(fp.tables, kN + 1u);
    EXPECT_EQ(fp.uniqueChunkBytes,
              tmpl.chunkCount() * PageTable::kChunkBytes);
    // The eager flat representation pays per table, per slot.
    EXPECT_EQ(fp.eagerFlatBytes(),
              fp.slots * PageTable::kSlotBytes);
    EXPECT_GT(fp.eagerFlatBytes(), 10 * fp.uniqueChunkBytes);
}

TEST(PageTableCow, InternerDedupesCowVariantAcrossForks)
{
    // Fork cow-marks the parent's writable pages — without the
    // interner, every fork from a shared template would privately
    // clone the template chunk just to set identical PteCow bits.
    PageTableInterner interner;
    PageTable tmpl;
    mapUserPages(tmpl, 0x400000, 8,
                 PtePresent | PteUser | PteWritable);
    interner.pinAll(tmpl);
    EXPECT_EQ(interner.pinnedChunks(), tmpl.chunkCount());

    constexpr int kForks = 10;
    std::vector<PageTable> parents(kForks);
    std::vector<PageTable> children(kForks);
    for (int i = 0; i < kForks; ++i) {
        parents[i].shareFrom(tmpl);
        parents[i].attachInterner(&interner);
        children[i].attachInterner(&interner);
        children[i].copyUserFrom(parents[i], /*cow=*/true);
    }
    // One cow-marked variant serves every fork. It is registered
    // under both the template's key and its own (so forking a fork
    // resolves to the same chunk): two map entries, one chunk.
    EXPECT_EQ(interner.variantChunks(), 2 * tmpl.chunkCount());

    PageTableFootprint fp;
    fp.add(tmpl);
    for (int i = 0; i < kForks; ++i) {
        fp.add(parents[i]);
        fp.add(children[i]);
    }
    // Unique bytes: the pristine template chunk + its one cow
    // variant, regardless of fork count.
    EXPECT_EQ(fp.uniqueChunkBytes, 2 * PageTable::kChunkBytes);
}

TEST(PageTableCow, SharedTablesSnapshotToByteFixedPoint)
{
    PageTable tmpl, clone;
    mapUserPages(tmpl, 0x400000, 4);
    clone.shareFrom(tmpl);
    clone.map(0x400000, 42, PtePresent | PteUser | PteWritable);

    sim::snap::SnapWriter first;
    clone.saveState(first);
    PageTable reloaded;
    sim::snap::SnapReader r(first.data());
    reloaded.loadState(r);
    sim::snap::SnapWriter second;
    reloaded.saveState(second);
    EXPECT_EQ(first.data(), second.data());
    EXPECT_EQ(reloaded.mappedPages(), clone.mappedPages());
    EXPECT_EQ(reloaded.lookup(0x400000)->pfn, 42u);
}

TEST(PageTableCow, ClearUserDropsWholeSharedChunks)
{
    PageTable tmpl, clone;
    mapUserPages(tmpl, 0x400000, 4);
    tmpl.map(kKernelBase, 9, PtePresent | PteGlobal);
    clone.shareFrom(tmpl);

    clone.clearUser();
    EXPECT_EQ(clone.mappedPages(), 1u);
    EXPECT_TRUE(clone.lookup(kKernelBase));
    // Dropping a chunk reference is not a fault-on-write break.
    EXPECT_EQ(clone.cowBreaks(), 0u);
    // The template is untouched.
    EXPECT_EQ(tmpl.mappedPages(), 5u);
}

} // namespace
} // namespace xc::hw
