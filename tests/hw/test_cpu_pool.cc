#include <gtest/gtest.h>

#include <vector>

#include "hw/cpu_pool.h"

namespace xc::hw {
namespace {

class FakeClient : public CpuClient
{
  public:
    explicit FakeClient(std::string name) : name_(std::move(name)) {}

    void
    granted(int core, sim::Tick slice_end) override
    {
        ++grants;
        lastCore = core;
        lastSliceEnd = slice_end;
        if (onGranted)
            onGranted(core);
    }

    const std::string &clientName() const override { return name_; }

    int grants = 0;
    int lastCore = -1;
    sim::Tick lastSliceEnd = 0;
    std::function<void(int)> onGranted;

  private:
    std::string name_;
};

struct PoolRig
{
    explicit PoolRig(int cores, CorePool::Config cfg = {})
        : machine(hw::MachineSpec::ec2C4_2xlarge(), 1)
    {
        cfg.cores = cores;
        pool = std::make_unique<CorePool>(machine, cfg, "test");
    }

    Machine machine;
    std::unique_ptr<CorePool> pool;
};

TEST(CorePool, GrantsIdleCoreToSubmittedClient)
{
    PoolRig rig(2);
    FakeClient a("a");
    rig.pool->submit(&a);
    rig.machine.events().run();
    EXPECT_EQ(a.grants, 1);
    EXPECT_GE(a.lastCore, 0);
}

TEST(CorePool, TwoClientsTwoCores)
{
    PoolRig rig(2);
    FakeClient a("a"), b("b");
    rig.pool->submit(&a);
    rig.pool->submit(&b);
    rig.machine.events().run();
    EXPECT_EQ(a.grants, 1);
    EXPECT_EQ(b.grants, 1);
    EXPECT_NE(a.lastCore, b.lastCore);
}

TEST(CorePool, ThirdClientWaitsUntilRelease)
{
    PoolRig rig(1);
    FakeClient a("a"), b("b");
    rig.pool->submit(&a);
    rig.pool->submit(&b);
    rig.machine.events().run();
    EXPECT_EQ(a.grants, 1);
    EXPECT_EQ(b.grants, 0);
    EXPECT_EQ(rig.pool->waiting(), 1u);
    rig.pool->release(a.lastCore);
    rig.machine.events().run();
    EXPECT_EQ(b.grants, 1);
}

TEST(CorePool, SubmitWhileQueuedIsNoop)
{
    PoolRig rig(1);
    FakeClient a("a"), b("b");
    rig.pool->submit(&a);
    rig.pool->submit(&b);
    rig.pool->submit(&b);
    rig.pool->submit(&b);
    EXPECT_EQ(rig.pool->waiting(), 1u);
}

TEST(CorePool, SwitchCostDelaysGrant)
{
    CorePool::Config cfg;
    cfg.switchCost = 29000; // 29k cycles @2.9GHz = 10 us
    PoolRig rig(1, cfg);
    FakeClient a("a");
    rig.pool->submit(&a);
    rig.machine.events().run();
    EXPECT_EQ(a.grants, 1);
    EXPECT_GE(rig.machine.now(), 10 * sim::kTicksPerUs);
}

TEST(CorePool, PreemptDueOnlyAfterSliceWithWaiters)
{
    CorePool::Config cfg;
    cfg.quantum = 10 * sim::kTicksPerMs;
    PoolRig rig(1, cfg);
    FakeClient a("a"), b("b");
    rig.pool->submit(&a);
    rig.machine.events().run();
    EXPECT_FALSE(rig.pool->preemptDue(a.lastCore)); // no waiters
    rig.pool->submit(&b);
    EXPECT_FALSE(rig.pool->preemptDue(a.lastCore)); // slice not over
    rig.machine.events().runUntil(11 * sim::kTicksPerMs);
    EXPECT_TRUE(rig.pool->preemptDue(a.lastCore));
}

TEST(CorePool, YieldCoreRotatesRoundRobin)
{
    PoolRig rig(1);
    FakeClient a("a"), b("b");
    rig.pool->submit(&a);
    rig.pool->submit(&b);
    rig.machine.events().run();
    ASSERT_EQ(a.grants, 1);
    rig.pool->yieldCore(a.lastCore);
    rig.machine.events().run();
    EXPECT_EQ(b.grants, 1);
    rig.pool->yieldCore(b.lastCore);
    rig.machine.events().run();
    EXPECT_EQ(a.grants, 2); // back to a
}

TEST(CorePool, RemoveQueuedClient)
{
    PoolRig rig(1);
    FakeClient a("a"), b("b");
    rig.pool->submit(&a);
    rig.pool->submit(&b);
    rig.pool->remove(&b);
    EXPECT_EQ(rig.pool->waiting(), 0u);
    rig.machine.events().run();
    EXPECT_EQ(b.grants, 0);
}

TEST(CorePool, RemoveRunningClientFreesCore)
{
    PoolRig rig(1);
    FakeClient a("a"), b("b");
    rig.pool->submit(&a);
    rig.machine.events().run();
    rig.pool->submit(&b);
    rig.pool->remove(&a);
    rig.machine.events().run();
    EXPECT_EQ(b.grants, 1);
}

TEST(CorePool, RemoveWhileSwitchingDoesNotGrant)
{
    CorePool::Config cfg;
    cfg.switchCost = 29000;
    PoolRig rig(1, cfg);
    FakeClient a("a");
    rig.pool->submit(&a);
    // Remove while the grant-switch event is still in flight.
    rig.pool->remove(&a);
    rig.machine.events().run();
    EXPECT_EQ(a.grants, 0);
}

TEST(CorePool, GrantCountsAccumulate)
{
    PoolRig rig(1);
    FakeClient a("a");
    for (int i = 0; i < 5; ++i) {
        rig.pool->submit(&a);
        rig.machine.events().run();
        rig.pool->release(a.lastCore);
    }
    EXPECT_EQ(rig.pool->grants(), 5u);
    EXPECT_EQ(a.grants, 5);
}

TEST(CorePool, CachePressureIncreasesDecisionCostAtScale)
{
    // Run a full grant/release chain over N clients and compare the
    // per-grant time at small vs large populations: beyond the free
    // threshold every switch pays the working-set re-warming cost.
    auto chain_time = [](int n) {
        CorePool::Config cfg;
        cfg.cachePressureLog2 = 10000;
        cfg.cachePressureFreeLog2 = 2;
        PoolRig rig(1, cfg);
        std::vector<std::unique_ptr<FakeClient>> clients;
        for (int i = 0; i < n; ++i) {
            clients.push_back(
                std::make_unique<FakeClient>("c" + std::to_string(i)));
            FakeClient *raw = clients.back().get();
            raw->onGranted = [&rig](int core) {
                rig.pool->release(core);
            };
            rig.pool->submit(raw);
        }
        rig.machine.events().run();
        return static_cast<double>(rig.machine.now()) / n;
    };
    double small = chain_time(4);   // below the free threshold
    double large = chain_time(128); // far beyond it
    EXPECT_GT(large, small + 1.0);
}

} // namespace
} // namespace xc::hw
