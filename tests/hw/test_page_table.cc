#include <gtest/gtest.h>

#include "hw/page_table.h"

namespace xc::hw {
namespace {

TEST(PageTable, MapAndTranslate)
{
    PageTable pt;
    pt.map(0x400000, 77, PtePresent | PteUser);
    auto pa = pt.translate(0x400123);
    ASSERT_TRUE(pa);
    EXPECT_EQ(*pa, (77ull << kPageShift) | 0x123);
}

TEST(PageTable, TranslateMissingReturnsNullopt)
{
    PageTable pt;
    EXPECT_FALSE(pt.translate(0x400000).has_value());
}

TEST(PageTable, NonPresentDoesNotTranslate)
{
    PageTable pt;
    pt.map(0x400000, 77, PteUser); // present bit clear
    EXPECT_FALSE(pt.translate(0x400000).has_value());
}

TEST(PageTable, UnmapRemoves)
{
    PageTable pt;
    pt.map(0x400000, 1, PtePresent);
    pt.unmap(0x400000);
    EXPECT_FALSE(pt.translate(0x400000).has_value());
    EXPECT_EQ(pt.mappedPages(), 0u);
}

TEST(PageTable, KernelHalfPredicate)
{
    EXPECT_FALSE(isKernelHalf(0x00007fffffffffffull));
    EXPECT_TRUE(isKernelHalf(kKernelBase));
    EXPECT_TRUE(isKernelHalf(0xffffffffff600000ull)); // vsyscall page
    // The MSB test that X-Containers use for mode detection.
    EXPECT_FALSE(isKernelHalf(0x7ffd12345678ull)); // a user stack
}

TEST(PageTable, GlobalPageCounting)
{
    PageTable pt;
    pt.map(kKernelBase, 1, PtePresent | PteGlobal);
    pt.map(kKernelBase + kPageSize, 2, PtePresent | PteGlobal);
    pt.map(0x400000, 3, PtePresent | PteUser);
    EXPECT_EQ(pt.globalPages(), 2u);
    // Remapping a global page without the bit decrements.
    pt.map(kKernelBase, 1, PtePresent);
    EXPECT_EQ(pt.globalPages(), 1u);
    pt.unmap(kKernelBase + kPageSize);
    EXPECT_EQ(pt.globalPages(), 0u);
}

TEST(PageTable, CopyUserFromCopiesOnlyUserHalf)
{
    PageTable parent, child;
    parent.map(0x400000, 1, PtePresent | PteUser | PteWritable);
    parent.map(0x401000, 2, PtePresent | PteUser);
    parent.map(kKernelBase, 3, PtePresent | PteGlobal);

    std::uint64_t copied = child.copyUserFrom(parent, /*cow=*/false);
    EXPECT_EQ(copied, 2u);
    EXPECT_TRUE(child.translate(0x400000).has_value());
    EXPECT_FALSE(child.translate(kKernelBase).has_value());
}

TEST(PageTable, CowMarksBothSidesReadOnly)
{
    PageTable parent, child;
    parent.map(0x400000, 1, PtePresent | PteUser | PteWritable);
    child.copyUserFrom(parent, /*cow=*/true);

    const Pte *ppte = parent.lookup(0x400000);
    const Pte *cpte = child.lookup(0x400000);
    ASSERT_TRUE(ppte && cpte);
    EXPECT_FALSE(ppte->writable());
    EXPECT_TRUE(ppte->cow());
    EXPECT_FALSE(cpte->writable());
    EXPECT_TRUE(cpte->cow());
    EXPECT_EQ(cpte->pfn, ppte->pfn); // shares the frame until write
}

TEST(PageTable, CowLeavesReadOnlyPagesAlone)
{
    PageTable parent, child;
    parent.map(0x400000, 1, PtePresent | PteUser); // already RO (text)
    child.copyUserFrom(parent, /*cow=*/true);
    EXPECT_FALSE(parent.lookup(0x400000)->cow());
}

TEST(PageTable, ClearUserKeepsKernel)
{
    PageTable pt;
    pt.map(0x400000, 1, PtePresent | PteUser);
    pt.map(kKernelBase, 2, PtePresent | PteGlobal);
    pt.clearUser();
    EXPECT_EQ(pt.mappedPages(), 1u);
    EXPECT_TRUE(pt.lookup(kKernelBase));
    EXPECT_EQ(pt.globalPages(), 1u);
}

TEST(PageTable, DirtyBitViaMutableLookup)
{
    PageTable pt;
    pt.map(0x400000, 1, PtePresent | PteUser); // read-only code page
    Pte *pte = pt.lookupMutable(0x400000);
    ASSERT_TRUE(pte);
    // ABOM's patch path: write through CR0.WP, PTE picks up dirty.
    pte->flags |= PteDirty;
    EXPECT_TRUE(pt.lookup(0x400000)->dirty());
}

TEST(PageTable, ForEachVisitsAll)
{
    PageTable pt;
    pt.map(0x400000, 1, PtePresent);
    pt.map(0x401000, 2, PtePresent);
    int n = 0;
    pt.forEach([&](Vpn, const Pte &) { ++n; });
    EXPECT_EQ(n, 2);
}

TEST(PageTable, FourLevelConstant)
{
    EXPECT_EQ(PageTable::kLevels, 4);
}

} // namespace
} // namespace xc::hw
