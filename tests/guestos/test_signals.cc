#include <gtest/gtest.h>

#include "rig.h"

namespace xc::test {
namespace {

using guestos::Fd;
using guestos::Pid;
using guestos::Sys;
using guestos::Thread;

constexpr int kSigTerm = 15;
constexpr int kSigUsr1 = 10;

TEST(Signals, SigTermInterruptsBlockedRead)
{
    Rig rig(2);
    std::int64_t read_result = -999;
    Pid victim_pid = 0;

    rig.spawn("victim", [&](Thread &t) -> sim::Task<void> {
        victim_pid = t.process().pid();
        Sys sys(t);
        auto [r, w] = co_await sys.pipe();
        (void)w;
        // Blocks forever: nobody writes.
        read_result = co_await sys.read(r, 128);
    });
    rig.spawn("killer", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        co_await t.sleepFor(2 * sim::kTicksPerMs);
        co_await sys.kill(victim_pid, kSigTerm);
    });
    rig.run();
    EXPECT_EQ(read_result, -guestos::ERR_INTR);
}

TEST(Signals, HandledSignalRunsHandlerAndResumesViaSigreturn)
{
    Rig rig(2);
    std::uint64_t syscalls_after = 0;
    Pid target_pid = 0;
    bool target_done = false;

    rig.spawn("target", [&](Thread &t) -> sim::Task<void> {
        target_pid = t.process().pid();
        Sys sys(t);
        co_await sys.sigaction(kSigUsr1, /*handler_cycles=*/50000);
        // Work loop: each getpid is a delivery opportunity.
        for (int i = 0; i < 200; ++i) {
            co_await sys.getpid();
            co_await t.compute(20000); // ~7 us per iteration
        }
        target_done = true;
    });
    rig.spawn("sender", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        co_await t.sleepFor(50 * sim::kTicksPerUs);
        for (int i = 0; i < 5; ++i) {
            co_await sys.kill(target_pid, kSigUsr1);
            co_await t.sleepFor(30 * sim::kTicksPerUs);
        }
        syscalls_after = t.kernel().stats().syscalls;
    });
    rig.run();
    EXPECT_TRUE(target_done);
    // Deliveries executed rt_sigreturn through the gateway: more
    // syscalls than the visible calls alone.
    EXPECT_GE(rig.kernel->stats().syscalls, 200u + 1u + 5u + 5u);
}

TEST(Signals, SigreturnWrapperIsTheNineBytePattern)
{
    // Signal delivery is how real programs hit the mov-rax wrapper
    // (__restore_rt, Fig. 2): its stub must exist and be the 9-byte
    // shape after a delivery.
    Rig rig(2);
    Pid target_pid = 0;
    std::shared_ptr<guestos::Image> image = rig.image("sigapp");
    auto *proc = rig.kernel->createProcess("sigapp", image);
    rig.kernel->spawnThread(
        proc, "t", [&](Thread &t) -> sim::Task<void> {
            target_pid = t.process().pid();
            Sys sys(t);
            co_await sys.sigaction(kSigUsr1, 1000);
            for (int i = 0; i < 50; ++i) {
                co_await sys.getpid();
                co_await t.compute(20000);
            }
        });
    rig.spawn("sender", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        co_await t.sleepFor(60 * sim::kTicksPerUs);
        co_await sys.kill(target_pid, kSigUsr1);
    });
    rig.run();
    const isa::SyscallStub *stub =
        image->stubs->find(guestos::NR_rt_sigreturn);
    ASSERT_NE(stub, nullptr);
    EXPECT_EQ(stub->kind, isa::WrapperKind::GlibcMovRax);
}

TEST(Signals, UnhandledUserSignalIsIgnored)
{
    Rig rig(2);
    bool finished = false;
    Pid target_pid = 0;
    rig.spawn("target", [&](Thread &t) -> sim::Task<void> {
        target_pid = t.process().pid();
        Sys sys(t);
        for (int i = 0; i < 20; ++i) {
            co_await sys.getpid();
            co_await t.compute(1000);
        }
        finished = true;
    });
    rig.spawn("sender", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        co_await sys.kill(target_pid, kSigUsr1); // no handler: ignore
    });
    rig.run();
    EXPECT_TRUE(finished);
    EXPECT_FALSE(rig.kernel->findProcess(target_pid) == nullptr);
}

TEST(Signals, KillUnknownPidFails)
{
    Rig rig;
    std::int64_t r = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        r = co_await sys.kill(4242, kSigTerm);
    });
    rig.run();
    EXPECT_EQ(r, -guestos::ERR_NOENT);
}

TEST(Signals, GracefulShutdownPattern)
{
    // The master/worker pattern: SIGTERM to a worker makes its
    // blocking accept return, and the worker unwinds cleanly.
    Rig rig(2);
    Pid worker_pid = 0;
    bool worker_unwound = false;

    rig.spawn("worker", [&](Thread &t) -> sim::Task<void> {
        worker_pid = t.process().pid();
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 8080);
        co_await sys.listen(s);
        for (;;) {
            std::int64_t c = co_await sys.accept(s);
            if (c == -guestos::ERR_INTR && t.process().killed()) {
                // Graceful exit path.
                co_await sys.close(s);
                worker_unwound = true;
                co_return;
            }
            if (c >= 0)
                co_await sys.close(static_cast<Fd>(c));
        }
    });
    rig.spawn("master", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        co_await t.sleepFor(3 * sim::kTicksPerMs);
        co_await sys.kill(worker_pid, kSigTerm);
    });
    rig.run();
    EXPECT_TRUE(worker_unwound);
}

} // namespace
} // namespace xc::test
