#include <gtest/gtest.h>

#include "rig.h"

#include "guestos/vfs.h"

namespace xc::test {
namespace {

using guestos::Fd;
using guestos::Sys;
using guestos::Thread;

TEST(Syscalls, GetpidReturnsProcessId)
{
    Rig rig;
    std::int64_t pid = -1, expect = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        expect = t.process().pid();
        Sys sys(t);
        pid = co_await sys.getpid();
    });
    rig.run();
    EXPECT_EQ(pid, expect);
    EXPECT_GT(pid, 0);
}

TEST(Syscalls, UnixBenchMixAllSucceed)
{
    Rig rig;
    bool ok = true;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        std::int64_t fd = co_await sys.dup(-1); // bad fd
        ok &= (fd == -guestos::ERR_BADF);
        ok &= (co_await sys.getpid()) > 0;
        ok &= (co_await sys.getuid()) == 0;
        std::int64_t old_mask = co_await sys.umask(077);
        ok &= old_mask == 022;
        ok &= (co_await sys.umask(022)) == 077;
    });
    rig.run();
    EXPECT_TRUE(ok);
}

TEST(Syscalls, SyscallCountsAccumulate)
{
    Rig rig;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        for (int i = 0; i < 10; ++i)
            co_await sys.getpid();
    });
    rig.run();
    EXPECT_EQ(rig.kernel->stats().syscalls, 10u);
    // Native platform: every one of them trapped.
    EXPECT_EQ(rig.port.nativeEnv().traps(), 10u);
}

TEST(Syscalls, KptiMakesSyscallsSlower)
{
    auto time_loop = [](bool kpti) {
        Rig rig(1, kpti);
        rig.spawn("t", [](Thread &t) -> sim::Task<void> {
            Sys sys(t);
            for (int i = 0; i < 1000; ++i)
                co_await sys.getpid();
        });
        rig.run();
        return rig.now();
    };
    sim::Tick unpatched = time_loop(false);
    sim::Tick patched = time_loop(true);
    EXPECT_GT(patched, unpatched + unpatched / 2);
}

TEST(Syscalls, FileRoundTrip)
{
    Rig rig;
    std::int64_t got = -1, size = -1;
    rig.kernel->vfs().createFile("/data/page.html", 4096);
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        std::int64_t fd = co_await sys.open("/data/page.html",
                                            guestos::ORdOnly);
        EXPECT_GE(fd, 0);
        got = co_await sys.read(static_cast<Fd>(fd), 65536);
        size = co_await sys.fstat(static_cast<Fd>(fd));
        co_await sys.close(static_cast<Fd>(fd));
    });
    rig.run();
    EXPECT_EQ(got, 4096);
    EXPECT_EQ(size, 4096);
}

TEST(Syscalls, OpenMissingFileFails)
{
    Rig rig;
    std::int64_t fd = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        fd = co_await sys.open("/no/such", guestos::ORdOnly);
    });
    rig.run();
    EXPECT_EQ(fd, -guestos::ERR_NOENT);
}

TEST(Syscalls, OCreatCreatesFile)
{
    Rig rig;
    std::int64_t wrote = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        std::int64_t fd = co_await sys.open(
            "/tmp/new", guestos::OWrOnly | guestos::OCreat);
        EXPECT_GE(fd, 0);
        wrote = co_await sys.write(static_cast<Fd>(fd), 1024);
        co_await sys.close(static_cast<Fd>(fd));
    });
    rig.run();
    EXPECT_EQ(wrote, 1024);
    auto inode = rig.kernel->vfs().lookup("/tmp/new");
    EXPECT_TRUE(inode);
    EXPECT_EQ(inode->size, 1024u);
}

TEST(Syscalls, FileCopyLoop)
{
    // UnixBench File Copy: read 1KB + write 1KB repeatedly.
    Rig rig;
    rig.kernel->vfs().createFile("/src", 1 << 20);
    std::int64_t copied = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd in = static_cast<Fd>(
            co_await sys.open("/src", guestos::ORdOnly));
        Fd out = static_cast<Fd>(co_await sys.open(
            "/dst", guestos::OWrOnly | guestos::OCreat));
        for (;;) {
            std::int64_t n = co_await sys.read(in, 1024);
            if (n <= 0)
                break;
            co_await sys.write(out, n);
            copied += n;
        }
        co_await sys.close(in);
        co_await sys.close(out);
    });
    rig.run();
    EXPECT_EQ(copied, 1 << 20);
    EXPECT_EQ(rig.kernel->vfs().lookup("/dst")->size, 1u << 20);
}

TEST(Syscalls, PipePingPong)
{
    // UnixBench Context Switching: two threads ping-pong via pipes.
    Rig rig(2);
    int rounds = 0;
    rig.spawn("main", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        auto [r1, w1] = co_await sys.pipe();
        auto [r2, w2] = co_await sys.pipe();
        EXPECT_GE(r1, 0);
        EXPECT_GE(r2, 0);

        // Partner thread in the same process.
        t.kernel().spawnThread(
            &t.process(), "pong",
            [r1, w2](Thread &pt) -> sim::Task<void> {
                Sys psys(pt);
                for (int i = 0; i < 50; ++i) {
                    std::int64_t n = co_await psys.read(r1, 4);
                    if (n <= 0)
                        break;
                    co_await psys.write(w2, 4);
                }
            });

        for (int i = 0; i < 50; ++i) {
            co_await sys.write(w1, 4);
            std::int64_t n = co_await sys.read(r2, 4);
            if (n <= 0)
                break;
            ++rounds;
        }
    });
    rig.run();
    EXPECT_EQ(rounds, 50);
}

TEST(Syscalls, PipeEofOnWriterClose)
{
    Rig rig;
    std::int64_t eof = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        auto [r, w] = co_await sys.pipe();
        co_await sys.write(w, 100);
        co_await sys.close(w);
        std::int64_t n1 = co_await sys.read(r, 4096);
        EXPECT_EQ(n1, 100);
        eof = co_await sys.read(r, 4096);
    });
    rig.run();
    EXPECT_EQ(eof, 0);
}

TEST(Syscalls, PipeBlocksWhenFullUntilDrained)
{
    Rig rig(2);
    bool writer_done = false;
    rig.spawn("main", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        auto [r, w] = co_await sys.pipe();
        t.kernel().spawnThread(
            &t.process(), "writer",
            [w, &writer_done](Thread &wt) -> sim::Task<void> {
                Sys wsys(wt);
                // 3 x 64KB > pipe capacity: must block until reads.
                for (int i = 0; i < 3; ++i)
                    co_await wsys.write(w, 65536);
                writer_done = true;
            });
        co_await t.sleepFor(sim::kTicksPerMs);
        EXPECT_FALSE(writer_done);
        std::int64_t total = 0;
        while (total < 3 * 65536)
            total += co_await sys.read(r, 65536);
    });
    rig.run();
    EXPECT_TRUE(writer_done);
}

TEST(Syscalls, UnknownSyscallReturnsEnosys)
{
    Rig rig;
    std::int64_t r = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        r = co_await t.kernel().syscall(t, 199, guestos::SysArgs{});
    });
    rig.run();
    EXPECT_EQ(r, -guestos::ERR_NOSYS);
}

TEST(Syscalls, KernelRenderStatsReportsActivity)
{
    Rig rig;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        for (int i = 0; i < 7; ++i)
            co_await sys.getpid();
    });
    rig.run();
    std::string report = rig.kernel->renderStats();
    EXPECT_NE(report.find("linux.syscalls 7"), std::string::npos);
    EXPECT_NE(report.find("linux.processes 1"), std::string::npos);
}

TEST(Syscalls, MachineUtilizationReportShowsBusyCpu)
{
    Rig rig(1);
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        co_await t.compute(2'900'000); // ~1 ms on cpu0
    });
    rig.run();
    std::string report = rig.machine.utilizationReport();
    EXPECT_NE(report.find("cpu0"), std::string::npos);
    EXPECT_NE(report.find("user=2900000"), std::string::npos);
}

TEST(Syscalls, PollReturnsReadyFds)
{
    Rig rig(2);
    std::vector<guestos::Fd> ready;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        auto [r1, w1] = co_await sys.pipe();
        auto [r2, w2] = co_await sys.pipe();
        co_await sys.write(w2, 16); // only pipe 2 has data
        // Poll the two read ends: write ends are writable, so poll
        // only the read side.
        std::vector<guestos::Fd> set{r1, r2};
        ready = co_await sys.poll(set, 10);
        (void)w1;
    });
    rig.run();
    ASSERT_EQ(ready.size(), 1u);
}

TEST(Syscalls, PollBlocksUntilData)
{
    Rig rig(2);
    sim::Tick woke_at = 0;
    rig.spawn("main", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        auto [r, w] = co_await sys.pipe();
        t.kernel().spawnThread(
            &t.process(), "writer",
            [w = w](Thread &wt) -> sim::Task<void> {
                Sys wsys(wt);
                co_await wt.sleepFor(3 * sim::kTicksPerMs);
                co_await wsys.write(w, 8);
            });
        std::vector<guestos::Fd> set{r};
        auto ready = co_await sys.poll(set, -1);
        woke_at = t.kernel().now();
        EXPECT_EQ(ready.size(), 1u);
    });
    rig.run();
    EXPECT_GE(woke_at, 3 * sim::kTicksPerMs);
}

TEST(Syscalls, PollTimesOutEmpty)
{
    Rig rig;
    std::size_t n = 99;
    sim::Tick when = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        auto [r, w] = co_await sys.pipe();
        (void)w;
        std::vector<guestos::Fd> set{r};
        auto ready = co_await sys.poll(set, 5);
        n = ready.size();
        when = t.kernel().now();
    });
    rig.run();
    EXPECT_EQ(n, 0u);
    EXPECT_GE(when, 5 * sim::kTicksPerMs);
}

TEST(Syscalls, MmapExtendsAddressSpace)
{
    Rig rig;
    std::uint64_t before = 0, after = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        before = t.process().pageTable().mappedPages();
        guestos::SysArgs a;
        a.arg[1] = 16 * 4096;
        std::int64_t base =
            co_await t.kernel().syscall(t, guestos::NR_mmap, a);
        EXPECT_GT(base, 0);
        after = t.process().pageTable().mappedPages();
    });
    rig.run();
    EXPECT_EQ(after, before + 16);
}

} // namespace
} // namespace xc::test
