#include <gtest/gtest.h>

#include "guestos/vfs.h"
#include "rig.h"

namespace xc::test {
namespace {

using guestos::Fd;
using guestos::OAppend;
using guestos::OCreat;
using guestos::ORdOnly;
using guestos::ORdWr;
using guestos::OTrunc;
using guestos::OWrOnly;
using guestos::Sys;
using guestos::Thread;

TEST(Vfs, OpenMissingWithoutCreatIsEnoent)
{
    Rig rig;
    std::int64_t fd = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        fd = co_await sys.open("/no/such/file", ORdOnly);
    });
    rig.run();
    EXPECT_EQ(fd, -guestos::ERR_NOENT);
}

TEST(Vfs, OCreatMakesAnEmptyFileVisibleToStat)
{
    Rig rig;
    std::int64_t fstat_size = -1, stat_size = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(
            co_await sys.open("/tmp/new", OWrOnly | OCreat));
        fstat_size = co_await sys.fstat(fd);
        stat_size = co_await sys.stat("/tmp/new");
    });
    rig.run();
    EXPECT_EQ(fstat_size, 0);
    EXPECT_EQ(stat_size, 0);
}

TEST(Vfs, WriteExtendsAndLseekRewindsForReadback)
{
    Rig rig;
    std::int64_t size = -1, back = -1, eof = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(
            co_await sys.open("/tmp/f", ORdWr | OCreat));
        co_await sys.write(fd, 1000);
        size = co_await sys.fstat(fd);
        co_await sys.lseek(fd, 0);
        back = co_await sys.read(fd, 4096);
        eof = co_await sys.read(fd, 4096);
    });
    rig.run();
    EXPECT_EQ(size, 1000);
    EXPECT_EQ(back, 1000);
    EXPECT_EQ(eof, 0);
}

TEST(Vfs, OTruncDiscardsExistingContents)
{
    Rig rig;
    rig.kernel->vfs().createFile("/var/db", 4096);
    std::int64_t size = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        co_await sys.open("/var/db", OWrOnly | OTrunc);
        size = co_await sys.stat("/var/db");
    });
    rig.run();
    EXPECT_EQ(size, 0);
}

TEST(Vfs, OAppendWritesLandAtEndOfFile)
{
    Rig rig;
    rig.kernel->vfs().createFile("/var/log", 100);
    std::int64_t size = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(
            co_await sys.open("/var/log", OWrOnly | OAppend));
        co_await sys.write(fd, 50);
        size = co_await sys.fstat(fd);
    });
    rig.run();
    EXPECT_EQ(size, 150);
}

TEST(Vfs, AccessModeIsEnforcedPerDescription)
{
    Rig rig;
    rig.kernel->vfs().createFile("/f", 64);
    std::int64_t rd_on_wr = 0, wr_on_rd = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd w = static_cast<Fd>(co_await sys.open("/f", OWrOnly));
        Fd r = static_cast<Fd>(co_await sys.open("/f", ORdOnly));
        rd_on_wr = co_await sys.read(w, 16);
        wr_on_rd = co_await sys.write(r, 16);
    });
    rig.run();
    EXPECT_EQ(rd_on_wr, -guestos::ERR_BADF);
    EXPECT_EQ(wr_on_rd, -guestos::ERR_BADF);
}

TEST(Vfs, ColdFirstReadChargesBlockIoExactlyOnce)
{
    // The page cache is per-inode: the first read of an uncached
    // file pays the block layer, every later read (even through a
    // different open description) does not.
    Rig rig;
    rig.kernel->vfs().createFile("/data/blob", 4096);
    sim::Tick cold = 0, warm = 0, other_fd = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd a = static_cast<Fd>(co_await sys.open("/data/blob", ORdOnly));
        sim::Tick t0 = t.kernel().now();
        co_await sys.read(a, 1024);
        cold = t.kernel().now() - t0;

        t0 = t.kernel().now();
        co_await sys.read(a, 1024);
        warm = t.kernel().now() - t0;

        Fd b = static_cast<Fd>(co_await sys.open("/data/blob", ORdOnly));
        t0 = t.kernel().now();
        co_await sys.read(b, 1024);
        other_fd = t.kernel().now() - t0;
    });
    rig.run();
    EXPECT_GT(cold, warm);
    EXPECT_EQ(warm, other_fd);
}

TEST(Vfs, UnlinkedFileStaysReadableThroughOpenFd)
{
    Rig rig;
    rig.kernel->vfs().createFile("/f", 100);
    std::int64_t unlink_r = -1, stat_r = 0, read_r = -1, reopen = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(co_await sys.open("/f", ORdOnly));
        unlink_r = co_await sys.unlink("/f");
        stat_r = co_await sys.stat("/f");
        read_r = co_await sys.read(fd, 4096);
        reopen = co_await sys.open("/f", ORdOnly);
    });
    rig.run();
    EXPECT_EQ(unlink_r, 0);
    EXPECT_EQ(stat_r, -guestos::ERR_NOENT);
    EXPECT_EQ(read_r, 100); // inode pinned by the open description
    EXPECT_EQ(reopen, -guestos::ERR_NOENT);
}

TEST(Vfs, UnlinkMissingPathIsEnoent)
{
    Rig rig;
    std::int64_t r = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        r = co_await sys.unlink("/nope");
    });
    rig.run();
    EXPECT_EQ(r, -guestos::ERR_NOENT);
}

TEST(Vfs, DupSharesOneFileOffset)
{
    // dup(2) duplicates the descriptor, not the description: both
    // fds move the same offset.
    Rig rig;
    rig.kernel->vfs().createFile("/f", 100);
    std::int64_t n1 = -1, n2 = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd a = static_cast<Fd>(co_await sys.open("/f", ORdOnly));
        Fd b = static_cast<Fd>(co_await sys.dup(a));
        EXPECT_NE(a, b);
        n1 = co_await sys.read(a, 60);
        n2 = co_await sys.read(b, 60);
    });
    rig.run();
    EXPECT_EQ(n1, 60);
    EXPECT_EQ(n2, 40);
}

TEST(Vfs, IndependentOpensHaveIndependentOffsets)
{
    Rig rig;
    rig.kernel->vfs().createFile("/f", 100);
    std::int64_t n1 = -1, n2 = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd a = static_cast<Fd>(co_await sys.open("/f", ORdOnly));
        Fd b = static_cast<Fd>(co_await sys.open("/f", ORdOnly));
        n1 = co_await sys.read(a, 60);
        n2 = co_await sys.read(b, 60);
    });
    rig.run();
    EXPECT_EQ(n1, 60);
    EXPECT_EQ(n2, 60);
}

TEST(Vfs, OpeningADirectoryForWritingIsEisdir)
{
    Rig rig;
    auto dir = rig.kernel->vfs().createFile("/etc", 0);
    dir->isDir = true;
    std::int64_t wr = 0, rd = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        wr = co_await sys.open("/etc", ORdWr);
        rd = co_await sys.open("/etc", ORdOnly);
    });
    rig.run();
    EXPECT_EQ(wr, -guestos::ERR_ISDIR);
    EXPECT_GE(rd, 0);
}

TEST(Vfs, ShortReadAtEndOfFile)
{
    Rig rig;
    rig.kernel->vfs().createFile("/f", 100);
    std::int64_t n1 = -1, n2 = -1, n3 = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(co_await sys.open("/f", ORdOnly));
        n1 = co_await sys.read(fd, 64);
        n2 = co_await sys.read(fd, 64);
        n3 = co_await sys.read(fd, 64);
    });
    rig.run();
    EXPECT_EQ(n1, 64);
    EXPECT_EQ(n2, 36);
    EXPECT_EQ(n3, 0);
}

TEST(Vfs, LseekBeyondEofReadsZeroAndWriteExtends)
{
    Rig rig;
    rig.kernel->vfs().createFile("/f", 10);
    std::int64_t hole_read = -1, size = -1;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(co_await sys.open("/f", ORdWr));
        co_await sys.lseek(fd, 1000);
        hole_read = co_await sys.read(fd, 64);
        co_await sys.write(fd, 24); // sparse-style extension
        size = co_await sys.fstat(fd);
    });
    rig.run();
    EXPECT_EQ(hole_read, 0);
    EXPECT_EQ(size, 1024);
}

TEST(Vfs, FileCountTracksCreateAndUnlink)
{
    Rig rig;
    auto &vfs = rig.kernel->vfs();
    std::size_t before = vfs.fileCount();
    vfs.createFile("/a", 1);
    vfs.createFile("/b", 2);
    EXPECT_EQ(vfs.fileCount(), before + 2);
    vfs.createFile("/a", 3); // same path: replace, not duplicate
    EXPECT_EQ(vfs.fileCount(), before + 2);
    EXPECT_EQ(vfs.lookup("/a")->size, 3u);
    vfs.unlink("/a");
    EXPECT_EQ(vfs.fileCount(), before + 1);
}

} // namespace
} // namespace xc::test
