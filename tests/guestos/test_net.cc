#include <gtest/gtest.h>

#include <memory>

#include "rig.h"

namespace xc::test {
namespace {

using guestos::Fd;
using guestos::SockAddr;
using guestos::Sys;
using guestos::Thread;
using guestos::WireClient;

TEST(Net, ListenBindsInFabricWhileAliveUnbindsOnExit)
{
    Rig rig;
    bool bound_while_alive = false;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        EXPECT_EQ(co_await sys.bind(s, 80), 0);
        EXPECT_EQ(co_await sys.listen(s), 0);
        SockAddr addr{t.kernel().net().ip(), 80};
        bound_while_alive = rig.fabric.listenerAt(addr) != nullptr;
    });
    rig.run();
    EXPECT_TRUE(bound_while_alive);
    // Process exit closed the fd and unbound the listener.
    SockAddr addr{rig.kernel->net().ip(), 80};
    EXPECT_EQ(rig.fabric.listenerAt(addr), nullptr);
}

TEST(Net, DoubleListenSamePortFails)
{
    Rig rig;
    std::int64_t second = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s1 = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s1, 80);
        co_await sys.listen(s1);
        Fd s2 = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s2, 80);
        second = co_await sys.listen(s2);
    });
    rig.run();
    EXPECT_EQ(second, -guestos::ERR_ADDRINUSE);
}

TEST(Net, WireClientEchoRoundTrip)
{
    Rig rig(2);
    std::int64_t served = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        Fd c = static_cast<Fd>(co_await sys.accept(s));
        EXPECT_GE(c, 0);
        std::int64_t n = co_await sys.recv(c, 65536);
        EXPECT_EQ(n, 100);
        co_await sys.send(c, 2000);
        ++served;
        co_await sys.close(c);
    });

    std::uint64_t got = 0;
    bool closed = false;
    WireClient client(rig.fabric, rig.fabric.newClientMachine());
    client.onConnected = [&](bool ok) {
        EXPECT_TRUE(ok);
        client.send(100);
    };
    client.onData = [&](std::uint64_t bytes) { got += bytes; };
    client.onPeerClosed = [&] { closed = true; };
    rig.machine.events().schedule(sim::kTicksPerMs, [&] {
        client.connectTo(SockAddr{rig.kernel->net().ip(), 80});
    });

    rig.run();
    EXPECT_EQ(served, 1);
    EXPECT_EQ(got, 2000u);
    EXPECT_TRUE(closed);
}

TEST(Net, NatRuleRedirectsToPrivateAddress)
{
    Rig rig(2);
    bool accepted = false;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        Fd c = static_cast<Fd>(co_await sys.accept(s));
        accepted = (c >= 0);
    });
    // Public host address 203.0.113.1:8080 -> container :80.
    SockAddr pub{0xcb007101, 8080};
    rig.fabric.addNatRule(pub, SockAddr{rig.kernel->net().ip(), 80});

    WireClient client(rig.fabric, rig.fabric.newClientMachine());
    client.onConnected = [&](bool ok) { EXPECT_TRUE(ok); };
    rig.machine.events().schedule(sim::kTicksPerMs,
                                  [&] { client.connectTo(pub); });
    rig.run();
    EXPECT_TRUE(accepted);
}

TEST(Net, ConnectToClosedPortRefused)
{
    Rig rig;
    bool refused = false;
    WireClient client(rig.fabric, rig.fabric.newClientMachine());
    client.onConnected = [&](bool ok) { refused = !ok; };
    client.connectTo(SockAddr{rig.kernel->net().ip(), 9999});
    rig.run();
    EXPECT_TRUE(refused);
}

TEST(Net, GuestToGuestConnect)
{
    // Two threads in one kernel connect over the loopback-ish path
    // (PHP -> MySQL in the merged configuration).
    Rig rig(2);
    std::int64_t server_got = 0, client_got = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 3306);
        co_await sys.listen(s);
        Fd c = static_cast<Fd>(co_await sys.accept(s));
        server_got = co_await sys.recv(c, 65536);
        co_await sys.send(c, 500);
    });
    rig.spawn("cli", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        co_await t.sleepFor(sim::kTicksPerMs); // let server listen
        Fd s = static_cast<Fd>(co_await sys.socket());
        std::int64_t r = co_await sys.connect(
            s, SockAddr{t.kernel().net().ip(), 3306});
        EXPECT_EQ(r, 0);
        co_await sys.send(s, 120);
        client_got = co_await sys.recv(s, 65536);
    });
    rig.run();
    EXPECT_EQ(server_got, 120);
    EXPECT_EQ(client_got, 500);
}

TEST(Net, WindowBlocksBulkSenderUntilAcked)
{
    // iperf-style bulk transfer: sender must not complete a 1 MB
    // stream instantly; the 256 KB window forces pacing.
    Rig rig(2);
    sim::Tick send_done = 0;
    std::uint64_t received = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 5001);
        co_await sys.listen(s);
        Fd c = static_cast<Fd>(co_await sys.accept(s));
        for (;;) {
            std::int64_t n = co_await sys.recv(c, 1 << 20);
            if (n <= 0)
                break;
            received += n;
        }
    });
    rig.spawn("cli", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        co_await t.sleepFor(sim::kTicksPerMs);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.connect(s, SockAddr{t.kernel().net().ip(), 5001});
        for (int i = 0; i < 16; ++i)
            co_await sys.send(s, 64 * 1024); // 1 MB total
        send_done = t.kernel().now();
        co_await sys.close(s);
    });
    rig.run();
    EXPECT_EQ(received, 1u << 20);
    // With a 256 KB window and ~2 us one-way latency the sender must
    // have waited for at least a few ack round trips.
    EXPECT_GT(send_done, sim::kTicksPerMs + 8 * sim::kTicksPerUs);
}

TEST(Net, EpollDrivenEchoServer)
{
    // The NGINX-style structure: epoll loop, accept + per-conn
    // reads, writes.
    Rig rig(2);
    int requests_served = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd ls = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(ls, 80);
        co_await sys.listen(ls);
        Fd ep = static_cast<Fd>(co_await sys.epollCreate());
        co_await sys.epollCtlAdd(ep, ls, guestos::PollIn, 0);

        std::map<std::uint64_t, Fd> conns;
        std::uint64_t next_token = 1;
        int done = 0;
        while (done < 3) {
            auto events = co_await sys.epollWait(ep, 64, 1000);
            for (const auto &ev : events) {
                if (ev.token == 0) {
                    Fd c = static_cast<Fd>(co_await sys.accept(ls));
                    if (c < 0)
                        continue;
                    co_await sys.epollCtlAdd(ep, c, guestos::PollIn,
                                             next_token);
                    conns[next_token++] = c;
                } else {
                    Fd c = conns[ev.token];
                    std::int64_t n = co_await sys.recv(c, 65536);
                    if (n <= 0) {
                        co_await sys.epollCtlDel(ep, c);
                        co_await sys.close(c);
                        ++done;
                        continue;
                    }
                    co_await sys.send(c, 1024);
                    ++requests_served;
                }
            }
        }
    });

    std::vector<std::unique_ptr<WireClient>> clients;
    for (int i = 0; i < 3; ++i) {
        clients.push_back(std::make_unique<WireClient>(
            rig.fabric, rig.fabric.newClientMachine()));
        WireClient *client = clients.back().get();
        client->onConnected = [client](bool ok) {
            if (ok)
                client->send(200);
        };
        client->onData = [client](std::uint64_t) { client->close(); };
        rig.machine.events().schedule(
            sim::kTicksPerMs, [client, &rig] {
                client->connectTo(SockAddr{rig.kernel->net().ip(), 80});
            });
    }
    rig.run();
    EXPECT_EQ(requests_served, 3);
}

TEST(Net, LatencyTiersDiffer)
{
    Rig rig;
    auto &cfg = rig.fabric.config();
    EXPECT_LT(cfg.sameKernelLatency, cfg.sameMachineLatency);
    EXPECT_LT(cfg.sameMachineLatency, cfg.crossMachineLatency);
}

} // namespace
} // namespace xc::test
