#include <gtest/gtest.h>

#include "rig.h"

#include "guestos/vfs.h"

namespace xc::test {
namespace {

using guestos::Fd;
using guestos::Pid;
using guestos::Sys;
using guestos::Thread;

TEST(Proc, ForkCreatesChildAndWaitReaps)
{
    Rig rig;
    std::int64_t child_pid = -1, wait_code = -1;
    bool child_ran = false;
    rig.spawn("parent", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Thread::Body child_body =
            [&child_ran](Thread &ct) -> sim::Task<void> {
                Sys csys(ct);
                child_ran = true;
                co_await csys.exit(7);
            };
        child_pid = co_await sys.fork(std::move(child_body));
        EXPECT_GT(child_pid, 0);
        wait_code = co_await sys.wait(static_cast<Pid>(child_pid));
    });
    rig.run();
    EXPECT_TRUE(child_ran);
    EXPECT_EQ(wait_code, 7);
    // Child was reaped.
    EXPECT_EQ(rig.kernel->findProcess(static_cast<Pid>(child_pid)),
              nullptr);
}

TEST(Proc, ForkChildInheritsFds)
{
    Rig rig;
    std::int64_t child_read = -1;
    rig.kernel->vfs().createFile("/f", 512);
    rig.spawn("parent", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(
            co_await sys.open("/f", guestos::ORdOnly));
        Thread::Body child_body =
            [fd, &child_read](Thread &ct) -> sim::Task<void> {
                Sys csys(ct);
                child_read = co_await csys.read(fd, 4096);
                co_await csys.exit(0);
            };
        co_await sys.fork(std::move(child_body));
        co_await sys.wait(0); // bad pid is fine; just sync below
    });
    rig.run();
    EXPECT_EQ(child_read, 512);
}

TEST(Proc, ForkMarksParentPagesCow)
{
    Rig rig;
    rig.spawn("parent", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        const hw::Pte *before = t.process().pageTable().lookup(0x600000);
        EXPECT_TRUE(before && before->writable());
        Thread::Body child_body = [](Thread &ct) -> sim::Task<void> {
            Sys csys(ct);
            co_await csys.exit(0);
        };
        co_await sys.fork(std::move(child_body));
        const hw::Pte *after = t.process().pageTable().lookup(0x600000);
        EXPECT_TRUE(after);
        EXPECT_FALSE(after->writable());
        EXPECT_TRUE(after->cow());
    });
    rig.run();
}

TEST(Proc, ProcessCreationLoop)
{
    // UnixBench Process Creation: fork + exit + wait in a loop.
    Rig rig;
    int reaped = 0;
    rig.spawn("parent", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        for (int i = 0; i < 30; ++i) {
            Thread::Body child_body = [](Thread &ct) -> sim::Task<void> {
                Sys csys(ct);
                co_await csys.exit(0);
            };
            std::int64_t pid = co_await sys.fork(std::move(child_body));
            std::int64_t code =
                co_await sys.wait(static_cast<Pid>(pid));
            if (code == 0)
                ++reaped;
        }
    });
    rig.run();
    EXPECT_EQ(reaped, 30);
    EXPECT_EQ(rig.kernel->stats().forks, 30u);
    // All children reaped: only the parent process remains.
    EXPECT_EQ(rig.kernel->processCount(), 1u);
}

TEST(Proc, ExeclPattern)
{
    // UnixBench Execl: exec replaces the image.
    Rig rig;
    std::uint64_t execs = 0;
    auto big = std::make_shared<guestos::Image>();
    big->name = "bigger";
    big->textPages = 300;
    big->dataPages = 500;
    big->stubs = std::make_shared<isa::StubLibrary>();
    rig.spawn("parent", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        for (int i = 0; i < 10; ++i) {
            Thread::Body child_body =
                [&big](Thread &ct) -> sim::Task<void> {
                    Sys csys(ct);
                    co_await csys.exec(big);
                    co_await csys.exit(0);
                };
            std::int64_t pid = co_await sys.fork(std::move(child_body));
            co_await sys.wait(static_cast<Pid>(pid));
        }
        execs = t.kernel().stats().execs;
    });
    rig.run();
    EXPECT_EQ(execs, 10u);
}

TEST(Proc, ExitReleasesUserPages)
{
    Rig rig;
    Pid child = 0;
    std::uint64_t child_pages_at_exit = 1;
    rig.spawn("parent", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Thread::Body child_body = [](Thread &ct) -> sim::Task<void> {
            Sys csys(ct);
            co_await csys.exit(0);
        };
        std::int64_t pid = co_await sys.fork(std::move(child_body));
        child = static_cast<Pid>(pid);
        // Observe before reaping.
        auto *cp = t.kernel().findProcess(child);
        while (cp && !cp->exited())
            co_await t.sleepFor(sim::kTicksPerUs * 100);
        if (cp) {
            child_pages_at_exit = 0;
            cp->pageTable().forEach(
                [&](hw::Vpn vpn, const hw::Pte &) {
                    if (!hw::isKernelHalf(hw::vpnToVa(vpn)))
                        ++child_pages_at_exit;
                });
        }
        co_await sys.wait(child);
    });
    rig.run();
    EXPECT_EQ(child_pages_at_exit, 0u);
}

TEST(Proc, MultiThreadProcessExitsWhenAllThreadsDone)
{
    Rig rig(2);
    rig.spawn("main", [&](Thread &t) -> sim::Task<void> {
        t.kernel().spawnThread(&t.process(), "worker",
                               [](Thread &wt) -> sim::Task<void> {
                                   co_await wt.compute(5000);
                               });
        co_await t.compute(1000);
    });
    rig.run();
    // Both threads zombie -> process exited.
    bool any_live = false;
    for (Pid pid = 1; pid < 10; ++pid) {
        if (auto *p = rig.kernel->findProcess(pid))
            any_live |= !p->exited();
    }
    EXPECT_FALSE(any_live);
}

TEST(Proc, ExecPreservesOpenFds)
{
    // execve replaces the image but keeps the descriptor table
    // (no close-on-exec flags in the modeled subset).
    Rig rig;
    std::int64_t read_after_exec = -1;
    auto big = rig.image("replacement");
    rig.kernel->vfs().createFile("/data", 256);
    rig.spawn("p", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(
            co_await sys.open("/data", guestos::ORdOnly));
        co_await sys.exec(big);
        read_after_exec = co_await sys.read(fd, 4096);
    });
    rig.run();
    EXPECT_EQ(read_after_exec, 256);
}

TEST(Proc, UnlinkedFileStaysReadableWhileOpen)
{
    // POSIX semantics: the inode lives while a description holds it.
    Rig rig;
    std::int64_t n = -1;
    std::int64_t reopen = 0;
    rig.kernel->vfs().createFile("/tmpfile", 100);
    rig.spawn("p", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(
            co_await sys.open("/tmpfile", guestos::ORdOnly));
        co_await sys.unlink("/tmpfile");
        n = co_await sys.read(fd, 4096);
        reopen = co_await sys.open("/tmpfile", guestos::ORdOnly);
    });
    rig.run();
    EXPECT_EQ(n, 100);
    EXPECT_EQ(reopen, -guestos::ERR_NOENT);
}

TEST(Proc, WaitOnUnknownPidFails)
{
    Rig rig;
    std::int64_t r = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        r = co_await sys.wait(9999);
    });
    rig.run();
    EXPECT_EQ(r, -guestos::ERR_CHILD);
}

TEST(Proc, ForkIsMoreExpensiveThanGetpid)
{
    Rig rig;
    sim::Tick fork_time = 0, pid_time = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        sim::Tick t0 = t.kernel().now();
        co_await sys.getpid();
        pid_time = t.kernel().now() - t0;
        t0 = t.kernel().now();
        Thread::Body child_body = [](Thread &ct) -> sim::Task<void> {
            Sys csys(ct);
            co_await csys.exit(0);
        };
        std::int64_t pid = co_await sys.fork(std::move(child_body));
        fork_time = t.kernel().now() - t0;
        co_await sys.wait(static_cast<Pid>(pid));
    });
    rig.run();
    EXPECT_GT(fork_time, 10 * pid_time);
}

} // namespace
} // namespace xc::test
