#include <gtest/gtest.h>

#include "apps/images.h"
#include "apps/nginx.h"
#include "guestos/ipvs.h"
#include "load/driver.h"
#include "sim/logging.h"
#include "runtimes/x_container.h"

namespace xc::test {
namespace {

using namespace xc;

struct LbRig
{
    explicit LbRig(guestos::IpvsService::Mode mode)
    {
        runtimes::XContainerRuntime::Options o;
        o.spec = hw::MachineSpec::xeonE52690Local();
        rt = std::make_unique<runtimes::XContainerRuntime>(o);

        guestos::IpvsService::Config icfg;
        icfg.mode = mode;
        for (int i = 0; i < 3; ++i) {
            runtimes::ContainerOpts copts;
            copts.name = "web" + std::to_string(i);
            copts.image = apps::glibcImage("img");
            copts.vcpus = 1;
            copts.memBytes = 128ull << 20;
            auto *c = rt->createContainer(copts);
            apps::NginxApp::Config ncfg;
            ncfg.workers = 1;
            backends.push_back(
                std::make_unique<apps::NginxApp>(ncfg));
            backends.back()->deploy(*c);
            icfg.backends.push_back(guestos::SockAddr{c->ip(), 80});
        }
        runtimes::ContainerOpts lb_opts;
        lb_opts.name = "lb";
        lb_opts.image = apps::glibcImage("img");
        lb_opts.vcpus = 1;
        lb_opts.memBytes = 128ull << 20;
        lb = rt->createContainer(lb_opts);
        ipvs = std::make_unique<guestos::IpvsService>(icfg);
    }

    load::LoadResult
    drive(int conns, sim::Tick duration)
    {
        rt->exposePort(lb, 8080, 80);
        load::WorkloadSpec spec = load::wrkSpec(
            guestos::SockAddr{rt->hostIp(), 8080}, conns, duration);
        load::ClosedLoopDriver driver(rt->fabric(), spec);
        rt->machine().events().schedule(20 * sim::kTicksPerMs,
                                        [&] { driver.start(); });
        rt->machine().events().runUntil(20 * sim::kTicksPerMs +
                                        spec.warmup + spec.duration +
                                        60 * sim::kTicksPerMs);
        return driver.collect();
    }

    std::uint64_t
    totalServed() const
    {
        std::uint64_t total = 0;
        for (const auto &b : backends)
            total += b->requestsServed();
        return total;
    }

    std::unique_ptr<runtimes::XContainerRuntime> rt;
    std::vector<std::unique_ptr<apps::NginxApp>> backends;
    runtimes::RtContainer *lb = nullptr;
    std::unique_ptr<guestos::IpvsService> ipvs;
};

TEST(Ipvs, NatModeServesAndBalances)
{
    LbRig rig(guestos::IpvsService::Mode::Nat);
    ASSERT_TRUE(rig.ipvs->install(rig.lb->kernel()));
    auto r = rig.drive(30, 100 * sim::kTicksPerMs);
    EXPECT_GT(r.requests, 100u);
    EXPECT_GT(rig.ipvs->connections(), 0u);
    EXPECT_GT(rig.ipvs->splicedBytes(), 0u);
    // Round robin: every backend served a fair share.
    std::uint64_t total = rig.totalServed();
    for (const auto &b : rig.backends) {
        EXPECT_GT(b->requestsServed(), total / 5);
    }
}

TEST(Ipvs, DirectRoutingServesAndBalances)
{
    LbRig rig(guestos::IpvsService::Mode::DirectRouting);
    ASSERT_TRUE(rig.ipvs->install(rig.lb->kernel()));
    auto r = rig.drive(30, 100 * sim::kTicksPerMs);
    EXPECT_GT(r.requests, 100u);
    EXPECT_GT(rig.ipvs->connections(), 0u);
    // DR: no bytes spliced through the director.
    EXPECT_EQ(rig.ipvs->splicedBytes(), 0u);
    std::uint64_t total = rig.totalServed();
    for (const auto &b : rig.backends)
        EXPECT_GT(b->requestsServed(), total / 5);
}

TEST(Ipvs, DirectRoutingOutperformsNatUnderLoad)
{
    double nat_tp = 0, dr_tp = 0;
    {
        LbRig rig(guestos::IpvsService::Mode::Nat);
        ASSERT_TRUE(rig.ipvs->install(rig.lb->kernel()));
        nat_tp = rig.drive(120, 200 * sim::kTicksPerMs).throughput;
    }
    {
        LbRig rig(guestos::IpvsService::Mode::DirectRouting);
        ASSERT_TRUE(rig.ipvs->install(rig.lb->kernel()));
        dr_tp = rig.drive(120, 200 * sim::kTicksPerMs).throughput;
    }
    EXPECT_GT(dr_tp, nat_tp * 1.3);
}

TEST(Ipvs, EmptyBackendListIsAProgrammingError)
{
    sim::setThrowOnError(true);
    guestos::IpvsService::Config icfg; // no backends
    guestos::IpvsService svc(icfg);
    LbRig rig(guestos::IpvsService::Mode::Nat);
    EXPECT_THROW(svc.install(rig.lb->kernel()), sim::SimError);
    sim::setThrowOnError(false);
}

TEST(Ipvs, RoundRobinSpreadIsNearUniform)
{
    // With a sequential round-robin director and 3 equal backends,
    // no backend may end up more than ~2x ahead of another.
    LbRig rig(guestos::IpvsService::Mode::DirectRouting);
    ASSERT_TRUE(rig.ipvs->install(rig.lb->kernel()));
    rig.drive(30, 150 * sim::kTicksPerMs);
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto &b : rig.backends) {
        lo = std::min(lo, b->requestsServed());
        hi = std::max(hi, b->requestsServed());
    }
    EXPECT_GT(lo, 0u);
    EXPECT_LE(hi, 2 * lo);
}

TEST(Ipvs, InstallFailsOnTakenPort)
{
    LbRig rig(guestos::IpvsService::Mode::Nat);
    ASSERT_TRUE(rig.ipvs->install(rig.lb->kernel()));
    guestos::IpvsService::Config icfg;
    icfg.backends = {guestos::SockAddr{1, 80}};
    guestos::IpvsService second(icfg);
    EXPECT_FALSE(second.install(rig.lb->kernel()));
}

} // namespace
} // namespace xc::test
