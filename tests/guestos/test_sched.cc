#include <gtest/gtest.h>

#include <vector>

#include "rig.h"

namespace xc::test {
namespace {

using guestos::Sys;
using guestos::Thread;

TEST(Sched, ThreadRunsToCompletion)
{
    Rig rig;
    bool ran = false;
    rig.spawn("t", [&](Thread &) -> sim::Task<void> {
        ran = true;
        co_return;
    });
    rig.run();
    EXPECT_TRUE(ran);
}

TEST(Sched, ComputeAdvancesSimulatedTime)
{
    Rig rig;
    sim::Tick done_at = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        co_await t.compute(29000); // 29000 cycles @2.9GHz ~ 10 us
        done_at = t.kernel().now();
    });
    rig.run();
    // 10 us of compute plus a dispatch: inside [10us, 12us).
    EXPECT_GE(done_at, 10 * sim::kTicksPerUs);
    EXPECT_LT(done_at, 12 * sim::kTicksPerUs);
}

TEST(Sched, TwoThreadsOnTwoVcpusRunInParallel)
{
    Rig rig(/*vcpus=*/2);
    sim::Tick end_a = 0, end_b = 0;
    rig.spawn("a", [&](Thread &t) -> sim::Task<void> {
        co_await t.compute(290000); // ~100 us
        end_a = t.kernel().now();
    });
    rig.spawn("b", [&](Thread &t) -> sim::Task<void> {
        co_await t.compute(290000);
        end_b = t.kernel().now();
    });
    rig.run();
    // Parallel: both finish around 100 us, not 200.
    EXPECT_LT(end_a, 150 * sim::kTicksPerUs);
    EXPECT_LT(end_b, 150 * sim::kTicksPerUs);
}

TEST(Sched, SingleVcpuSerializesThreads)
{
    Rig rig(/*vcpus=*/1);
    sim::Tick end_a = 0, end_b = 0;
    rig.spawn("a", [&](Thread &t) -> sim::Task<void> {
        co_await t.compute(290000);
        end_a = t.kernel().now();
    });
    rig.spawn("b", [&](Thread &t) -> sim::Task<void> {
        co_await t.compute(290000);
        end_b = t.kernel().now();
    });
    rig.run();
    sim::Tick last = std::max(end_a, end_b);
    EXPECT_GE(last, 200 * sim::kTicksPerUs);
}

TEST(Sched, QuantumPreemptionInterleavesCpuHogs)
{
    Rig rig(/*vcpus=*/1);
    std::vector<char> order;
    auto hog = [&](char id) {
        return [&order, id](Thread &t) -> sim::Task<void> {
            for (int i = 0; i < 8; ++i) {
                // Each burst is 2x the 6 ms quantum -> preemption at
                // each boundary.
                co_await t.compute(35'000'000);
                order.push_back(id);
            }
        };
    };
    rig.spawn("a", hog('a'));
    rig.spawn("b", hog('b'));
    rig.run();
    EXPECT_EQ(order.size(), 16u);
    // Interleaved, not all-a-then-all-b.
    bool interleaved = false;
    for (std::size_t i = 1; i < order.size(); ++i)
        interleaved |= (order[i] != order[i - 1]);
    EXPECT_TRUE(interleaved);
}

TEST(Sched, SleepWakesAtRightTime)
{
    Rig rig;
    sim::Tick woke_at = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        co_await t.sleepFor(5 * sim::kTicksPerMs);
        woke_at = t.kernel().now();
    });
    rig.run();
    EXPECT_GE(woke_at, 5 * sim::kTicksPerMs);
    EXPECT_LT(woke_at, 5 * sim::kTicksPerMs + sim::kTicksPerMs);
}

TEST(Sched, WaitQueueBlocksUntilWoken)
{
    Rig rig;
    guestos::WaitQueue wq;
    std::vector<int> log;
    rig.spawn("sleeper", [&](Thread &t) -> sim::Task<void> {
        log.push_back(1);
        co_await t.blockOn(wq);
        log.push_back(3);
    });
    rig.spawn("waker", [&](Thread &t) -> sim::Task<void> {
        co_await t.sleepFor(sim::kTicksPerMs);
        log.push_back(2);
        wq.wakeAll();
    });
    rig.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Sched, BlockTimeoutFiresWhenNotWoken)
{
    Rig rig;
    guestos::WaitQueue wq;
    bool timed_out = false;
    sim::Tick when = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        co_await t.blockOnTimeout(wq, 2 * sim::kTicksPerMs);
        timed_out = t.timedOut();
        when = t.kernel().now();
    });
    rig.run();
    EXPECT_TRUE(timed_out);
    EXPECT_GE(when, 2 * sim::kTicksPerMs);
    EXPECT_TRUE(wq.empty()); // timer removed the waiter
}

TEST(Sched, BlockTimeoutWakeBeatsTimer)
{
    Rig rig;
    guestos::WaitQueue wq;
    bool timed_out = true;
    rig.spawn("sleeper", [&](Thread &t) -> sim::Task<void> {
        co_await t.blockOnTimeout(wq, 50 * sim::kTicksPerMs);
        timed_out = t.timedOut();
    });
    rig.spawn("waker", [&](Thread &t) -> sim::Task<void> {
        co_await t.sleepFor(sim::kTicksPerMs);
        wq.wakeAll();
    });
    rig.run();
    EXPECT_FALSE(timed_out);
}

TEST(Sched, YieldRotatesRunQueue)
{
    Rig rig(/*vcpus=*/1);
    std::vector<char> order;
    auto spinner = [&](char id) {
        return [&order, id](Thread &t) -> sim::Task<void> {
            for (int i = 0; i < 3; ++i) {
                order.push_back(id);
                co_await t.yieldNow();
            }
        };
    };
    rig.spawn("a", spinner('a'));
    rig.spawn("b", spinner('b'));
    rig.run();
    EXPECT_EQ(order.size(), 6u);
    EXPECT_EQ(order[0], 'a');
    EXPECT_EQ(order[1], 'b'); // yield handed the vCPU over
}

TEST(Sched, ManyThreadsAllComplete)
{
    Rig rig(/*vcpus=*/4);
    int done = 0;
    for (int i = 0; i < 200; ++i) {
        rig.spawn("t" + std::to_string(i),
                  [&done, i](Thread &t) -> sim::Task<void> {
                      co_await t.compute(1000 + 17 * i);
                      ++done;
                  });
    }
    rig.run();
    EXPECT_EQ(done, 200);
}

TEST(Sched, StatsCountSwitches)
{
    Rig rig(/*vcpus=*/1);
    rig.spawn("a", [](Thread &t) -> sim::Task<void> {
        co_await t.compute(1000);
    });
    rig.spawn("b", [](Thread &t) -> sim::Task<void> {
        co_await t.compute(1000);
    });
    rig.run();
    EXPECT_GE(rig.kernel->stats().threadSwitches, 2u);
    EXPECT_GE(rig.kernel->stats().wakeups, 2u);
}

TEST(Sched, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Rig rig(2);
        for (int i = 0; i < 20; ++i) {
            rig.spawn("t" + std::to_string(i),
                      [i](Thread &t) -> sim::Task<void> {
                          co_await t.compute(500 * (i + 1));
                          co_await t.yieldNow();
                          co_await t.compute(1000);
                      });
        }
        rig.run();
        return rig.now();
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace xc::test
