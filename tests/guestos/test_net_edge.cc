#include <gtest/gtest.h>

#include <memory>

#include "rig.h"

namespace xc::test {
namespace {

using guestos::Fd;
using guestos::SockAddr;
using guestos::Sys;
using guestos::Thread;
using guestos::WireClient;

TEST(NetEdge, DoubleCloseIsSafe)
{
    Rig rig;
    std::int64_t second = 0;
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.close(s);
        second = co_await sys.close(s);
    });
    rig.run();
    EXPECT_EQ(second, -guestos::ERR_BADF);
}

TEST(NetEdge, WriteAfterPeerCloseReturnsEpipe)
{
    Rig rig(2);
    std::int64_t write_result = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        Fd c = static_cast<Fd>(co_await sys.accept(s));
        // Wait until the client is definitely gone, then write.
        co_await t.sleepFor(5 * sim::kTicksPerMs);
        write_result = co_await sys.send(c, 100);
    });
    WireClient client(rig.fabric, rig.fabric.newClientMachine());
    client.onConnected = [&](bool ok) {
        if (ok)
            client.close(); // connect then immediately close
    };
    rig.machine.events().schedule(sim::kTicksPerMs, [&] {
        client.connectTo(SockAddr{rig.kernel->net().ip(), 80});
    });
    rig.run();
    EXPECT_EQ(write_result, -guestos::ERR_PIPE);
}

TEST(NetEdge, ReadDrainsBufferedDataAfterPeerClose)
{
    // Data sent before the FIN must still be readable (no loss).
    Rig rig(2);
    std::int64_t first_read = 0, second_read = -1;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        Fd c = static_cast<Fd>(co_await sys.accept(s));
        co_await t.sleepFor(5 * sim::kTicksPerMs); // data + FIN land
        first_read = co_await sys.recv(c, 65536);
        second_read = co_await sys.recv(c, 65536);
    });
    WireClient client(rig.fabric, rig.fabric.newClientMachine());
    client.onConnected = [&](bool ok) {
        if (ok) {
            client.send(777);
            client.close();
        }
    };
    rig.machine.events().schedule(sim::kTicksPerMs, [&] {
        client.connectTo(SockAddr{rig.kernel->net().ip(), 80});
    });
    rig.run();
    EXPECT_EQ(first_read, 777);
    EXPECT_EQ(second_read, 0); // then EOF
}

TEST(NetEdge, NatRuleRemovalStopsForwarding)
{
    Rig rig(2);
    int accepted = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        for (;;) {
            std::int64_t c = co_await sys.accept(s);
            if (c < 0)
                co_return;
            ++accepted;
            co_await sys.close(static_cast<Fd>(c));
        }
    });
    SockAddr pub{0xcb007102, 8080};
    rig.fabric.addNatRule(pub, SockAddr{rig.kernel->net().ip(), 80});

    bool second_refused = false;
    auto c1 = std::make_unique<WireClient>(
        rig.fabric, rig.fabric.newClientMachine());
    auto c2 = std::make_unique<WireClient>(
        rig.fabric, rig.fabric.newClientMachine());
    c1->onConnected = [&](bool ok) { EXPECT_TRUE(ok); };
    c2->onConnected = [&](bool ok) { second_refused = !ok; };

    rig.machine.events().schedule(sim::kTicksPerMs,
                                  [&] { c1->connectTo(pub); });
    rig.machine.events().schedule(10 * sim::kTicksPerMs, [&] {
        rig.fabric.removeNatRule(pub);
        c2->connectTo(pub);
    });
    rig.machine.events().runUntil(100 * sim::kTicksPerMs);
    EXPECT_EQ(accepted, 1);
    EXPECT_TRUE(second_refused);
}

TEST(NetEdge, ListenerClosedWhileSynInFlightRefuses)
{
    Rig rig(2);
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        // Close almost immediately: a SYN already in flight must be
        // refused, not crash.
        co_await t.sleepFor(sim::kTicksPerMs +
                            30 * sim::kTicksPerUs);
        co_await sys.close(s);
        co_await t.sleepFor(20 * sim::kTicksPerMs);
    });
    bool refused = false;
    WireClient client(rig.fabric, rig.fabric.newClientMachine());
    client.onConnected = [&](bool ok) { refused = !ok; };
    // SYN lands ~70us after this, right around the close.
    rig.machine.events().schedule(
        sim::kTicksPerMs + 20 * sim::kTicksPerUs, [&] {
            client.connectTo(SockAddr{rig.kernel->net().ip(), 80});
        });
    rig.run();
    EXPECT_TRUE(refused);
}

TEST(NetEdge, WireClientDoubleCloseIsSafe)
{
    Rig rig(2);
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        co_await sys.accept(s);
        co_await t.sleepFor(20 * sim::kTicksPerMs);
    });
    WireClient client(rig.fabric, rig.fabric.newClientMachine());
    client.onConnected = [&](bool ok) {
        ASSERT_TRUE(ok);
        client.close();
        client.close(); // second close: no-op, no crash
        EXPECT_FALSE(client.connected());
    };
    rig.machine.events().schedule(sim::kTicksPerMs, [&] {
        client.connectTo(SockAddr{rig.kernel->net().ip(), 80});
    });
    rig.run();
    EXPECT_FALSE(client.connected());
}

TEST(NetEdge, DataInFlightAtCloseIsDroppedNotDelivered)
{
    // Server sends right as the client closes: the response crosses
    // the FIN on the wire and must be discarded at the dead socket,
    // never surfaced through stale callbacks.
    Rig rig(2);
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        Fd c = static_cast<Fd>(co_await sys.accept(s));
        // One one-way latency after accept ≈ the instant the client
        // learns it is connected; its close lands a latency later.
        co_await t.sleepFor(70 * sim::kTicksPerUs);
        co_await sys.send(c, 100);
        co_await t.sleepFor(20 * sim::kTicksPerMs);
    });
    bool got_data = false;
    WireClient client(rig.fabric, rig.fabric.newClientMachine());
    client.onData = [&](std::uint64_t) { got_data = true; };
    client.onConnected = [&](bool ok) {
        ASSERT_TRUE(ok);
        // Close 30us in: before the server's data can arrive, after
        // the server has committed to sending it.
        rig.machine.events().scheduleAfter(30 * sim::kTicksPerUs,
                                           [&] { client.close(); });
    };
    rig.machine.events().schedule(sim::kTicksPerMs, [&] {
        client.connectTo(SockAddr{rig.kernel->net().ip(), 80});
    });
    rig.run();
    EXPECT_FALSE(got_data);
}

TEST(NetEdge, NatRemovalMidFlightKeepsEstablishedConnection)
{
    // DNAT resolution happens at connect time; deleting the rule
    // must not sever connections already established through it.
    Rig rig(2);
    int served = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        Fd c = static_cast<Fd>(co_await sys.accept(s));
        for (;;) {
            std::int64_t n = co_await sys.recv(c, 4096);
            if (n <= 0)
                co_return;
            co_await sys.send(c, 64);
            ++served;
        }
    });
    SockAddr pub{0xcb007103, 8080};
    rig.fabric.addNatRule(pub, SockAddr{rig.kernel->net().ip(), 80});

    std::uint64_t received = 0;
    WireClient client(rig.fabric, rig.fabric.newClientMachine());
    client.onData = [&](std::uint64_t bytes) {
        received += bytes;
        if (received >= 128)
            client.close();
    };
    client.onConnected = [&](bool ok) {
        ASSERT_TRUE(ok);
        client.send(32);
        // Rule goes away while the request is on the wire; the reply
        // and a second round-trip must still flow.
        rig.fabric.removeNatRule(pub);
        rig.machine.events().scheduleAfter(5 * sim::kTicksPerMs,
                                           [&] { client.send(32); });
    };
    rig.machine.events().schedule(sim::kTicksPerMs,
                                  [&] { client.connectTo(pub); });
    rig.machine.events().runUntil(200 * sim::kTicksPerMs);
    EXPECT_EQ(served, 2);
    EXPECT_EQ(received, 128u);
}

TEST(NetEdge, CrashStackResetsPeersAndRefusesNewConnects)
{
    Rig rig(2);
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        Fd c = static_cast<Fd>(co_await sys.accept(s));
        co_await sys.recv(c, 4096); // parked when the crash hits
    });
    bool peer_closed = false;
    bool late_refused = false;
    WireClient established(rig.fabric, rig.fabric.newClientMachine());
    established.onPeerClosed = [&] { peer_closed = true; };
    established.onConnected = [&](bool ok) { ASSERT_TRUE(ok); };
    WireClient late(rig.fabric, rig.fabric.newClientMachine());
    late.onConnected = [&](bool ok) { late_refused = !ok; };

    SockAddr addr{rig.kernel->net().ip(), 80};
    rig.machine.events().schedule(sim::kTicksPerMs,
                                  [&] { established.connectTo(addr); });
    rig.machine.events().schedule(10 * sim::kTicksPerMs, [&] {
        rig.fabric.crashStack(&rig.kernel->net());
    });
    rig.machine.events().schedule(20 * sim::kTicksPerMs,
                                  [&] { late.connectTo(addr); });
    rig.machine.events().runUntil(100 * sim::kTicksPerMs);
    EXPECT_TRUE(peer_closed);
    EXPECT_FALSE(established.connected());
    EXPECT_TRUE(late_refused);
}

TEST(NetEdge, HeldStackRefusesUntilDeadlineThenAccepts)
{
    Rig rig(2);
    int accepted = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd s = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(s, 80);
        co_await sys.listen(s);
        for (;;) {
            std::int64_t c = co_await sys.accept(s);
            if (c < 0)
                co_return;
            ++accepted;
            co_await sys.close(static_cast<Fd>(c));
        }
    });
    rig.fabric.holdStack(&rig.kernel->net(), 15 * sim::kTicksPerMs);

    bool early_refused = false, late_ok = false;
    WireClient early(rig.fabric, rig.fabric.newClientMachine());
    early.onConnected = [&](bool ok) { early_refused = !ok; };
    WireClient late(rig.fabric, rig.fabric.newClientMachine());
    late.onConnected = [&](bool ok) { late_ok = ok; };

    SockAddr addr{rig.kernel->net().ip(), 80};
    rig.machine.events().schedule(sim::kTicksPerMs,
                                  [&] { early.connectTo(addr); });
    rig.machine.events().schedule(20 * sim::kTicksPerMs,
                                  [&] { late.connectTo(addr); });
    rig.machine.events().runUntil(100 * sim::kTicksPerMs);
    EXPECT_TRUE(early_refused);
    EXPECT_TRUE(late_ok);
    EXPECT_EQ(accepted, 1);
}

TEST(NetEdge, ManyConnectionsOneServerThread)
{
    Rig rig(2);
    int served = 0;
    rig.spawn("srv", [&](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd ls = static_cast<Fd>(co_await sys.socket());
        co_await sys.bind(ls, 80);
        co_await sys.listen(ls);
        Fd ep = static_cast<Fd>(co_await sys.epollCreate());
        co_await sys.epollCtlAdd(ep, ls, guestos::PollIn, 0);
        std::map<std::uint64_t, Fd> conns;
        std::uint64_t tok = 1;
        while (served < 64) {
            auto events = co_await sys.epollWait(ep, 64, 500);
            if (events.empty())
                co_return;
            for (const auto &ev : events) {
                if (ev.token == 0) {
                    std::int64_t c = co_await sys.acceptNb(ls);
                    if (c < 0)
                        continue;
                    co_await sys.epollCtlAdd(
                        ep, static_cast<Fd>(c), guestos::PollIn,
                        tok);
                    conns[tok++] = static_cast<Fd>(c);
                } else {
                    Fd c = conns[ev.token];
                    std::int64_t n = co_await sys.recv(c, 4096);
                    if (n <= 0)
                        continue;
                    co_await sys.send(c, 64);
                    ++served;
                }
            }
        }
    });
    std::vector<std::unique_ptr<WireClient>> clients;
    for (int i = 0; i < 64; ++i) {
        clients.push_back(std::make_unique<WireClient>(
            rig.fabric, rig.fabric.newClientMachine()));
        WireClient *c = clients.back().get();
        c->onConnected = [c](bool ok) {
            if (ok)
                c->send(32);
        };
        rig.machine.events().schedule(
            sim::kTicksPerMs + i * 10 * sim::kTicksPerUs, [c, &rig] {
                c->connectTo(SockAddr{rig.kernel->net().ip(), 80});
            });
    }
    rig.run();
    EXPECT_EQ(served, 64);
}

} // namespace
} // namespace xc::test
