#include <gtest/gtest.h>

#include "apps/images.h"
#include "apps/nginx.h"
#include "load/driver.h"
#include "runtimes/docker.h"
#include "runtimes/x_container.h"

namespace xc::test {
namespace {

using namespace xc;
using guestos::Fd;
using guestos::Sys;
using guestos::Thread;

TEST(Isolation, DockerContainersGetDistinctNetworkNamespaces)
{
    runtimes::DockerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *a = rt.createContainer(copts);
    auto *b = rt.createContainer(copts);
    EXPECT_NE(a->ip(), b->ip());
    // Both containers share one kernel...
    EXPECT_EQ(&a->kernel(), &b->kernel());
}

TEST(Isolation, SamePortInDifferentNamespacesCoexists)
{
    runtimes::DockerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *a = rt.createContainer(copts);
    auto *b = rt.createContainer(copts);

    std::int64_t la = -1, lb = -1;
    auto server = [](std::int64_t *out) {
        return [out](Thread &t) -> sim::Task<void> {
            Sys sys(t);
            Fd s = static_cast<Fd>(co_await sys.socket());
            co_await sys.bind(s, 80);
            *out = co_await sys.listen(s);
            co_await t.sleepFor(5 * sim::kTicksPerMs);
        };
    };
    auto *pa = a->createProcess("srv-a", copts.image);
    a->kernel().spawnThread(pa, "a", server(&la));
    auto *pb = b->createProcess("srv-b", copts.image);
    b->kernel().spawnThread(pb, "b", server(&lb));
    rt.machine().events().run();
    EXPECT_EQ(la, 0);
    EXPECT_EQ(lb, 0); // no EADDRINUSE across namespaces
}

TEST(Isolation, XContainersAreSeparateKernels)
{
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *a = rt.createContainer(copts);
    auto *b = rt.createContainer(copts);
    EXPECT_NE(&a->kernel(), &b->kernel());
    EXPECT_NE(a->ip(), b->ip());
}

TEST(Isolation, ProcessesInsideXContainerShareNoIsolation)
{
    // §2.2/§3.4: intra-container process boundaries are for resource
    // management, not security — both processes see each other via
    // kernel state (and kill() works freely).
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *c = rt.createContainer(copts);

    guestos::Pid first_pid = 0;
    bool second_saw_first = false;
    auto *p1 = c->createProcess("p1", copts.image);
    c->kernel().spawnThread(
        p1, "t1", [&](Thread &t) -> sim::Task<void> {
            first_pid = t.process().pid();
            co_await t.sleepFor(4 * sim::kTicksPerMs);
        });
    auto *p2 = c->createProcess("p2", copts.image);
    c->kernel().spawnThread(
        p2, "t2", [&](Thread &t) -> sim::Task<void> {
            co_await t.sleepFor(sim::kTicksPerMs);
            second_saw_first =
                t.kernel().findProcess(first_pid) != nullptr;
        });
    rt.machine().events().run();
    EXPECT_TRUE(second_saw_first);
}

TEST(Isolation, CrossContainerTrafficIsNotLoopback)
{
    // Two X-Containers on one machine talk via the fabric (ring
    // path, same-machine latency), not the loopback fast path.
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    copts.name = "srv";
    auto *srv = rt.createContainer(copts);
    copts.name = "cli";
    auto *cli = rt.createContainer(copts);

    sim::Tick rtt = 0;
    auto *ps = srv->createProcess("s", copts.image);
    srv->kernel().spawnThread(
        ps, "s", [&](Thread &t) -> sim::Task<void> {
            Sys sys(t);
            Fd s = static_cast<Fd>(co_await sys.socket());
            co_await sys.bind(s, 80);
            co_await sys.listen(s);
            Fd c = static_cast<Fd>(co_await sys.accept(s));
            if (c >= 0) {
                co_await sys.recv(c, 4096);
                co_await sys.send(c, 64);
            }
        });
    guestos::IpAddr srv_ip = srv->ip();
    auto *pc = cli->createProcess("c", copts.image);
    cli->kernel().spawnThread(
        pc, "c", [&, srv_ip](Thread &t) -> sim::Task<void> {
            Sys sys(t);
            co_await t.sleepFor(sim::kTicksPerMs);
            Fd s = static_cast<Fd>(co_await sys.socket());
            std::int64_t r = co_await sys.connect(
                s, guestos::SockAddr{srv_ip, 80});
            EXPECT_EQ(r, 0);
            sim::Tick t0 = t.kernel().now();
            co_await sys.send(s, 64);
            co_await sys.recv(s, 4096);
            rtt = t.kernel().now() - t0;
        });
    rt.machine().events().run();
    // Same-machine (12 us each way), not same-kernel (2 us).
    EXPECT_GE(rtt, 20 * sim::kTicksPerUs);
}

} // namespace
} // namespace xc::test
