#ifndef XC_TESTS_GUESTOS_RIG_H
#define XC_TESTS_GUESTOS_RIG_H

/**
 * @file
 * Test rig: a machine with one native kernel (host-Linux style),
 * which is the simplest complete stack the guest OS library runs on.
 */

#include <memory>

#include "guestos/kernel.h"
#include "guestos/native_port.h"
#include "guestos/net.h"
#include "guestos/sys.h"
#include "hw/cpu_pool.h"
#include "hw/machine.h"
#include "isa/syscall_stub.h"

namespace xc::test {

using namespace xc;

inline hw::CorePool::Config
nativePoolConfig(int cores)
{
    hw::CorePool::Config cfg;
    cfg.cores = cores;
    cfg.quantum = 1000 * sim::kTicksPerSec; // pinned: never preempted
    cfg.switchCost = 0;
    return cfg;
}

struct Rig
{
    explicit Rig(int vcpus = 2, bool kpti = false,
                 hw::MachineSpec spec = hw::MachineSpec::ec2C4_2xlarge())
        : machine(spec, 42), fabric(machine.events()),
          pool(machine, nativePoolConfig(machine.numCpus()), "host"),
          port(machine.costs(),
               guestos::NativePort::Options{.kpti = kpti,
                                            .containerNet = false,
                                            .trapCostOverride = 0,
                                            .packetExtra = 0})
    {
        guestos::GuestKernel::Config kcfg;
        kcfg.name = "linux";
        kcfg.traits.kpti = kpti;
        kcfg.vcpus = vcpus;
        kcfg.pool = &pool;
        kcfg.platform = &port;
        kcfg.fabric = &fabric;
        kernel = std::make_unique<guestos::GuestKernel>(machine, kcfg);
    }

    /** A glibc-style image shared by test processes. */
    std::shared_ptr<guestos::Image>
    image(const std::string &name = "testapp")
    {
        auto img = std::make_shared<guestos::Image>();
        img->name = name;
        img->stubs = std::make_shared<isa::StubLibrary>();
        img->wrapperFor = [](int nr) {
            // glibc shape: rt_sigreturn uses the mov-rax form.
            if (nr == guestos::NR_rt_sigreturn)
                return isa::WrapperKind::GlibcMovRax;
            return isa::WrapperKind::GlibcMovEax;
        };
        return img;
    }

    /** Spawn a single-thread process running @p body. */
    guestos::Thread *
    spawn(const std::string &name, guestos::Thread::Body body)
    {
        auto *proc = kernel->createProcess(name, image(name));
        return kernel->spawnThread(proc, name, std::move(body));
    }

    void run(std::uint64_t max_events = 10'000'000)
    {
        machine.events().run(max_events);
    }

    void runUntil(sim::Tick t) { machine.events().runUntil(t); }

    sim::Tick now() const { return machine.now(); }

    hw::Machine machine;
    guestos::NetFabric fabric;
    hw::CorePool pool;
    guestos::NativePort port;
    std::unique_ptr<guestos::GuestKernel> kernel;
};

} // namespace xc::test

#endif // XC_TESTS_GUESTOS_RIG_H
