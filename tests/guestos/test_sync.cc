#include <gtest/gtest.h>

#include "rig.h"

#include "guestos/sync.h"

namespace xc::test {
namespace {

using guestos::GuestCond;
using guestos::GuestMutex;
using guestos::Sys;
using guestos::Thread;

TEST(Sync, MutexExcludesConcurrentCriticalSections)
{
    Rig rig(4);
    GuestMutex mu(*rig.kernel);
    int in_critical = 0;
    int max_in_critical = 0;
    int done = 0;
    for (int i = 0; i < 8; ++i) {
        rig.spawn("t" + std::to_string(i),
                  [&](Thread &t) -> sim::Task<void> {
                      for (int j = 0; j < 5; ++j) {
                          co_await mu.lock(t);
                          ++in_critical;
                          max_in_critical =
                              std::max(max_in_critical, in_critical);
                          co_await t.compute(5000);
                          --in_critical;
                          co_await mu.unlock(t);
                          co_await t.compute(2000);
                      }
                      ++done;
                  });
    }
    rig.run();
    EXPECT_EQ(done, 8);
    EXPECT_EQ(max_in_critical, 1);
    EXPECT_GT(mu.contentions(), 0u);
}

TEST(Sync, ContendedMutexGoesThroughFutexSyscall)
{
    Rig rig(2);
    GuestMutex mu(*rig.kernel);
    rig.spawn("a", [&](Thread &t) -> sim::Task<void> {
        co_await mu.lock(t);
        co_await t.compute(500000); // hold long enough to contend
        co_await mu.unlock(t);
    });
    rig.spawn("b", [&](Thread &t) -> sim::Task<void> {
        co_await t.sleepFor(10 * sim::kTicksPerUs);
        co_await mu.lock(t);
        co_await mu.unlock(t);
    });
    rig.run();
    EXPECT_GE(rig.kernel->stats().syscalls, 2u); // WAIT + WAKE at least
    EXPECT_FALSE(mu.locked());
}

TEST(Sync, UncontendedMutexAvoidsSyscalls)
{
    Rig rig;
    GuestMutex mu(*rig.kernel);
    rig.spawn("t", [&](Thread &t) -> sim::Task<void> {
        for (int i = 0; i < 10; ++i) {
            co_await mu.lock(t);
            co_await mu.unlock(t);
        }
    });
    rig.run();
    EXPECT_EQ(rig.kernel->stats().syscalls, 0u);
    EXPECT_EQ(mu.contentions(), 0u);
}

TEST(Sync, CondVarSignalsWaiter)
{
    Rig rig(2);
    GuestMutex mu(*rig.kernel);
    GuestCond cv(*rig.kernel);
    bool flag = false;
    bool observed = false;
    rig.spawn("waiter", [&](Thread &t) -> sim::Task<void> {
        co_await mu.lock(t);
        while (!flag)
            co_await cv.wait(t, mu);
        observed = true;
        co_await mu.unlock(t);
    });
    rig.spawn("signaler", [&](Thread &t) -> sim::Task<void> {
        co_await t.sleepFor(sim::kTicksPerMs);
        co_await mu.lock(t);
        flag = true;
        co_await mu.unlock(t);
        co_await cv.signal(t);
    });
    rig.run();
    EXPECT_TRUE(observed);
}

TEST(Sync, BroadcastWakesAllWaiters)
{
    Rig rig(2);
    GuestMutex mu(*rig.kernel);
    GuestCond cv(*rig.kernel);
    bool flag = false;
    int woke = 0;
    for (int i = 0; i < 4; ++i) {
        rig.spawn("w" + std::to_string(i),
                  [&](Thread &t) -> sim::Task<void> {
                      co_await mu.lock(t);
                      while (!flag)
                          co_await cv.wait(t, mu);
                      ++woke;
                      co_await mu.unlock(t);
                  });
    }
    rig.spawn("b", [&](Thread &t) -> sim::Task<void> {
        co_await t.sleepFor(2 * sim::kTicksPerMs);
        co_await mu.lock(t);
        flag = true;
        co_await mu.unlock(t);
        co_await cv.broadcast(t);
    });
    rig.run();
    EXPECT_EQ(woke, 4);
}

} // namespace
} // namespace xc::test
