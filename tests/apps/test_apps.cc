#include <gtest/gtest.h>

#include "apps/haproxy.h"
#include "apps/images.h"
#include "apps/kv.h"
#include "apps/nginx.h"
#include "apps/nginx_php.h"
#include "apps/php_mysql.h"
#include "apps/roster.h"
#include "load/driver.h"
#include "runtimes/docker.h"
#include "runtimes/x_container.h"

namespace xc::test {
namespace {

using namespace xc;

load::LoadResult
drive(runtimes::Runtime &rt, runtimes::RtContainer *c,
      guestos::Port priv, int conns,
      sim::Tick duration = 120 * sim::kTicksPerMs)
{
    rt.exposePort(c, 9000, priv);
    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 9000}, conns, duration);
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    rt.machine().events().schedule(15 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(15 * sim::kTicksPerMs + spec.warmup +
                                   spec.duration +
                                   50 * sim::kTicksPerMs);
    return driver.collect();
}

runtimes::RtContainer *
spawn(runtimes::Runtime &rt, const char *name, int vcpus)
{
    runtimes::ContainerOpts copts;
    copts.name = name;
    copts.image = apps::glibcImage(name);
    copts.vcpus = vcpus;
    copts.memBytes = 512ull << 20;
    return rt.createContainer(copts);
}

TEST(Apps, NginxMultiWorkerSharesListener)
{
    runtimes::DockerRuntime rt({});
    auto *c = spawn(rt, "web", 4);
    apps::NginxApp::Config ncfg;
    ncfg.workers = 4;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*c);
    auto r = drive(rt, c, 80, 32);
    EXPECT_GT(r.requests, 200u);
    EXPECT_GE(nginx.requestsServed(), r.requests); // incl. warmup
    // All four worker processes plus the master exist.
    EXPECT_GE(c->kernel().processCount(), 5u);
}

TEST(Apps, NginxServesConfiguredPageSize)
{
    runtimes::DockerRuntime rt({});
    auto *c = spawn(rt, "web", 1);
    apps::NginxApp::Config ncfg;
    ncfg.workers = 1;
    ncfg.pageBytes = 4096;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*c);
    rt.exposePort(c, 9000, 80);

    std::uint64_t got = 0;
    guestos::WireClient client(rt.fabric(),
                               rt.fabric().newClientMachine());
    client.onConnected = [&](bool ok) {
        if (ok)
            client.send(170);
    };
    client.onData = [&](std::uint64_t bytes) { got += bytes; };
    rt.machine().events().schedule(
        10 * sim::kTicksPerMs, [&] {
            client.connectTo(guestos::SockAddr{rt.hostIp(), 9000});
        });
    rt.machine().events().runUntil(100 * sim::kTicksPerMs);
    EXPECT_EQ(got, 4096u + 240u); // body + headers
}

TEST(Apps, MemcachedLockingContendsUnderSetLoad)
{
    runtimes::DockerRuntime rt({});
    auto *c = spawn(rt, "cache", 4);
    apps::KvApp::Config cfg = apps::KvApp::memcachedConfig();
    cfg.setEvery = 2; // SET-heavy to force contention
    apps::KvApp app(cfg);
    app.deploy(*c);
    auto r = drive(rt, c, 11211, 64);
    EXPECT_GT(r.requests, 500u);
    EXPECT_GT(app.opsServed(), 500u);
    EXPECT_GT(app.lockContentions(), 0u);
}

TEST(Apps, RedisSingleThreadCapsAtOneCore)
{
    runtimes::DockerRuntime rt({});
    auto *c = spawn(rt, "redis", 4);
    apps::KvApp app(apps::KvApp::redisConfig());
    app.deploy(*c);
    auto r = drive(rt, c, 6379, 64, 200 * sim::kTicksPerMs);
    // 28k cycles/op at 2.9 GHz on 1 thread: ~100k ops/s max, even
    // with 4 vCPUs available.
    EXPECT_GT(r.throughput, 20000.0);
    EXPECT_LT(r.throughput, 120000.0);
}

TEST(Apps, PhpTalksToMysql)
{
    runtimes::XContainerRuntime rt({});
    auto *db = spawn(rt, "db", 1);
    apps::MysqlApp mysql;
    mysql.deploy(*db);
    auto *api = spawn(rt, "api", 1);
    apps::PhpApp::Config pcfg;
    pcfg.mysql = guestos::SockAddr{db->ip(), 3306};
    apps::PhpApp php(pcfg);
    php.deploy(*api);

    auto r = drive(rt, api, 8080, 16);
    EXPECT_GT(r.requests, 50u);
    EXPECT_GT(php.requestsServed(), 50u);
    // Several queries per page.
    EXPECT_GE(mysql.queriesServed(), 3 * php.requestsServed() - 3);
}

TEST(Apps, NginxPhpRunsFourProcesses)
{
    runtimes::XContainerRuntime rt({});
    auto *c = spawn(rt, "webphp", 1);
    apps::NginxPhpApp app;
    app.deploy(*c);
    auto r = drive(rt, c, 80, 5);
    EXPECT_GT(r.requests, 20u);
    EXPECT_EQ(c->kernel().processCount(), 4u); // 2 masters + 2 workers
}

TEST(Apps, HaproxyBalancesAcrossBackends)
{
    runtimes::XContainerRuntime rt({});
    std::vector<std::unique_ptr<apps::NginxApp>> backends;
    apps::HaproxyApp::Config hcfg;
    for (int i = 0; i < 3; ++i) {
        auto *b = spawn(rt, ("web" + std::to_string(i)).c_str(), 1);
        apps::NginxApp::Config ncfg;
        ncfg.workers = 1;
        backends.push_back(std::make_unique<apps::NginxApp>(ncfg));
        backends.back()->deploy(*b);
        hcfg.backends.push_back(guestos::SockAddr{b->ip(), 80});
    }
    auto *lb = spawn(rt, "lb", 1);
    apps::HaproxyApp haproxy(hcfg);
    haproxy.deploy(*lb);

    auto r = drive(rt, lb, 80, 24);
    EXPECT_GT(r.requests, 100u);
    EXPECT_GT(haproxy.requestsProxied(), 100u);
    for (const auto &b : backends)
        EXPECT_GT(b->requestsServed(), r.requests / 6);
}

TEST(Apps, RosterProfilesAreDistinct)
{
    auto mc = apps::memcachedProfile();
    auto es = apps::elasticsearchProfile();
    auto pg = apps::postgresProfile();
    EXPECT_EQ(mc.oddSyscallEvery, 0);
    EXPECT_GT(es.oddSyscallEvery, 0);
    EXPECT_GT(pg.oddSyscallEvery, es.oddSyscallEvery);
    EXPECT_EQ(mc.threads, 4);
    // Go images use the stack-argument wrapper.
    auto etcd = apps::etcdProfile();
    EXPECT_EQ(etcd.image->wrapperKind(guestos::NR_read),
              isa::WrapperKind::GoStackArg);
}

TEST(Apps, RosterServerServesRequests)
{
    runtimes::XContainerRuntime rt({});
    auto cfg = apps::postgresProfile();
    runtimes::ContainerOpts copts;
    copts.name = cfg.name;
    copts.image = cfg.image;
    copts.vcpus = 1;
    copts.memBytes = 256ull << 20;
    auto *c = rt.createContainer(copts);
    apps::RosterServerApp app(cfg);
    app.deploy(*c);
    auto r = drive(rt, c, cfg.port, 16);
    EXPECT_GT(r.requests, 50u);
    // The odd-wrapper call keeps a small trap stream alive.
    const auto &st = rt.xkernel().abom().stats();
    EXPECT_GT(st.reductionRatio(), 0.95);
    EXPECT_LT(st.reductionRatio(), 1.0);
}

TEST(Apps, KernelCompileFinishes)
{
    runtimes::XContainerRuntime rt({});
    auto *c = spawn(rt, "kbuild", 1);
    apps::KernelCompileApp::Config kcfg;
    kcfg.compileUnits = 25;
    apps::KernelCompileApp kc(kcfg);
    kc.deploy(*c);
    rt.machine().events().runUntil(5 * sim::kTicksPerSec);
    EXPECT_TRUE(kc.finished());
    EXPECT_EQ(kc.unitsCompiled(), 25u);
    // Compile processes were reaped as make waited on them.
    EXPECT_LE(c->kernel().processCount(), 2u);
}

TEST(Apps, MysqlImageMarksIoWrappersCancellable)
{
    auto img = apps::mysqlImage();
    EXPECT_EQ(img->wrapperKind(guestos::NR_read),
              isa::WrapperKind::PthreadCancellable);
    EXPECT_EQ(img->wrapperKind(guestos::NR_sendmsg),
              isa::WrapperKind::PthreadCancellable);
    EXPECT_EQ(img->wrapperKind(guestos::NR_lseek),
              isa::WrapperKind::GlibcMovEax);
    EXPECT_EQ(img->wrapperKind(guestos::NR_rt_sigreturn),
              isa::WrapperKind::GlibcMovRax);
}

} // namespace
} // namespace xc::test
