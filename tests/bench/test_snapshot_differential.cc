/**
 * @file
 * Differential checkpoint/restore tests over the bench harness:
 *
 *  - a hooked (checkpoint-capturing) run produces exactly the same
 *    results as an uninterrupted one (the hook-event seq shift is
 *    uniform and side-effect free);
 *  - capture → replay → verify passes: a second boot of the same
 *    recipe reaches a byte-identical state at the checkpoint tick;
 *  - a tampered section makes verification throw;
 *  - the adoption path (restoreSnapshot) is a fixed point and kills
 *    pre-existing handles;
 *  - divergent fault plans diverge, identical plans are
 *    bit-identical at -j1 and -j4 (runSweep).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "checkpoint.h"
#include "common.h"

namespace xc::bench {
namespace {

using sim::snap::SnapError;
using sim::snap::Snapshot;

MacroRun
quickRun(std::uint64_t seed)
{
    MacroRun run;
    run.connections = 20;
    run.duration = 30 * sim::kTicksPerMs;
    run.seed = seed;
    run.observeMech = true;
    return run;
}

CellRecipe
quickRecipe(const MacroRun &run, sim::Tick at)
{
    CellRecipe rec;
    rec.bench = "test_differential";
    rec.app = "nginx";
    rec.cloud = "Amazon EC2";
    rec.runtime = "docker";
    rec.seed = run.seed;
    rec.duration = run.duration;
    rec.connections = run.connections;
    rec.checkpointAt = at;
    return rec;
}

std::unique_ptr<runtimes::Runtime>
makeRt(std::uint64_t seed)
{
    runtimes::RuntimeConfig cfg;
    cfg.spec = hw::MachineSpec::ec2C4_2xlarge();
    cfg.seed = seed;
    return runtimes::makeRuntime("docker", cfg);
}

/** One uninterrupted run; returns the result digest string. */
std::string
digestOf(const load::LoadResult &r)
{
    char buf[256];
    std::snprintf(buf, sizeof buf, "%llu/%llu/%.6f/%.6f/%.6f",
                  static_cast<unsigned long long>(r.requests),
                  static_cast<unsigned long long>(r.errors),
                  r.throughput, r.p50LatencyUs, r.p99LatencyUs);
    return std::string(buf) + r.mechJson();
}

TEST(SnapshotDifferential, HookedRunMatchesStraightRun)
{
    MacroRun plain = quickRun(11);
    auto rt1 = makeRt(11);
    ASSERT_NE(rt1, nullptr);
    load::LoadResult a = runMacro(*rt1, MacroApp::Nginx, plain);

    MacroRun hooked = quickRun(11);
    hooked.hookAt = 25 * sim::kTicksPerMs;
    int hookFired = 0;
    hooked.hook = [&hookFired] { ++hookFired; };
    auto rt2 = makeRt(11);
    ASSERT_NE(rt2, nullptr);
    load::LoadResult b = runMacro(*rt2, MacroApp::Nginx, hooked);

    EXPECT_EQ(hookFired, 1);
    EXPECT_EQ(digestOf(a), digestOf(b));
    EXPECT_EQ(rt1->machine().events().now(),
              rt2->machine().events().now());
}

TEST(SnapshotDifferential, CaptureReplayVerifyPasses)
{
    const sim::Tick at = 25 * sim::kTicksPerMs;

    // Run 1: capture at the hook.
    MacroRun run1 = quickRun(12);
    Snapshot snap;
    auto rt1 = makeRt(12);
    ASSERT_NE(rt1, nullptr);
    run1.hookAt = at;
    run1.hook = [&] {
        snap = captureSnapshot(*rt1, quickRecipe(run1, at));
    };
    load::LoadResult a = runMacro(*rt1, MacroApp::Nginx, run1);
    ASSERT_EQ(snap.sectionCount(), 8u);

    // Run 2: identical replay, byte-verify at the hook, continue to
    // completion — final results must match run 1 exactly.
    MacroRun run2 = quickRun(12);
    auto rt2 = makeRt(12);
    ASSERT_NE(rt2, nullptr);
    bool verified = false;
    run2.hookAt = at;
    run2.hook = [&] {
        ASSERT_NO_THROW(verifySnapshot(*rt2, snap));
        verified = true;
    };
    load::LoadResult b = runMacro(*rt2, MacroApp::Nginx, run2);
    EXPECT_TRUE(verified);
    EXPECT_EQ(digestOf(a), digestOf(b));
}

TEST(SnapshotDifferential, FileRoundtripPreservesBytes)
{
    const sim::Tick at = 25 * sim::kTicksPerMs;
    MacroRun run = quickRun(13);
    Snapshot snap;
    auto rt = makeRt(13);
    ASSERT_NE(rt, nullptr);
    run.hookAt = at;
    run.hook = [&] {
        snap = captureSnapshot(*rt, quickRecipe(run, at));
    };
    runMacro(*rt, MacroApp::Nginx, run);

    std::string path =
        testing::TempDir() + "snapshot_differential.snap";
    snap.save(path);
    Snapshot back = Snapshot::loadFile(path);
    EXPECT_EQ(back.encode(), snap.encode());
    std::remove(path.c_str());
}

TEST(SnapshotDifferential, TamperedSectionFailsVerification)
{
    const sim::Tick at = 25 * sim::kTicksPerMs;
    MacroRun run1 = quickRun(14);
    Snapshot snap;
    auto rt1 = makeRt(14);
    ASSERT_NE(rt1, nullptr);
    run1.hookAt = at;
    run1.hook = [&] {
        snap = captureSnapshot(*rt1, quickRecipe(run1, at));
    };
    runMacro(*rt1, MacroApp::Nginx, run1);

    // Flip one byte in the rng section (legal container, wrong
    // world) and replay: verification must throw.
    std::string rng = snap.require(kSecRng);
    rng[0] = static_cast<char>(rng[0] ^ 0x1);
    snap.set(kSecRng, rng);

    MacroRun run2 = quickRun(14);
    auto rt2 = makeRt(14);
    ASSERT_NE(rt2, nullptr);
    bool threw = false;
    run2.hookAt = at;
    run2.hook = [&] {
        try {
            verifySnapshot(*rt2, snap);
        } catch (const SnapError &e) {
            threw = true;
            EXPECT_NE(std::string(e.what()).find(kSecRng),
                      std::string::npos)
                << e.what();
        }
    };
    runMacro(*rt2, MacroApp::Nginx, run2);
    EXPECT_TRUE(threw);
}

TEST(SnapshotDifferential, AdoptionRestoreIsFixedPoint)
{
    const sim::Tick at = 25 * sim::kTicksPerMs;
    MacroRun run1 = quickRun(15);
    Snapshot snap;
    auto rt1 = makeRt(15);
    ASSERT_NE(rt1, nullptr);
    run1.hookAt = at;
    run1.hook = [&] {
        snap = captureSnapshot(*rt1, quickRecipe(run1, at));
    };
    runMacro(*rt1, MacroApp::Nginx, run1);

    // Replay a second cell to the checkpoint tick, then run the full
    // adoption path (loadState everywhere + byte-recheck). The
    // restored cell cannot continue (hollow queue) — the point here
    // is that adoption itself reproduces the bytes and invalidates
    // stale handles.
    MacroRun run2 = quickRun(15);
    auto rt2 = makeRt(15);
    ASSERT_NE(rt2, nullptr);
    run2.hookAt = at;
    sim::EventHandle stale;
    run2.hook = [&] {
        stale = rt2->machine().events().schedule(
            rt2->machine().events().now() + 1, [] {});
        // The extra event makes the replayed state differ from the
        // snapshot, which adoption overwrites — cancel it again so
        // the byte-recheck sees the checkpointed world.
        stale.cancel();
        sim::EventHandle preRestore =
            rt2->machine().events().schedule(
                rt2->machine().events().now() + 2, [] {});
        (void)preRestore;
        // Deliberately NOT matching the snapshot now; adoption must
        // still converge to the file's bytes...
        EXPECT_THROW(verifySnapshot(*rt2, snap), SnapError);
        ASSERT_NO_THROW(restoreSnapshot(*rt2, snap));
        // ...and the stale pre-restore handle must read dead.
        EXPECT_FALSE(preRestore.pending());
        // Stop the run immediately: the queue is hollow from here.
        throw std::runtime_error("stop");
    };
    EXPECT_THROW(runMacro(*rt2, MacroApp::Nginx, run2),
                 std::runtime_error);
}

// --- fork-divergence via the sweep executor --------------------------

std::string
sweepDigest(const Options &opt, const std::vector<double> &rates,
            std::uint64_t seed)
{
    struct Cell
    {
        double rate;
        std::uint64_t seed;
    };
    std::vector<Cell> cells;
    for (double r : rates)
        cells.push_back({r, seed});
    std::vector<std::string> outs =
        runSweep(opt, cells, [](const Cell &cell) {
            auto rt = makeRt(cell.seed);
            if (!rt)
                return std::string("unavailable");
            if (cell.rate > 0.0) {
                rt->installFaults(
                    fault::FaultPlan::uniform(cell.rate, cell.seed));
            }
            MacroRun run = quickRun(cell.seed);
            return digestOf(runMacro(*rt, MacroApp::Nginx, run));
        });
    std::string all;
    for (const std::string &s : outs)
        all += s + "\n";
    return all;
}

TEST(SnapshotDifferential, DivergentPlansDivergeIdenticalPlansMatch)
{
    Options opt;
    opt.jobs = 1;
    std::string a = sweepDigest(opt, {0.0, 0.01, 0.05}, 21);
    std::string b = sweepDigest(opt, {0.0, 0.01, 0.05}, 21);
    EXPECT_EQ(a, b); // identical plans: bit-identical

    Options opt4;
    opt4.jobs = 4;
    std::string c = sweepDigest(opt4, {0.0, 0.01, 0.05}, 21);
    EXPECT_EQ(a, c); // ... at any -j

    std::string d = sweepDigest(opt, {0.0, 0.02, 0.05}, 21);
    EXPECT_NE(a, d); // a different fault plan diverges
    std::string e = sweepDigest(opt, {0.0, 0.01, 0.05}, 22);
    EXPECT_NE(a, e); // a different seed diverges
}

} // namespace
} // namespace xc::bench
