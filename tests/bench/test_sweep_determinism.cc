/**
 * @file
 * Parallel-sweep determinism: the same fixed-seed sweep run at -j1
 * and -j4 must produce byte-identical rendered rows, golden digests
 * and observability exports (trace JSON, profile JSON, flight JSON) —
 * the whole point of sim::SweepExecutor. Plus isolation unit tests:
 * two concurrently bound SimContexts must not bleed trace events,
 * profile frames or flight records into each other.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "load/unixbench.h"
#include "sim/context.h"
#include "sim/sweep.h"

namespace xc {
namespace {

using bench::Options;

/** One mini fig4-style cell: (runtime, seed). */
struct Cell
{
    const char *runtime;
    std::uint64_t seed;
};

/** Everything a sweep run produces that must be jobs-invariant. */
struct SweepOutput
{
    std::string table;
    std::string golden;
    std::string traceJson;
    std::string profJson;
    std::string flightJson;
};

SweepOutput
runMiniSweep(int jobs)
{
    // The outer context stands in for the process state a bench main
    // would use, so repeated runs in one test binary start clean.
    sim::SimContext outer;
    sim::ContextBinding bind(outer);

    Options opt;
    opt.jobs = jobs;
    opt.seed = 42;
    opt.tracePath = "unused";   // arm per-cell capture
    opt.profilePath = "unused"; // arm per-cell profiler
    opt.flightSamples = 2;
    sim::trace::startCapture();
    sim::prof::enable();

    auto spec = hw::MachineSpec::ec2C4_2xlarge();
    const std::vector<Cell> cells = {
        {"docker", 1}, {"x-container", 1}, {"gvisor", 1},
        {"docker", 2}, {"x-container", 2}, {"gvisor", 2},
    };

    std::vector<std::uint64_t> ops = bench::runSweep(
        opt, cells, [&](const Cell &cell) -> std::uint64_t {
            Options cellOpt = opt;
            cellOpt.seed = cell.seed;
            auto rt = bench::makeCloudRuntime(cell.runtime, spec,
                                              cellOpt);
            char label[64];
            std::snprintf(label, sizeof label, "%s/seed%llu",
                          cell.runtime,
                          static_cast<unsigned long long>(cell.seed));
            opt.beginRun(label,
                         static_cast<double>(spec.periodTicks()));
            return load::runMicro(*rt, load::MicroKind::Syscall,
                                  5 * sim::kTicksPerMs, 1)
                .ops;
        });

    SweepOutput out;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        char row[128];
        std::snprintf(row, sizeof row, "%s seed=%llu ops=%llu\n",
                      cells[i].runtime,
                      static_cast<unsigned long long>(cells[i].seed),
                      static_cast<unsigned long long>(ops[i]));
        out.table += row;
        out.golden += row; // stands in for a GoldenLog digest line
    }
    out.traceJson = sim::trace::exportJson();
    out.profJson = sim::prof::exportJson();
    out.flightJson = sim::flight::exportJson();
    return out;
}

TEST(SweepDeterminism, ParallelMatchesSequentialByteForByte)
{
    SweepOutput j1 = runMiniSweep(1);
    SweepOutput j4 = runMiniSweep(4);

    EXPECT_EQ(j1.table, j4.table);
    EXPECT_EQ(j1.golden, j4.golden);
    EXPECT_EQ(j1.traceJson, j4.traceJson);
    EXPECT_EQ(j1.profJson, j4.profJson);
    EXPECT_EQ(j1.flightJson, j4.flightJson);

    // And the run did simulate something: non-zero rows, captured
    // profile cycles for every cell's tree.
    EXPECT_NE(j1.table.find("ops="), std::string::npos);
    EXPECT_NE(j1.profJson.find("docker/seed1"), std::string::npos);
    EXPECT_NE(j1.profJson.find("gvisor/seed2"), std::string::npos);
}

TEST(SweepDeterminism, RepeatedParallelRunsAreStable)
{
    SweepOutput a = runMiniSweep(4);
    SweepOutput b = runMiniSweep(4);
    EXPECT_EQ(a.table, b.table);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.profJson, b.profJson);
}

TEST(SimContextIsolation, ConcurrentContextsDontBleed)
{
    sim::SimContext a, b;
    std::atomic<int> ready{0};

    auto worker = [&ready](sim::SimContext &ctx, const char *name,
                           int events, std::uint64_t cycles) {
        sim::ContextBinding bind(ctx);
        sim::trace::startCapture();
        sim::prof::enable();
        sim::prof::beginTree(name);
        sim::flight::arm(1, name);

        // Rendezvous so both threads interleave their recording.
        ready.fetch_add(1);
        while (ready.load() < 2) {
        }

        for (int i = 0; i < events; ++i) {
            sim::trace::completeEvent(sim::trace::Syscall, name, 0,
                                      name, i * 10, i * 10 + 5);
            sim::prof::addLeaf(name, cycles);
        }
        std::uint64_t id = sim::flight::begin(100);
        sim::flight::mark(id, name, 200);
        sim::flight::complete(id, 300);
    };

    std::thread ta([&] { worker(a, "alpha", 100, 7); });
    std::thread tb([&] { worker(b, "beta", 37, 11); });
    ta.join();
    tb.join();

    {
        sim::ContextBinding bind(a);
        EXPECT_EQ(sim::trace::capturedEvents(), 100u);
        EXPECT_EQ(sim::prof::treeCount(), 1u);
        EXPECT_EQ(sim::prof::totalCycles("alpha"), 700u);
        EXPECT_EQ(sim::prof::totalCycles("beta"), 0u);
        ASSERT_EQ(sim::flight::records().size(), 1u);
        EXPECT_EQ(sim::flight::records()[0].label, "alpha");
        EXPECT_EQ(sim::trace::exportJson().find("beta"),
                  std::string::npos);
    }
    {
        sim::ContextBinding bind(b);
        EXPECT_EQ(sim::trace::capturedEvents(), 37u);
        EXPECT_EQ(sim::prof::treeCount(), 1u);
        EXPECT_EQ(sim::prof::totalCycles("beta"), 407u);
        EXPECT_EQ(sim::prof::totalCycles("alpha"), 0u);
        ASSERT_EQ(sim::flight::records().size(), 1u);
        EXPECT_EQ(sim::flight::records()[0].label, "beta");
    }
}

TEST(SimContextIsolation, MergePreservesSequentialOrder)
{
    // Two "cells" recorded independently, merged in cell order into
    // a fresh outer context: flight ids re-mint sequentially and
    // trace name tables re-intern without duplication.
    sim::SimContext c1, c2, outer;
    {
        sim::ContextBinding bind(c1);
        sim::trace::startCapture();
        sim::trace::completeEvent(sim::trace::Net, "shared", 0,
                                  "first", 0, 1);
        sim::flight::arm(1, "cell1");
        sim::flight::complete(sim::flight::begin(10), 20);
    }
    {
        sim::ContextBinding bind(c2);
        sim::trace::startCapture();
        sim::trace::completeEvent(sim::trace::Net, "shared", 0,
                                  "second", 2, 3);
        sim::flight::arm(1, "cell2");
        sim::flight::complete(sim::flight::begin(30), 40);
    }
    {
        sim::ContextBinding bind(outer);
        sim::trace::startCapture();
        sim::mergeObservability(c1);
        sim::mergeObservability(c2);
        EXPECT_EQ(sim::trace::capturedEvents(), 2u);
        ASSERT_EQ(sim::flight::records().size(), 2u);
        EXPECT_EQ(sim::flight::records()[0].id, 1u);
        EXPECT_EQ(sim::flight::records()[0].label, "cell1");
        EXPECT_EQ(sim::flight::records()[1].id, 2u);
        EXPECT_EQ(sim::flight::records()[1].label, "cell2");
        // "shared" interned once: one process_name metadata entry.
        std::string json = sim::trace::exportJson();
        std::size_t first = json.find("\"shared\"");
        ASSERT_NE(first, std::string::npos);
        EXPECT_EQ(json.find("\"shared\"", first + 1),
                  std::string::npos);
    }
}

} // namespace
} // namespace xc
