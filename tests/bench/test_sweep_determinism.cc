/**
 * @file
 * Parallel-sweep determinism: the same fixed-seed sweep run at -j1
 * and -j4 must produce byte-identical rendered rows, golden digests
 * and observability exports (trace JSON, profile JSON, flight JSON) —
 * the whole point of sim::SweepExecutor. Plus isolation unit tests:
 * two concurrently bound SimContexts must not bleed trace events,
 * profile frames or flight records into each other.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "load/unixbench.h"
#include "sim/context.h"
#include "sim/sweep.h"

namespace xc {
namespace {

using bench::Options;

/** One mini fig4-style cell: (runtime, seed). */
struct Cell
{
    const char *runtime;
    std::uint64_t seed;
};

/** Everything a sweep run produces that must be jobs-invariant. */
struct SweepOutput
{
    std::string table;
    std::string golden;
    std::string traceJson;
    std::string profJson;
    std::string flightJson;
};

SweepOutput
runMiniSweep(int jobs)
{
    // The outer context stands in for the process state a bench main
    // would use, so repeated runs in one test binary start clean.
    sim::SimContext outer;
    sim::ContextBinding bind(outer);

    Options opt;
    opt.jobs = jobs;
    opt.seed = 42;
    opt.tracePath = "unused";   // arm per-cell capture
    opt.profilePath = "unused"; // arm per-cell profiler
    opt.flightSamples = 2;
    sim::trace::startCapture();
    sim::prof::enable();

    auto spec = hw::MachineSpec::ec2C4_2xlarge();
    const std::vector<Cell> cells = {
        {"docker", 1}, {"x-container", 1}, {"gvisor", 1},
        {"docker", 2}, {"x-container", 2}, {"gvisor", 2},
    };

    std::vector<std::uint64_t> ops = bench::runSweep(
        opt, cells, [&](const Cell &cell) -> std::uint64_t {
            Options cellOpt = opt;
            cellOpt.seed = cell.seed;
            auto rt = bench::makeCloudRuntime(cell.runtime, spec,
                                              cellOpt);
            char label[64];
            std::snprintf(label, sizeof label, "%s/seed%llu",
                          cell.runtime,
                          static_cast<unsigned long long>(cell.seed));
            opt.beginRun(label,
                         static_cast<double>(spec.periodTicks()));
            return load::runMicro(*rt, load::MicroKind::Syscall,
                                  5 * sim::kTicksPerMs, 1)
                .ops;
        });

    SweepOutput out;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        char row[128];
        std::snprintf(row, sizeof row, "%s seed=%llu ops=%llu\n",
                      cells[i].runtime,
                      static_cast<unsigned long long>(cells[i].seed),
                      static_cast<unsigned long long>(ops[i]));
        out.table += row;
        out.golden += row; // stands in for a GoldenLog digest line
    }
    out.traceJson = sim::trace::exportJson();
    out.profJson = sim::prof::exportJson();
    out.flightJson = sim::flight::exportJson();
    return out;
}

TEST(SweepDeterminism, ParallelMatchesSequentialByteForByte)
{
    SweepOutput j1 = runMiniSweep(1);
    SweepOutput j4 = runMiniSweep(4);

    EXPECT_EQ(j1.table, j4.table);
    EXPECT_EQ(j1.golden, j4.golden);
    EXPECT_EQ(j1.traceJson, j4.traceJson);
    EXPECT_EQ(j1.profJson, j4.profJson);
    EXPECT_EQ(j1.flightJson, j4.flightJson);

    // And the run did simulate something: non-zero rows, captured
    // profile cycles for every cell's tree.
    EXPECT_NE(j1.table.find("ops="), std::string::npos);
    EXPECT_NE(j1.profJson.find("docker/seed1"), std::string::npos);
    EXPECT_NE(j1.profJson.find("gvisor/seed2"), std::string::npos);
}

TEST(SweepDeterminism, RepeatedParallelRunsAreStable)
{
    SweepOutput a = runMiniSweep(4);
    SweepOutput b = runMiniSweep(4);
    EXPECT_EQ(a.table, b.table);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.profJson, b.profJson);
}

TEST(SimContextIsolation, ConcurrentContextsDontBleed)
{
    sim::SimContext a, b;
    std::atomic<int> ready{0};

    auto worker = [&ready](sim::SimContext &ctx, const char *name,
                           int events, std::uint64_t cycles) {
        sim::ContextBinding bind(ctx);
        sim::trace::startCapture();
        sim::prof::enable();
        sim::prof::beginTree(name);
        sim::flight::arm(1, name);

        // Rendezvous so both threads interleave their recording.
        ready.fetch_add(1);
        while (ready.load() < 2) {
        }

        for (int i = 0; i < events; ++i) {
            sim::trace::completeEvent(sim::trace::Syscall, name, 0,
                                      name, i * 10, i * 10 + 5);
            sim::prof::addLeaf(name, cycles);
        }
        std::uint64_t id = sim::flight::begin(100);
        sim::flight::mark(id, name, 200);
        sim::flight::complete(id, 300);
    };

    std::thread ta([&] { worker(a, "alpha", 100, 7); });
    std::thread tb([&] { worker(b, "beta", 37, 11); });
    ta.join();
    tb.join();

    {
        sim::ContextBinding bind(a);
        EXPECT_EQ(sim::trace::capturedEvents(), 100u);
        EXPECT_EQ(sim::prof::treeCount(), 1u);
        EXPECT_EQ(sim::prof::totalCycles("alpha"), 700u);
        EXPECT_EQ(sim::prof::totalCycles("beta"), 0u);
        ASSERT_EQ(sim::flight::records().size(), 1u);
        EXPECT_EQ(sim::flight::records()[0].label, "alpha");
        EXPECT_EQ(sim::trace::exportJson().find("beta"),
                  std::string::npos);
    }
    {
        sim::ContextBinding bind(b);
        EXPECT_EQ(sim::trace::capturedEvents(), 37u);
        EXPECT_EQ(sim::prof::treeCount(), 1u);
        EXPECT_EQ(sim::prof::totalCycles("beta"), 407u);
        EXPECT_EQ(sim::prof::totalCycles("alpha"), 0u);
        ASSERT_EQ(sim::flight::records().size(), 1u);
        EXPECT_EQ(sim::flight::records()[0].label, "beta");
    }
}

TEST(SimContextIsolation, MergePreservesSequentialOrder)
{
    // Two "cells" recorded independently, merged in cell order into
    // a fresh outer context: flight ids re-mint sequentially and
    // trace name tables re-intern without duplication.
    sim::SimContext c1, c2, outer;
    {
        sim::ContextBinding bind(c1);
        sim::trace::startCapture();
        sim::trace::completeEvent(sim::trace::Net, "shared", 0,
                                  "first", 0, 1);
        sim::flight::arm(1, "cell1");
        sim::flight::complete(sim::flight::begin(10), 20);
    }
    {
        sim::ContextBinding bind(c2);
        sim::trace::startCapture();
        sim::trace::completeEvent(sim::trace::Net, "shared", 0,
                                  "second", 2, 3);
        sim::flight::arm(1, "cell2");
        sim::flight::complete(sim::flight::begin(30), 40);
    }
    {
        sim::ContextBinding bind(outer);
        sim::trace::startCapture();
        sim::mergeObservability(c1);
        sim::mergeObservability(c2);
        EXPECT_EQ(sim::trace::capturedEvents(), 2u);
        ASSERT_EQ(sim::flight::records().size(), 2u);
        EXPECT_EQ(sim::flight::records()[0].id, 1u);
        EXPECT_EQ(sim::flight::records()[0].label, "cell1");
        EXPECT_EQ(sim::flight::records()[1].id, 2u);
        EXPECT_EQ(sim::flight::records()[1].label, "cell2");
        // "shared" interned once: one process_name metadata entry.
        std::string json = sim::trace::exportJson();
        std::size_t first = json.find("\"shared\"");
        ASSERT_NE(first, std::string::npos);
        EXPECT_EQ(json.find("\"shared\"", first + 1),
                  std::string::npos);
    }
}

// --- DomainSet: intra-sim lookahead domains -------------------------

/** Post an identical little event program onto @p q: a self-renewing
 *  tick that logs, plus a few one-shots inserted out of order. */
void
seedProgram(sim::EventQueue &q, std::vector<std::string> &log)
{
    auto tick = std::make_shared<std::function<void(sim::Tick)>>();
    *tick = [&q, &log, tick](sim::Tick period) {
        log.push_back("tick@" + std::to_string(q.now()));
        if (q.now() + period <= 1000)
            q.postAfter(period,
                        [tick, period] { (*tick)(period); });
    };
    q.post(10, [tick] { (*tick)(35); });
    q.post(500, [&log, &q] {
        log.push_back("late@" + std::to_string(q.now()));
    });
    q.post(7, [&log, &q] {
        log.push_back("early@" + std::to_string(q.now()));
    });
}

TEST(DomainSync, OneDomainDegeneratesToSequential)
{
    std::vector<std::string> plainLog, domainLog;

    sim::EventQueue plain;
    seedProgram(plain, plainLog);
    plain.runUntil(1000);

    sim::EventQueue viaDomain;
    seedProgram(viaDomain, domainLog);
    {
        sim::DomainSet ds(1);
        ds.attach(0, &viaDomain);
        ds.run(1000, 70);
    }

    EXPECT_EQ(plainLog, domainLog);
    EXPECT_EQ(plain.now(), viaDomain.now());
    // Byte-identity of the full queue state, slab free-list included:
    // the 1-domain path must be indistinguishable from runUntil.
    sim::snap::SnapWriter wp, wd;
    plain.saveState(wp);
    viaDomain.saveState(wd);
    EXPECT_EQ(wp.take(), wd.take());
}

TEST(DomainSync, LookaheadViolationPanicsDeterministically)
{
    auto provoke = []() -> std::string {
        sim::SimContext ctx;
        ctx.log.throwOnError = true;
        sim::ContextBinding bind(ctx);
        sim::EventQueue a, b;
        b.runUntil(100); // destination clock is already at 100
        sim::DomainSet ds(2);
        ds.attach(0, &a);
        ds.attach(1, &b);
        // Delivery tick 50 <= destination now (100): the partition
        // claimed more lookahead than the link allows.
        ds.post(1, 50, [] {});
        try {
            ds.run(1000, 70);
        } catch (const sim::SimError &e) {
            return e.message;
        }
        return "";
    };

    std::string first = provoke();
    EXPECT_NE(first.find("lookahead violation"), std::string::npos);
    EXPECT_NE(first.find("tick 50"), std::string::npos);
    // Same world, same panic — the report is deterministic, not a
    // race artifact.
    EXPECT_EQ(first, provoke());
}

TEST(DomainSync, CrossDomainInjectionOrderIsHostInvariant)
{
    // Three domains ping messages around a ring; every delivery logs
    // in the destination's (single-threaded) domain. The mailbox
    // sort keyed on (when, srcDomain, srcSeq) makes the interleaving
    // a pure function of the simulation, so repeated runs match.
    auto runRing = [] {
        constexpr sim::Tick W = 50;
        sim::EventQueue qs[3];
        std::vector<std::string> logs[3];
        sim::DomainSet ds(3);
        for (int d = 0; d < 3; ++d)
            ds.attach(d, &qs[d]);

        struct Pump
        {
            sim::DomainSet *ds;
            sim::EventQueue *q;
            std::vector<std::string> *log;
            int d;
            void
            operator()() const
            {
                log->push_back("d" + std::to_string(d) + "@" +
                               std::to_string(q->now()));
                // Ring send: arrives exactly one window out.
                Pump next = *this;
                next.d = (d + 1) % 3;
                next.q = ds->queueOf(next.d);
                next.log = log - d + next.d;
                if (q->now() + W <= 1000)
                    ds->post(next.d, q->now() + W, next);
            }
        };
        for (int d = 0; d < 3; ++d) {
            Pump p{&ds, &qs[d], &logs[d], d};
            qs[d].post(static_cast<sim::Tick>(1 + d), p);
        }
        ds.run(1000, W);

        std::string all;
        for (auto &log : logs)
            for (auto &line : log)
                all += line + "\n";
        for (auto &q : qs)
            all += "now=" + std::to_string(q.now()) + "\n";
        return all;
    };

    std::string a = runRing();
    EXPECT_NE(a.find("d0@1"), std::string::npos);
    EXPECT_NE(a.find("d1@"), std::string::npos);
    EXPECT_EQ(a, runRing());
    EXPECT_EQ(a, runRing());
}

/** fig3-equivalent in-process check: the same macro cell measured on
 *  one queue and split across two lookahead domains must agree on
 *  every output byte (requests, latencies, errors, mech digest). */
TEST(DomainSync, MacroRunDomainsMatchSequential)
{
    auto measure = [](int domains) {
        sim::SimContext ctx;
        sim::ContextBinding bind(ctx);
        Options opt;
        opt.seed = 42;
        auto built = bench::makeCloudRuntime(
            "docker", hw::MachineSpec::ec2C4_2xlarge(), opt);
        bench::MacroRun run;
        run.connections = 40;
        run.duration = 30 * sim::kTicksPerMs;
        run.seed = 42;
        run.observeMech = true;
        run.domains = domains;
        load::LoadResult r =
            bench::runMacro(*built.runtime, bench::MacroApp::Nginx,
                            run);
        char head[160];
        std::snprintf(head, sizeof head,
                      "req=%llu err=%llu p50=%.6f p99=%.6f mean=%.6f ",
                      static_cast<unsigned long long>(r.requests),
                      static_cast<unsigned long long>(r.errors),
                      r.p50LatencyUs, r.p99LatencyUs, r.meanLatencyUs);
        return std::string(head) + r.mechJson();
    };

    std::string seq = measure(1);
    std::string dom = measure(2);
    EXPECT_NE(seq.find("req="), std::string::npos);
    EXPECT_NE(seq, "req=0 err=0"); // actually measured something
    EXPECT_EQ(seq, dom);
}

} // namespace
} // namespace xc
