#include <gtest/gtest.h>

#include "xen/balloon.h"
#include "xen/migration.h"

namespace xc::xen {
namespace {

hw::Machine
makeMachine(std::uint64_t mem_gb = 8)
{
    hw::MachineSpec spec = hw::MachineSpec::xeonE52690Local();
    spec.memBytes = mem_gb << 30;
    return hw::Machine(spec, 42);
}

TEST(Balloon, InflateGrowsReservation)
{
    auto m = makeMachine();
    Hypervisor hv(m, {});
    Domain *dom = hv.createDomain("c", 128ull << 20, 1);
    ASSERT_NE(dom, nullptr);
    BalloonDriver balloon(hv, dom);

    std::uint64_t added = balloon.inflateBy(64ull << 20);
    EXPECT_EQ(added, 64ull << 20);
    EXPECT_EQ(balloon.extraBytes(), 64ull << 20);
    EXPECT_GT(balloon.lastOpCost(), 0u);
}

TEST(Balloon, DeflateReturnsMemory)
{
    auto m = makeMachine();
    Hypervisor hv(m, {});
    Domain *dom = hv.createDomain("c", 128ull << 20, 1);
    BalloonDriver balloon(hv, dom);
    std::uint64_t free_before = m.memory().freeFrames();

    balloon.inflateBy(64ull << 20);
    EXPECT_LT(m.memory().freeFrames(), free_before);
    std::uint64_t released = balloon.deflateBy(64ull << 20);
    EXPECT_EQ(released, 64ull << 20);
    EXPECT_EQ(m.memory().freeFrames(), free_before);
}

TEST(Balloon, InflateStopsGracefullyAtMachineLimit)
{
    auto m = makeMachine(2); // 2 GB machine
    Hypervisor hv(m, {});
    Domain *dom = hv.createDomain("c", 128ull << 20, 1);
    BalloonDriver balloon(hv, dom);
    // Ask for far more than exists: partial growth, no panic.
    std::uint64_t added = balloon.inflateBy(64ull << 30);
    EXPECT_GT(added, 0u);
    EXPECT_LT(added, 64ull << 30);
    EXPECT_EQ(m.memory().freeFrames(), 0u);
}

TEST(Balloon, DeflateNeverGoesBelowBootReservation)
{
    auto m = makeMachine();
    Hypervisor hv(m, {});
    Domain *dom = hv.createDomain("c", 128ull << 20, 1);
    BalloonDriver balloon(hv, dom);
    EXPECT_EQ(balloon.deflateBy(64ull << 20), 0u);
    EXPECT_EQ(dom->memBytes(), 128ull << 20);
}

TEST(Balloon, EnablesOversubscriptionPattern)
{
    // The §4.5 workflow: many small containers can flex within a
    // fixed machine by trading reservations.
    auto m = makeMachine(2);
    Hypervisor hv(m, {});
    Domain *a = hv.createDomain("a", 128ull << 20, 1);
    Domain *b = hv.createDomain("b", 128ull << 20, 1);
    BalloonDriver ba(hv, a), bb(hv, b);

    std::uint64_t grabbed = ba.inflateBy(448ull << 20);
    EXPECT_EQ(grabbed, 448ull << 20);
    // b wants a lot: it only gets what's left...
    std::uint64_t b_first = bb.inflateBy(512ull << 20);
    EXPECT_LT(b_first, 512ull << 20);
    EXPECT_EQ(m.memory().freeFrames(), 0u);
    // ...until a gives its extra memory back.
    ba.deflateBy(448ull << 20);
    std::uint64_t b_second = bb.inflateBy(256ull << 20);
    EXPECT_EQ(b_second, 256ull << 20);
}

TEST(Migration, CheckpointTimeScalesWithMemory)
{
    auto m = makeMachine();
    Hypervisor hv(m, {});
    Domain *xc = hv.createDomain("xc", 128ull << 20, 1);
    Domain *vm = hv.createDomain("vm", 2048ull << 20, 1);

    MigrationReport small = checkpoint(*xc);
    MigrationReport big = checkpoint(*vm);
    EXPECT_TRUE(small.converged);
    // 16x the memory -> 16x the checkpoint time.
    EXPECT_NEAR(static_cast<double>(big.totalTime) /
                    static_cast<double>(small.totalTime),
                16.0, 0.01);
    // A 128 MB X-Container checkpoints in ~107 ms over 10 Gbit/s.
    EXPECT_NEAR(sim::ticksToSeconds(small.totalTime), 0.107, 0.01);
}

TEST(Migration, LiveMigrationDowntimeMuchSmallerThanTotal)
{
    auto m = makeMachine();
    Hypervisor hv(m, {});
    Domain *dom = hv.createDomain("xc", 512ull << 20, 1);
    MigrationReport r = liveMigrate(*dom);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.rounds, 1);
    EXPECT_LT(r.downtime, r.totalTime / 5);
    EXPECT_GE(r.bytesTransferred, dom->memBytes());
}

TEST(Migration, HotDirtierNeedsMoreRounds)
{
    auto m = makeMachine();
    Hypervisor hv(m, {});
    Domain *dom = hv.createDomain("xc", 512ull << 20, 1);
    MigrationConfig cold;
    cold.dirtyFractionPerSec = 0.05;
    MigrationConfig hot;
    hot.dirtyFractionPerSec = 0.9;
    MigrationReport rc = liveMigrate(*dom, cold);
    MigrationReport rh = liveMigrate(*dom, hot);
    EXPECT_LT(rc.rounds, rh.rounds);
    EXPECT_LT(rc.bytesTransferred, rh.bytesTransferred);
}

TEST(Migration, NonConvergentWorkloadFallsBackToStopCopy)
{
    auto m = makeMachine();
    Hypervisor hv(m, {});
    Domain *dom = hv.createDomain("xc", 1024ull << 20, 1);
    MigrationConfig cfg;
    cfg.gbitPerSec = 1.0;           // slow link
    cfg.dirtyFractionPerSec = 3.0;  // dirties faster than the wire
    MigrationReport r = liveMigrate(*dom, cfg);
    EXPECT_FALSE(r.converged);
    EXPECT_GT(r.downtime, 0u);
}

TEST(Migration, MigrateDomainMovesReservation)
{
    auto src_m = makeMachine();
    auto dst_m = makeMachine();
    Hypervisor src(src_m, {});
    Hypervisor dst(dst_m, {});
    Domain *dom = src.createDomain("xc", 128ull << 20, 1);
    std::uint64_t src_free = src_m.memory().freeFrames();
    std::uint64_t dst_free = dst_m.memory().freeFrames();

    MigrationReport report;
    Domain *replica = migrateDomain(src, dst, dom, report);
    ASSERT_NE(replica, nullptr);
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(replica->memBytes(), 128ull << 20);
    EXPECT_GT(src_m.memory().freeFrames(), src_free);
    EXPECT_LT(dst_m.memory().freeFrames(), dst_free);
}

TEST(Migration, MigrationFailsCleanlyWhenDestinationFull)
{
    auto src_m = makeMachine();
    auto dst_m = makeMachine(2);
    Hypervisor src(src_m, {});
    Hypervisor dst(dst_m, {});
    // Fill the destination.
    while (dst.createDomain("filler", 256ull << 20, 1)) {
    }
    Domain *dom = src.createDomain("xc", 512ull << 20, 1);
    std::size_t src_domains = src.domainCount();

    MigrationReport report;
    Domain *replica = migrateDomain(src, dst, dom, report);
    EXPECT_EQ(replica, nullptr);
    EXPECT_EQ(src.domainCount(), src_domains); // source untouched
}

TEST(Migration, XContainerMigratesFasterThanFatVm)
{
    // The capability claim of §3.3 quantified: the small footprint
    // of an X-Container makes the whole protocol ~an order of
    // magnitude cheaper than for a conventional 2 GB VM.
    auto m = makeMachine();
    Hypervisor hv(m, {});
    Domain *xc = hv.createDomain("xc", 128ull << 20, 1);
    Domain *vm = hv.createDomain("vm", 2048ull << 20, 1);
    MigrationReport rx = liveMigrate(*xc);
    MigrationReport rv = liveMigrate(*vm);
    EXPECT_LT(rx.totalTime * 10, rv.totalTime + rv.totalTime / 2);
    EXPECT_LT(rx.downtime, rv.downtime + 1);
}

} // namespace
} // namespace xc::xen
