#include <gtest/gtest.h>

#include "hw/machine.h"
#include "xen/hypervisor.h"

namespace xc::xen {
namespace {

hw::Machine
makeMachine()
{
    return hw::Machine(hw::MachineSpec::xeonE52690Local(), 42);
}

TEST(Hypervisor, BootsDom0WithReservation)
{
    auto m = makeMachine();
    std::uint64_t before = m.memory().freeFrames();
    Hypervisor hv(m, Hypervisor::Config{});
    EXPECT_NE(hv.dom0(), nullptr);
    EXPECT_TRUE(hv.dom0()->privileged());
    EXPECT_EQ(hv.dom0()->id(), 0);
    // Hypervisor reserve + dom0 memory are really gone.
    std::uint64_t taken = before - m.memory().freeFrames();
    EXPECT_EQ(taken * hw::kPageSize, (256ull << 20) + (1024ull << 20));
}

TEST(Hypervisor, CreateDomainsUntilMemoryExhausted)
{
    hw::MachineSpec spec = hw::MachineSpec::xeonE52690Local();
    spec.memBytes = 4ull << 30; // 4 GB machine
    hw::Machine m(spec, 42);
    Hypervisor hv(m, Hypervisor::Config{});
    // 4 GB - 256 MB reserve - 1 GB dom0 = 2.75 GB; 512 MB guests -> 5.
    int booted = 0;
    while (hv.createDomain("vm", 512ull << 20, 1))
        ++booted;
    EXPECT_EQ(booted, 5);
    // The failed boot must not have leaked a domain id or memory.
    EXPECT_EQ(hv.domainCount(), 6u); // dom0 + 5
}

TEST(Hypervisor, DestroyDomainReleasesMemory)
{
    auto m = makeMachine();
    Hypervisor hv(m, Hypervisor::Config{});
    std::uint64_t free_before = m.memory().freeFrames();
    Domain *dom = hv.createDomain("vm", 256ull << 20, 1);
    ASSERT_NE(dom, nullptr);
    EXPECT_LT(m.memory().freeFrames(), free_before);
    hv.destroyDomain(dom);
    EXPECT_EQ(m.memory().freeFrames(), free_before);
}

TEST(Hypervisor, HypercallCostsAndCounts)
{
    auto m = makeMachine();
    Hypervisor hv(m, Hypervisor::Config{});
    EXPECT_GT(hv.hypercallCost(Hypercall::MmuUpdate),
              hv.hypercallCost(Hypercall::SchedOp));
    std::uint64_t before = hv.totalHypercalls();
    hv.countHypercall(Hypercall::MmuUpdate);
    hv.countHypercall(Hypercall::MmuUpdate);
    EXPECT_EQ(hv.hypercalls(Hypercall::MmuUpdate), 2u);
    EXPECT_EQ(hv.totalHypercalls(), before + 2);
}

TEST(Hypervisor, XenBlanketAddsNestingTax)
{
    auto m = makeMachine();
    Hypervisor::Config plain_cfg;
    Hypervisor::Config blanket_cfg;
    blanket_cfg.xenBlanket = true;
    {
        Hypervisor plain(m, plain_cfg);
        hw::Cycles c1 = plain.hypercallCost(Hypercall::SchedOp);
        auto m2 = makeMachine();
        Hypervisor blanket(m2, blanket_cfg);
        hw::Cycles c2 = blanket.hypercallCost(Hypercall::SchedOp);
        EXPECT_GT(c2, c1);
    }
}

TEST(EventChannels, BindNotifyClose)
{
    EventChannels ec;
    int fired = 0;
    EvtchnPort port = ec.bind(1, [&] { ++fired; });
    ec.notify(port);
    ec.notify(port);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(ec.notifications(), 2u);
    ec.close(port);
    ec.notify(port); // no handler: counted but no effect
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(ec.openPorts(), 0u);
}

TEST(GrantTable, GrantMapCopyRevoke)
{
    GrantTable gt(1);
    GrantRef ref = gt.grantAccess(2, 0x1000, true);
    EXPECT_TRUE(gt.mapGrant(ref, 2));
    EXPECT_FALSE(gt.mapGrant(ref, 3)); // wrong domain
    EXPECT_FALSE(gt.endAccess(ref));   // still mapped
    gt.unmapGrant(ref);
    EXPECT_TRUE(gt.grantCopy(ref, 2));
    EXPECT_EQ(gt.copies(), 1u);
    EXPECT_TRUE(gt.endAccess(ref));
    EXPECT_EQ(gt.activeGrants(), 0u);
}

TEST(DescriptorRing, ProduceConsumeAndDrops)
{
    DescriptorRing ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.produce());
    EXPECT_TRUE(ring.full());
    EXPECT_FALSE(ring.produce()); // drop
    EXPECT_EQ(ring.drops(), 1u);
    EXPECT_EQ(ring.consume(10), 4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.batches(), 1u);
}

TEST(Hypervisor, MmuUpdateValidationIsTheIsolationBoundary)
{
    // §3.4: a domain may only install mappings to frames it owns;
    // dom0 is privileged (it builds domains and runs back ends).
    auto m = makeMachine();
    Hypervisor hv(m, Hypervisor::Config{});
    Domain *a = hv.createDomain("a", 64ull << 20, 1);
    Domain *b = hv.createDomain("b", 64ull << 20, 1);
    ASSERT_TRUE(a && b);

    auto frame_of = [&](Domain *d) {
        hw::Pfn pfn = 1;
        while (m.memory().ownerOf(pfn) !=
               static_cast<hw::OwnerId>(d->id()))
            ++pfn;
        return pfn;
    };
    hw::Pfn fa = frame_of(a);
    hw::Pfn fb = frame_of(b);

    EXPECT_TRUE(hv.validateMmuUpdate(*a, fa));
    EXPECT_FALSE(hv.validateMmuUpdate(*a, fb)); // cross-container!
    EXPECT_FALSE(hv.validateMmuUpdate(*b, fa));
    EXPECT_TRUE(hv.validateMmuUpdate(*hv.dom0(), fa)); // privileged
    EXPECT_EQ(hv.rejectedMmuUpdates(), 2u);
}

TEST(Hypervisor, CreditPoolUsesVcpuSwitchCosts)
{
    auto m = makeMachine();
    Hypervisor hv(m, Hypervisor::Config{});
    EXPECT_EQ(hv.pool().cores(), m.numCpus());
    EXPECT_EQ(hv.pool().waiting(), 0u);
}

} // namespace
} // namespace xc::xen
