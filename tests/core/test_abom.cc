#include <gtest/gtest.h>

#include <vector>

#include "core/abom.h"
#include "core/offline_patch.h"
#include "isa/assembler.h"
#include "isa/interpreter.h"
#include "isa/syscall_stub.h"

namespace xc::core {
namespace {

using isa::CodeBuffer;
using isa::GuestAddr;

std::vector<std::uint8_t>
bytesAt(const CodeBuffer &code, GuestAddr at, int n)
{
    std::vector<std::uint8_t> out;
    for (int i = 0; i < n; ++i)
        out.push_back(code.read8(at + i));
    return out;
}

TEST(Abom, SevenByteCase1MatchesFigure2)
{
    // Fig. 2: __read at 0xeb6a9: b8 00 00 00 00 / 0f 05
    //   becomes ff 14 25 08 00 60 ff (callq *0xffffffffff600008).
    CodeBuffer code(0xeb6a9);
    isa::Assembler as(code);
    as.movEaxImm(0);
    GuestAddr sc = as.syscallInsn();
    as.ret();

    Abom abom;
    EXPECT_EQ(abom.onSyscallTrap(code, sc), PatchResult::Patched7Case1);
    EXPECT_EQ(bytesAt(code, 0xeb6a9, 7),
              (std::vector<std::uint8_t>{0xff, 0x14, 0x25, 0x08, 0x00,
                                         0x60, 0xff}));
    EXPECT_EQ(abom.stats().patch7Case1, 1u);
}

TEST(Abom, SevenByteCase2MatchesFigure2)
{
    // Fig. 2: syscall.Syscall: 48 8b 44 24 08 / 0f 05
    //   becomes ff 14 25 08 0c 60 ff (callq *0xffffffffff600c08).
    CodeBuffer code(0x7f41d);
    isa::Assembler as(code);
    as.movRaxFromRsp(0x08);
    GuestAddr sc = as.syscallInsn();
    as.ret();

    Abom abom;
    EXPECT_EQ(abom.onSyscallTrap(code, sc), PatchResult::Patched7Case2);
    EXPECT_EQ(bytesAt(code, 0x7f41d, 7),
              (std::vector<std::uint8_t>{0xff, 0x14, 0x25, 0x08, 0x0c,
                                         0x60, 0xff}));
}

TEST(Abom, NineBytePhase1MatchesFigure2)
{
    // Fig. 2: __restore_rt at 0x10330: 48 c7 c0 0f 00 00 00 / 0f 05
    //   phase 1: ff 14 25 80 00 60 ff, syscall kept at 0x10337.
    CodeBuffer code(0x10330);
    isa::Assembler as(code);
    as.movRaxImm(0xf);
    GuestAddr sc = as.syscallInsn();
    as.ret();

    Abom abom;
    EXPECT_EQ(abom.onSyscallTrap(code, sc),
              PatchResult::Patched9Phase1);
    EXPECT_EQ(bytesAt(code, 0x10330, 7),
              (std::vector<std::uint8_t>{0xff, 0x14, 0x25, 0x80, 0x00,
                                         0x60, 0xff}));
    // The original syscall is untouched in phase 1.
    EXPECT_EQ(bytesAt(code, 0x10337, 2),
              (std::vector<std::uint8_t>{0x0f, 0x05}));
}

TEST(Abom, NineBytePhase2AppliedByReturnCheck)
{
    CodeBuffer code(0x10330);
    isa::Assembler as(code);
    as.movRaxImm(0xf);
    GuestAddr sc = as.syscallInsn();
    as.ret();

    Abom abom;
    abom.onSyscallTrap(code, sc);
    // The handler sees the stale syscall at the return address and
    // finishes the optimization: eb f7 (jmp 0x10330) per Fig. 2.
    GuestAddr resumed = abom.adjustReturn(code, sc);
    EXPECT_EQ(resumed, sc + 2);
    EXPECT_EQ(bytesAt(code, 0x10337, 2),
              (std::vector<std::uint8_t>{0xeb, 0xf7}));
    EXPECT_EQ(abom.stats().patch9Phase2, 1u);
    // And the jmp target is the call instruction.
    isa::Insn jmp = isa::decode(code, 0x10337);
    EXPECT_EQ(0x10337 + jmp.length + jmp.imm, 0x10330);
    // Subsequent returns skip the jmp too.
    EXPECT_EQ(abom.adjustReturn(code, sc), sc + 2);
}

TEST(Abom, EveryIntermediateStateIsValidBinary)
{
    // Concurrency safety (§4.4): between phase 1 and phase 2, a
    // second CPU entering at the wrapper start must execute correct
    // code: call (dispatch) then stale syscall skipped by handler.
    CodeBuffer code(0x10330);
    isa::Assembler as(code);
    GuestAddr entry = as.movRaxImm(0xf);
    GuestAddr sc = as.syscallInsn();
    as.ret();

    Abom abom;
    abom.onSyscallTrap(code, sc); // phase 1 only

    // Decode from the entry: must be exactly call, syscall, ret.
    isa::Insn call = isa::decode(code, entry);
    ASSERT_EQ(call.op, isa::Op::CallAbs);
    isa::Insn stale = isa::decode(code, entry + call.length);
    EXPECT_EQ(stale.op, isa::Op::Syscall);
    EXPECT_EQ(isa::decode(code, entry + call.length + 2).op,
              isa::Op::Ret);
}

TEST(Abom, CancellableWrapperIsNotPatched)
{
    // libpthread-style: checks between the mov and the syscall.
    isa::StubLibrary lib;
    const auto &stub =
        lib.build(0, isa::WrapperKind::PthreadCancellable, "read");
    Abom abom;
    EXPECT_EQ(abom.onSyscallTrap(lib.code(), stub.syscallSite),
              PatchResult::NoMatch);
    EXPECT_EQ(abom.stats().noMatch, 1u);
    // Bytes untouched: the next execution traps again.
    EXPECT_EQ(abom.onSyscallTrap(lib.code(), stub.syscallSite),
              PatchResult::NoMatch);
}

TEST(Abom, DisabledAbomOnlyCounts)
{
    CodeBuffer code(0x1000);
    isa::Assembler as(code);
    as.movEaxImm(39);
    GuestAddr sc = as.syscallInsn();

    Abom abom(/*enabled=*/false);
    EXPECT_EQ(abom.onSyscallTrap(code, sc), PatchResult::NoMatch);
    EXPECT_EQ(code.read8(0x1000), 0xb8); // unchanged
    EXPECT_EQ(abom.stats().trapsSeen, 1u);
}

TEST(Abom, PatchIsIdempotentAcrossRacingTraps)
{
    // Two vCPUs trap on the same site; the second finds the bytes
    // already changed and must not corrupt them.
    CodeBuffer code(0x1000);
    isa::Assembler as(code);
    as.movEaxImm(1);
    GuestAddr sc = as.syscallInsn();
    as.ret();

    Abom abom;
    EXPECT_EQ(abom.onSyscallTrap(code, sc), PatchResult::Patched7Case1);
    auto after_first = bytesAt(code, 0x1000, 7);
    EXPECT_EQ(abom.onSyscallTrap(code, sc), PatchResult::Unwritable);
    EXPECT_EQ(bytesAt(code, 0x1000, 7), after_first);
}

TEST(Abom, FixupRecognizesOnlyPatchedCallTails)
{
    CodeBuffer code(0x1000);
    isa::Assembler as(code);
    as.movEaxImm(0);
    GuestAddr sc = as.syscallInsn();
    as.ret();

    Abom abom;
    abom.onSyscallTrap(code, sc);
    // A jump to the old syscall address lands on "60 ff".
    GuestAddr fixed = abom.fixupInvalidOpcode(code, sc);
    EXPECT_EQ(fixed, 0x1000u);
    EXPECT_EQ(abom.stats().fixupTraps, 1u);

    // Random garbage is not fixed up.
    CodeBuffer junk(0x2000);
    junk.append({0x60, 0xff, 0x00, 0x00, 0x00, 0x00, 0x00});
    EXPECT_EQ(abom.fixupInvalidOpcode(junk, 0x2000), Abom::kNoFix);
}

TEST(Abom, ReductionRatioTracksConversions)
{
    Abom abom;
    AbomStats &st = abom.stats();
    st.trapsSeen = 10;
    st.directCalls = 90;
    EXPECT_DOUBLE_EQ(abom.stats().reductionRatio(), 0.9);
}

TEST(OfflinePatch, RewritesCancellableWrapper)
{
    isa::StubLibrary lib;
    const auto stub =
        lib.build(0, isa::WrapperKind::PthreadCancellable, "read");
    auto report = offlinePatch(lib);
    EXPECT_EQ(report.sitesPatched, 1u);

    // The rewritten wrapper now dispatches through the vsyscall
    // table: first instruction is a call to slot(0).
    isa::Insn call = isa::decode(lib.code(), stub.entry);
    ASSERT_EQ(call.op, isa::Op::CallAbs);
    EXPECT_EQ(static_cast<GuestAddr>(call.imm),
              isa::vsyscallSlotAddr(0));
    // Padding is NOPs through the old syscall site.
    for (GuestAddr a = stub.entry + 7; a < stub.syscallSite + 2; ++a)
        EXPECT_EQ(lib.code().read8(a), 0x90);
}

TEST(OfflinePatch, LeavesOnlinePatchableSitesAlone)
{
    isa::StubLibrary lib;
    lib.build(1, isa::WrapperKind::GlibcMovEax, "write");
    auto report = offlinePatch(lib);
    EXPECT_EQ(report.sitesPatched, 0u);
    EXPECT_EQ(report.sitesSkipped, 1u);
}

TEST(OfflinePatch, PatchedWrapperExecutesCorrectly)
{
    isa::StubLibrary lib;
    const auto stub =
        lib.build(0, isa::WrapperKind::PthreadCancellable, "read");
    offlinePatch(lib);

    class Env : public isa::ExecEnv
    {
      public:
        int slot = -1;
        isa::GuestAddr
        onSyscall(isa::Regs &, isa::CodeBuffer &, isa::GuestAddr) override
        {
            ADD_FAILURE() << "offline-patched wrapper trapped";
            return kFault;
        }
        isa::GuestAddr
        onVsyscallCall(int s, isa::Regs &, isa::CodeBuffer &,
                       isa::GuestAddr ret) override
        {
            slot = s;
            return ret;
        }
        isa::GuestAddr
        onInvalidOpcode(isa::Regs &, isa::CodeBuffer &,
                        isa::GuestAddr) override
        {
            return kFault;
        }
    };

    Env env;
    isa::Regs regs;
    auto r = isa::execute(lib.code(), stub.entry, regs, env);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(env.slot, 0);
}

} // namespace
} // namespace xc::core
