#include <gtest/gtest.h>

#include <tuple>

#include "core/abom.h"
#include "isa/interpreter.h"
#include "isa/syscall_stub.h"

namespace xc::core {
namespace {

/** Env that dispatches both paths and records which was taken. */
class PathEnv : public isa::ExecEnv
{
  public:
    explicit PathEnv(Abom &abom) : abom(abom) {}

    int traps = 0;
    int calls = 0;
    int lastSlot = -1;

    isa::GuestAddr
    onSyscall(isa::Regs &, isa::CodeBuffer &code,
              isa::GuestAddr ip_after) override
    {
        ++traps;
        abom.onSyscallTrap(code, ip_after - 2);
        return ip_after;
    }

    isa::GuestAddr
    onVsyscallCall(int slot, isa::Regs &, isa::CodeBuffer &code,
                   isa::GuestAddr ret) override
    {
        ++calls;
        lastSlot = slot;
        abom.countDirectCall();
        return abom.adjustReturn(code, ret);
    }

    isa::GuestAddr
    onInvalidOpcode(isa::Regs &, isa::CodeBuffer &code,
                    isa::GuestAddr ip) override
    {
        isa::GuestAddr fixed = abom.fixupInvalidOpcode(code, ip);
        return fixed == Abom::kNoFix ? kFault : fixed;
    }

  private:
    Abom &abom;
};

using PropParam = std::tuple<int, isa::WrapperKind>;

/**
 * Property sweep: for every (syscall number, wrapper shape), the
 * wrapper must (a) always deliver the correct number, (b) stay
 * byte-decodable after any number of ABOM passes, and (c) end up on
 * the expected dispatch path.
 */
class AbomProperty : public ::testing::TestWithParam<PropParam>
{
};

TEST_P(AbomProperty, PatchPreservesSemanticsAndValidity)
{
    auto [nr, kind] = GetParam();
    isa::StubLibrary lib;
    const isa::SyscallStub stub = lib.build(nr, kind);

    Abom abom;
    PathEnv env(abom);

    for (int round = 0; round < 6; ++round) {
        isa::Regs regs;
        if (kind == isa::WrapperKind::GoStackArg)
            regs.stack[1] = static_cast<std::uint64_t>(nr);
        isa::RunResult r =
            isa::execute(lib.code(), stub.entry, regs, env);
        ASSERT_FALSE(r.faulted) << "round " << round;
        ASSERT_FALSE(r.hitLimit);
    }

    // (c) dispatch path per wrapper shape.
    if (kind == isa::WrapperKind::PthreadCancellable) {
        EXPECT_EQ(env.traps, 6);
        EXPECT_EQ(env.calls, 0);
    } else {
        EXPECT_EQ(env.traps, 1) << "only the first call traps";
        EXPECT_EQ(env.calls, 5);
        int expect_slot = kind == isa::WrapperKind::GoStackArg
                              ? isa::kStackArgSlot
                              : nr;
        EXPECT_EQ(env.lastSlot, expect_slot);
    }

    // (b) the whole wrapper region still decodes as valid code.
    isa::GuestAddr ip = stub.entry;
    while (ip < lib.code().end()) {
        isa::Insn insn = isa::decode(lib.code(), ip);
        if (insn.op == isa::Op::Ret)
            break;
        // Phase-2 jmp legitimately points backward; follow one hop
        // only to avoid looping.
        ASSERT_TRUE(insn.valid())
            << "invalid byte at " << std::hex << ip;
        if (insn.op == isa::Op::JmpRel8)
            break;
        ip += insn.length;
    }
}

INSTANTIATE_TEST_SUITE_P(
    NrAndKindSweep, AbomProperty,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3, 15, 39, 57, 60, 102, 231, 302),
        ::testing::Values(isa::WrapperKind::GlibcMovEax,
                          isa::WrapperKind::GlibcMovRax,
                          isa::WrapperKind::GoStackArg,
                          isa::WrapperKind::PthreadCancellable)),
    [](const ::testing::TestParamInfo<PropParam> &info) {
        std::string kind =
            isa::wrapperKindName(std::get<1>(info.param));
        for (char &c : kind)
            if (c == '-')
                c = '_';
        return "nr" + std::to_string(std::get<0>(info.param)) + "_" +
               kind;
    });

TEST(AbomPropertyExtra, JumpIntoPatchedSiteAlwaysRecovers)
{
    // For every nr, patch a glibc wrapper and then enter through a
    // trampoline that jumps straight at the old syscall address.
    for (int nr : {0, 1, 15, 39, 60}) {
        isa::StubLibrary lib;
        const isa::SyscallStub victim =
            lib.build(nr, isa::WrapperKind::GlibcMovEax);
        const isa::SyscallStub jumper = lib.buildJumpInto(victim);

        Abom abom;
        PathEnv env(abom);

        // Patch via the victim's front door first.
        isa::Regs regs;
        isa::execute(lib.code(), victim.entry, regs, env);
        ASSERT_EQ(env.traps, 1);

        // Now the stale jump lands mid-call: fixup must recover and
        // dispatch through the call.
        isa::Regs regs2;
        isa::RunResult r =
            isa::execute(lib.code(), jumper.entry, regs2, env);
        EXPECT_FALSE(r.faulted) << "nr " << nr;
        EXPECT_EQ(env.calls, 1);
        EXPECT_EQ(abom.stats().fixupTraps, 1u);
        EXPECT_EQ(env.lastSlot, nr);
    }
}

TEST(AbomPropertyExtra, RacingTrapsNeverCorruptAnyNr)
{
    for (int nr = 0; nr < 64; ++nr) {
        isa::StubLibrary lib;
        const isa::SyscallStub stub =
            lib.build(nr, isa::WrapperKind::GlibcMovEax);
        Abom abom;
        // First trap patches; a racing second trap must fail the
        // cmpxchg and leave the site intact.
        EXPECT_EQ(abom.onSyscallTrap(lib.code(), stub.syscallSite),
                  PatchResult::Patched7Case1);
        EXPECT_EQ(abom.onSyscallTrap(lib.code(), stub.syscallSite),
                  PatchResult::Unwritable);
        isa::Insn call = isa::decode(lib.code(), stub.entry);
        ASSERT_EQ(call.op, isa::Op::CallAbs);
        EXPECT_EQ(isa::vsyscallSlotIndex(
                      static_cast<isa::GuestAddr>(call.imm)),
                  nr);
    }
}

} // namespace
} // namespace xc::core
