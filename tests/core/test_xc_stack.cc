#include <gtest/gtest.h>

#include "apps/images.h"
#include "core/offline_patch.h"
#include "core/platform.h"
#include "guestos/sys.h"
#include "runtimes/x_container.h"
#include "runtimes/xen_container.h"

namespace xc::test {
namespace {

using namespace xc;
using guestos::Sys;
using guestos::Thread;

TEST(XcStack, ModeDetectionByStackPointerMsb)
{
    // §4.2: the X-Kernel classifies guest mode by the MSB of the
    // stack pointer — the X-LibOS occupies the top half.
    EXPECT_TRUE(core::XKernel::inGuestKernelMode(0xffff888000001000ull));
    EXPECT_TRUE(core::XKernel::inGuestKernelMode(
        isa::kVsyscallBase)); // vsyscall page is kernel-half
    EXPECT_FALSE(core::XKernel::inGuestKernelMode(0x7ffdc0001000ull));
    EXPECT_FALSE(core::XKernel::inGuestKernelMode(0x400000ull));
}

TEST(XcStack, KernelMappingsCarryGlobalBitInXLibos)
{
    // §4.3: the global bit is re-enabled for X-LibOS mappings.
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *c = rt.createContainer(copts);
    guestos::Process *p = c->createProcess("p", copts.image);
    EXPECT_GT(p->pageTable().globalPages(), 0u);
}

TEST(XcStack, PvGuestHasNoGlobalKernelMappings)
{
    runtimes::XenContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *c = rt.createContainer(copts);
    guestos::Process *p = c->createProcess("p", copts.image);
    EXPECT_EQ(p->pageTable().globalPages(), 0u);
}

TEST(XcStack, FirstSyscallTrapsRestAreDirect)
{
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *c = rt.createContainer(copts);
    guestos::Process *p = c->createProcess("p", copts.image);
    guestos::Thread::Body body = [](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        for (int i = 0; i < 50; ++i)
            co_await sys.getpid();
    };
    c->kernel().spawnThread(p, "loop", std::move(body));
    rt.machine().events().run();

    const core::AbomStats &st = rt.xkernel().abom().stats();
    EXPECT_EQ(st.trapsSeen, 1u);
    EXPECT_EQ(st.directCalls, 49u);
    EXPECT_EQ(st.patch7Case1, 1u);
}

TEST(XcStack, GoImageUsesStackArgSlot)
{
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::goImage("goapp");
    auto *c = rt.createContainer(copts);
    guestos::Process *p = c->createProcess("p", copts.image);
    guestos::Thread::Body body = [](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        for (int i = 0; i < 20; ++i)
            co_await sys.getpid();
    };
    c->kernel().spawnThread(p, "loop", std::move(body));
    rt.machine().events().run();
    EXPECT_EQ(rt.xkernel().abom().stats().patch7Case2, 1u);
}

TEST(XcStack, NineBytePatchCompletesViaReturnPath)
{
    // rt_sigreturn uses the mov-rax wrapper: the first call patches
    // phase 1; the second call (through the new call instruction)
    // lets the handler finish phase 2.
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *c = rt.createContainer(copts);
    guestos::Process *p = c->createProcess("p", copts.image);
    guestos::Thread::Body body = [](Thread &t) -> sim::Task<void> {
        for (int i = 0; i < 3; ++i) {
            co_await t.kernel().syscall(
                t, guestos::NR_rt_sigreturn, guestos::SysArgs{});
        }
    };
    c->kernel().spawnThread(p, "loop", std::move(body));
    rt.machine().events().run();
    const core::AbomStats &st = rt.xkernel().abom().stats();
    EXPECT_EQ(st.patch9Phase1, 1u);
    EXPECT_EQ(st.patch9Phase2, 1u);
    EXPECT_EQ(st.trapsSeen, 1u);
    EXPECT_EQ(st.directCalls, 2u);
}

TEST(XcStack, CancellableWrapperKeepsTrapping)
{
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::mixedImage("m", {guestos::NR_getpid});
    auto *c = rt.createContainer(copts);
    guestos::Process *p = c->createProcess("p", copts.image);
    guestos::Thread::Body body = [](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        for (int i = 0; i < 10; ++i)
            co_await sys.getpid();
    };
    c->kernel().spawnThread(p, "loop", std::move(body));
    rt.machine().events().run();
    const core::AbomStats &st = rt.xkernel().abom().stats();
    EXPECT_EQ(st.trapsSeen, 10u);
    EXPECT_EQ(st.directCalls, 0u);
}

TEST(XcStack, AbomDisabledKeepsForwardingEverything)
{
    runtimes::XContainerRuntime::Options opts;
    opts.abomEnabled = false;
    runtimes::XContainerRuntime rt(opts);
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *c = rt.createContainer(copts);
    guestos::Process *p = c->createProcess("p", copts.image);
    guestos::Thread::Body body = [](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        for (int i = 0; i < 25; ++i)
            co_await sys.getpid();
    };
    c->kernel().spawnThread(p, "loop", std::move(body));
    rt.machine().events().run();
    const core::AbomStats &st = rt.xkernel().abom().stats();
    EXPECT_EQ(st.trapsSeen, 25u);
    EXPECT_EQ(st.directCalls, 0u);
}

TEST(XcStack, AbomMakesSyscallsMuchFaster)
{
    auto run_loop = [](bool abom) {
        runtimes::XContainerRuntime::Options opts;
        opts.abomEnabled = abom;
        runtimes::XContainerRuntime rt(opts);
        runtimes::ContainerOpts copts;
        copts.image = apps::glibcImage("img");
        auto *c = rt.createContainer(copts);
        guestos::Process *p = c->createProcess("p", copts.image);
        guestos::Thread::Body body =
            [](Thread &t) -> sim::Task<void> {
            Sys sys(t);
            for (int i = 0; i < 2000; ++i)
                co_await sys.getpid();
        };
        c->kernel().spawnThread(p, "loop", std::move(body));
        rt.machine().events().run();
        return rt.machine().now();
    };
    sim::Tick with = run_loop(true);
    sim::Tick without = run_loop(false);
    EXPECT_GT(without, 3 * with);
}

TEST(XcStack, SpawnFailsGracefullyWhenMemoryExhausted)
{
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    copts.memBytes = 4ull << 30; // 4 GB each on a 15 GB machine
    int booted = 0;
    while (rt.createContainer(copts))
        ++booted;
    EXPECT_GE(booted, 2);
    EXPECT_LE(booted, 3); // 15 GB minus Xen reserve and dom0
}

TEST(XcStack, DestroyReleasesDomainMemory)
{
    hw::Machine machine(hw::MachineSpec::ec2C4_2xlarge(), 1);
    guestos::NetFabric fabric(machine.events());
    core::XContainerPlatform platform(machine, fabric, {});
    std::uint64_t free_before = machine.memory().freeFrames();

    core::XContainerPlatform::ContainerSpec spec;
    spec.image = apps::glibcImage("img");
    core::XContainer *c = platform.spawn(spec);
    ASSERT_NE(c, nullptr);
    EXPECT_LT(machine.memory().freeFrames(), free_before);
    platform.destroy(c);
    EXPECT_EQ(machine.memory().freeFrames(), free_before);
    EXPECT_EQ(platform.containerCount(), 0u);
}

TEST(XcStack, MeltdownPatchDoesNotSlowXContainers)
{
    // Fig. 4's observation: patched and unpatched X-Containers
    // perform identically (syscalls never enter kernel mode).
    auto run_loop = [](bool patched) {
        runtimes::XContainerRuntime::Options opts;
        opts.meltdownPatched = patched;
        runtimes::XContainerRuntime rt(opts);
        runtimes::ContainerOpts copts;
        copts.image = apps::glibcImage("img");
        auto *c = rt.createContainer(copts);
        guestos::Process *p = c->createProcess("p", copts.image);
        guestos::Thread::Body body =
            [](Thread &t) -> sim::Task<void> {
            Sys sys(t);
            for (int i = 0; i < 1000; ++i)
                co_await sys.getpid();
        };
        c->kernel().spawnThread(p, "loop", std::move(body));
        rt.machine().events().run();
        return rt.machine().now();
    };
    // Identical to within the (tiny) XPTI tax on setup-time
    // hypercalls; the syscall path itself never enters kernel mode.
    double patched = static_cast<double>(run_loop(true));
    double unpatched = static_cast<double>(run_loop(false));
    EXPECT_NEAR(patched / unpatched, 1.0, 0.02);
}

TEST(XcStack, HypercallsStillGoThroughXKernel)
{
    // Process page-table operations remain X-Kernel work (§4.3's
    // "context switches between X-Containers do trigger...").
    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    auto *c = rt.createContainer(copts);
    guestos::Process *p = c->createProcess("p", copts.image);
    guestos::Thread::Body body = [](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        guestos::Thread::Body child =
            [](Thread &ct) -> sim::Task<void> {
            Sys csys(ct);
            co_await csys.exit(0);
        };
        std::int64_t pid = co_await sys.fork(std::move(child));
        co_await sys.wait(static_cast<guestos::Pid>(pid));
    };
    c->kernel().spawnThread(p, "forker", std::move(body));
    rt.machine().events().run();
    EXPECT_GT(rt.xkernel().hypercalls(xen::Hypercall::MmuUpdate), 0u);
}

} // namespace
} // namespace xc::test
