#include <gtest/gtest.h>

#include "apps/images.h"
#include "apps/kv.h"
#include "apps/nginx.h"
#include "load/driver.h"
#include "runtimes/clear_container.h"
#include "runtimes/graphene.h"
#include "runtimes/x_container.h"

namespace xc::test {
namespace {

using namespace xc;
using runtimes::ContainerOpts;
using runtimes::makeRuntime;
using runtimes::RtContainer;
using runtimes::Runtime;

/** Deploy NGINX, drive it with wrk, return the measured result. */
load::LoadResult
runNginxOn(Runtime &rt, int workers = 1, int connections = 32)
{
    ContainerOpts copts;
    copts.name = "web";
    copts.image = apps::glibcImage("placeholder");
    copts.vcpus = workers > 1 ? 4 : 1;
    copts.memBytes = 512ull << 20;
    RtContainer *c = rt.createContainer(copts);
    EXPECT_NE(c, nullptr);

    apps::NginxApp::Config ncfg;
    ncfg.workers = workers;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*c);
    rt.exposePort(c, 8080, 80);

    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 8080}, connections,
        150 * sim::kTicksPerMs);
    load::ClosedLoopDriver driver(rt.fabric(), spec);

    rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(10 * sim::kTicksPerMs +
                                   spec.warmup + spec.duration +
                                   50 * sim::kTicksPerMs);
    load::LoadResult r = driver.collect();
    EXPECT_GT(nginx.requestsServed(), 0u);
    return r;
}

TEST(Stack, NginxOnDockerServesRequests)
{
    auto rt = makeRuntime("docker");
    ASSERT_NE(rt, nullptr);
    load::LoadResult r = runNginxOn(*rt);
    EXPECT_GT(r.requests, 100u);
    EXPECT_GT(r.throughput, 1000.0);
    EXPECT_GT(r.p50LatencyUs, 0.0);
    EXPECT_EQ(r.errors, 0u);
}

TEST(Stack, NginxOnXContainerServesRequests)
{
    runtimes::XContainerRuntime rt({});
    load::LoadResult r = runNginxOn(rt);
    EXPECT_GT(r.requests, 100u);
    EXPECT_EQ(r.errors, 0u);
    // ABOM converted nearly all syscalls after warmup. (wrk's
    // keepalive request mix is writev-heavy; Table 1's ab-driven
    // mix reaches ~92%.)
    const auto &st = rt.xkernel().abom().stats();
    EXPECT_GT(st.directCalls, st.trapsSeen);
    EXPECT_GT(st.reductionRatio(), 0.80);
}

TEST(Stack, XContainerOutperformsDockerOnNginx)
{
    auto docker = makeRuntime("docker");
    load::LoadResult rd = runNginxOn(*docker);
    auto xcont = makeRuntime("x-container");
    load::LoadResult rx = runNginxOn(*xcont);
    // The headline macro result: X-Containers beat patched Docker.
    EXPECT_GT(rx.throughput, rd.throughput);
}

TEST(Stack, GvisorIsFarSlowerThanDocker)
{
    auto docker = makeRuntime("docker");
    load::LoadResult rd = runNginxOn(*docker);
    auto gvisor = makeRuntime("gvisor");
    load::LoadResult rg = runNginxOn(*gvisor);
    EXPECT_LT(rg.throughput, rd.throughput * 0.7);
}

TEST(Stack, XenContainerSlowerThanXContainer)
{
    auto xen = makeRuntime("xen-container");
    load::LoadResult rp = runNginxOn(*xen);
    auto xcont = makeRuntime("x-container");
    load::LoadResult rx = runNginxOn(*xcont);
    EXPECT_GT(rx.throughput, rp.throughput);
    EXPECT_GT(rp.requests, 50u);
}

TEST(Stack, ClearContainerUnavailableOnEc2)
{
    EXPECT_FALSE(runtimes::ClearContainerRuntime::availableOn(
        hw::MachineSpec::ec2C4_2xlarge()));
    EXPECT_TRUE(runtimes::ClearContainerRuntime::availableOn(
        hw::MachineSpec::gceCustom4()));
    EXPECT_TRUE(runtimes::ClearContainerRuntime::availableOn(
        hw::MachineSpec::xeonE52690Local()));
}

TEST(Stack, ClearContainerOnGceServes)
{
    auto rt =
        makeRuntime("clear-container", hw::MachineSpec::gceCustom4());
    ASSERT_NE(rt, nullptr);
    load::LoadResult r = runNginxOn(*rt);
    EXPECT_GT(r.requests, 50u);
}

TEST(Stack, UnikernelSingleWorkerServes)
{
    auto rt = makeRuntime("unikernel");
    load::LoadResult r = runNginxOn(*rt, /*workers=*/1);
    EXPECT_GT(r.requests, 50u);
}

TEST(Stack, UnikernelRefusesMultiProcess)
{
    auto rt = makeRuntime("unikernel");
    ContainerOpts copts;
    copts.image = apps::glibcImage("x");
    RtContainer *c = rt->createContainer(copts);
    ASSERT_NE(c, nullptr);
    EXPECT_FALSE(c->supportsMultiProcess());
}

TEST(Stack, GrapheneMultiWorkerPaysIpc)
{
    runtimes::GrapheneRuntime rt({});
    ContainerOpts copts;
    copts.name = "web";
    copts.image = apps::glibcImage("placeholder");
    copts.vcpus = 4;
    copts.memBytes = 512ull << 20;
    auto *inst = static_cast<runtimes::GrapheneInstance *>(
        rt.createContainer(copts));
    ASSERT_NE(inst, nullptr);

    apps::NginxApp::Config ncfg;
    ncfg.workers = 4;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*inst);
    rt.exposePort(inst, 8080, 80);

    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 8080}, 16,
        150 * sim::kTicksPerMs);
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(10 * sim::kTicksPerMs +
                                   spec.warmup + spec.duration +
                                   50 * sim::kTicksPerMs);
    EXPECT_GT(driver.collect().requests, 50u);
    // Multi-process Graphene coordinates shared POSIX state (the
    // listener the workers accept on) over IPC.
    EXPECT_GT(inst->port().grapheneEnv().ipcCoordinations(), 0u);
}

TEST(Stack, MemcachedOnXContainerBeatsDockerBigger)
{
    auto run_kv = [](Runtime &rt) {
        ContainerOpts copts;
        copts.name = "cache";
        copts.image = apps::glibcImage("placeholder");
        copts.vcpus = 4;
        RtContainer *c = rt.createContainer(copts);
        EXPECT_NE(c, nullptr);
        apps::KvApp app(apps::KvApp::memcachedConfig());
        app.deploy(*c);
        rt.exposePort(c, 11211, 11211);
        load::WorkloadSpec spec = load::memtierSpec(
            guestos::SockAddr{rt.hostIp(), 11211}, 64,
            150 * sim::kTicksPerMs);
        load::ClosedLoopDriver driver(rt.fabric(), spec);
        rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                       [&] { driver.start(); });
        rt.machine().events().runUntil(
            10 * sim::kTicksPerMs + spec.warmup + spec.duration +
            50 * sim::kTicksPerMs);
        return driver.collect();
    };

    auto docker = makeRuntime("docker");
    load::LoadResult rd = run_kv(*docker);
    auto xcont = makeRuntime("x-container");
    load::LoadResult rx = run_kv(*xcont);
    EXPECT_GT(rd.requests, 100u);
    EXPECT_GT(rx.throughput, rd.throughput);
}

} // namespace
} // namespace xc::test
