#include <gtest/gtest.h>

#include <string>

#include "load/unixbench.h"
#include "runtimes/docker.h"
#include "runtimes/gvisor.h"
#include "runtimes/x_container.h"
#include "sim/profile.h"

namespace xc::test {
namespace {

/**
 * Acceptance check for the cycle-attribution profiler: under the
 * syscall microbenchmark, Docker and gVisor attribute substantial
 * cycles to privilege-transition frames ("xen/syscall_trap",
 * "gvisor/ptrace_hop"), while the X-Container — whose libOS turns
 * syscalls into patched function calls — attributes essentially
 * none, with the cycles showing up under "libos/patched_call"
 * instead. This is the paper's Table 1 / Fig. 4 story read straight
 * out of the profile tree.
 */
struct ProfGuard
{
    ProfGuard() { sim::prof::clear(); }
    ~ProfGuard() { sim::prof::clear(); }
};

template <typename Rt>
load::MicroResult
profiledSyscallRun(const char *label)
{
    sim::prof::beginTree(label);
    Rt rt({});
    return load::runMicro(rt, load::MicroKind::Syscall,
                          50 * sim::kTicksPerMs, 1);
}

TEST(ProfileAttribution, SyscallTrapCyclesByRuntime)
{
    ProfGuard guard;
    sim::prof::enable();
    auto docker = profiledSyscallRun<runtimes::DockerRuntime>("docker");
    auto gvisor = profiledSyscallRun<runtimes::GvisorRuntime>("gvisor");
    auto xc =
        profiledSyscallRun<runtimes::XContainerRuntime>("x-container");
    sim::prof::disable();

    ASSERT_GT(docker.ops, 0u);
    ASSERT_GT(gvisor.ops, 0u);
    ASSERT_GT(xc.ops, 0u);
    ASSERT_EQ(sim::prof::treeCount(), 3u);

    std::uint64_t dockerTrap =
        sim::prof::cyclesUnder("docker", "xen/syscall_trap");
    std::uint64_t gvisorTrap =
        sim::prof::cyclesUnder("gvisor", "xen/syscall_trap");
    std::uint64_t xcTrap =
        sim::prof::cyclesUnder("x-container", "xen/syscall_trap");

    // Docker and gVisor cross a privilege boundary per syscall.
    EXPECT_GT(dockerTrap, 0u);
    EXPECT_GT(gvisorTrap, 0u);
    // gVisor additionally pays the ptrace interception hop.
    EXPECT_GT(
        sim::prof::cyclesUnder("gvisor", "gvisor/ptrace_hop"), 0u);

    // The X-Container attributes ~0 cycles to syscall traps: at
    // least 100x below Docker, and every "trapped" cycle replaced by
    // patched in-process calls.
    EXPECT_LT(xcTrap * 100, dockerTrap);
    EXPECT_GT(
        sim::prof::cyclesUnder("x-container", "libos/patched_call"),
        0u);
    EXPECT_GT(sim::prof::totalCycles("x-container"), 0u);

    // The exported JSON carries the same attribution.
    std::string json = sim::prof::exportJson();
    EXPECT_NE(json.find("\"label\":\"docker\""), std::string::npos);
    EXPECT_NE(json.find("\"label\":\"x-container\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"xen/syscall_trap\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"libos/patched_call\""),
              std::string::npos);
}

} // namespace
} // namespace xc::test
