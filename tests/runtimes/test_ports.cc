#include <gtest/gtest.h>

#include "core/xc_port.h"
#include "guestos/native_port.h"
#include "runtimes/graphene.h"
#include "runtimes/gvisor.h"
#include "xen/pv_port.h"

namespace xc::test {
namespace {

using namespace xc;

struct PortRig
{
    PortRig()
        : machine(hw::MachineSpec::ec2C4_2xlarge(), 1),
          hv(machine, xen::Hypervisor::Config{}),
          xk(xmachine(), xkcfg())
    {
    }

    hw::Machine &
    xmachine()
    {
        if (!machine2) {
            machine2 = std::make_unique<hw::Machine>(
                hw::MachineSpec::ec2C4_2xlarge(), 2);
        }
        return *machine2;
    }

    static core::XKernel::XConfig
    xkcfg()
    {
        return core::XKernel::XConfig{};
    }

    hw::Machine machine;
    std::unique_ptr<hw::Machine> machine2;
    xen::Hypervisor hv;
    core::XKernel xk;
};

TEST(Ports, PageTableCostOrdering)
{
    PortRig rig;
    const hw::CostModel &c = rig.machine.costs();

    guestos::NativePort native(c, {});
    xen::Domain *dom = rig.hv.createDomain("d", 128ull << 20, 1);
    xen::PvPort pv(rig.hv, dom, {});
    xen::Domain *xdom = rig.xk.createDomain("x", 128ull << 20, 1);
    core::XcPort xc_port(rig.xk, xdom, {});

    // Validated, batched hypercall updates cost more than native
    // writes — for PV guests *and* for X-Containers (the price the
    // paper pays on process creation / context switching, Fig. 5).
    std::uint64_t ptes = 500;
    EXPECT_GT(pv.pageTableUpdateCost(c, ptes),
              native.pageTableUpdateCost(c, ptes));
    EXPECT_GT(xc_port.pageTableUpdateCost(c, ptes),
              native.pageTableUpdateCost(c, ptes));
    EXPECT_GT(pv.pageTableSwitchCost(c), native.pageTableSwitchCost(c));
}

TEST(Ports, EventDeliveryOrdering)
{
    PortRig rig;
    const hw::CostModel &c = rig.machine.costs();

    guestos::NativePort native(c, {});
    xen::Domain *dom = rig.hv.createDomain("d", 128ull << 20, 1);
    xen::PvPort pv(rig.hv, dom, {});
    xen::Domain *xdom = rig.xk.createDomain("x", 128ull << 20, 1);
    core::XcPort xc_port(rig.xk, xdom, {});

    // §4.2: the X-LibOS handles events without entering the
    // X-Kernel — cheaper than both native interrupts and PV upcalls.
    EXPECT_LT(xc_port.eventDeliveryCost(c),
              native.eventDeliveryCost(c));
    EXPECT_LT(xc_port.eventDeliveryCost(c), pv.eventDeliveryCost(c));
    EXPECT_GT(pv.eventDeliveryCost(c), native.eventDeliveryCost(c));
}

TEST(Ports, PvSyscallForwardingDwarfsNativeTrap)
{
    PortRig rig;
    const hw::CostModel &c = rig.machine.costs();

    // Measure via a bound thread's accrued cycles.
    guestos::NativePort native_port(c, {.kpti = false,
                                        .containerNet = false,
                                        .trapCostOverride = 0,
                                        .packetExtra = 0,
                                        .seccompPerSyscall = 0,
                                        .eventDeliveryExtra = 0});
    xen::Domain *dom = rig.hv.createDomain("d", 128ull << 20, 1);
    xen::PvPort pv_port(rig.hv, dom, {});

    // Fake thread context: use a real kernel to host it.
    hw::CorePool::Config pool_cfg;
    pool_cfg.cores = 1;
    hw::CorePool pool(rig.machine, pool_cfg, "t");
    guestos::NetFabric fabric(rig.machine.events());
    guestos::GuestKernel::Config kcfg;
    kcfg.vcpus = 1;
    kcfg.pool = &pool;
    kcfg.platform = &native_port;
    kcfg.fabric = &fabric;
    guestos::GuestKernel kernel(rig.machine, kcfg);
    auto image = std::make_shared<guestos::Image>();
    guestos::Process *p = kernel.createProcess("p", image);
    guestos::Thread t(kernel, *p, 99, "probe");

    isa::CodeBuffer code(0x1000);
    isa::Assembler as(code);
    as.movEaxImm(39);
    isa::GuestAddr sc = as.syscallInsn();

    isa::Regs regs;
    native_port.syscallEnv(t).onSyscall(regs, code, sc + 2);
    hw::Cycles native_cost = t.accrued();

    guestos::Thread t2(kernel, *p, 100, "probe2");
    pv_port.syscallEnv(t2).onSyscall(regs, code, sc + 2);
    hw::Cycles pv_cost = t2.accrued();

    EXPECT_GT(pv_cost, 3 * native_cost);
}

TEST(Ports, GvisorInterceptIsMicroseconds)
{
    hw::Machine machine(hw::MachineSpec::ec2C4_2xlarge(), 1);
    const hw::CostModel &c = machine.costs();
    runtimes::GvisorPort port(c, /*host_kpti=*/true);

    hw::CorePool::Config pool_cfg;
    pool_cfg.cores = 1;
    hw::CorePool pool(machine, pool_cfg, "t");
    guestos::NetFabric fabric(machine.events());
    guestos::NativePort native(c, {});
    guestos::GuestKernel::Config kcfg;
    kcfg.vcpus = 1;
    kcfg.pool = &pool;
    kcfg.platform = &native;
    kcfg.fabric = &fabric;
    guestos::GuestKernel kernel(machine, kcfg);
    auto image = std::make_shared<guestos::Image>();
    guestos::Process *p = kernel.createProcess("p", image);
    guestos::Thread t(kernel, *p, 1, "probe");

    isa::CodeBuffer code(0x1000);
    isa::Assembler as(code);
    as.movEaxImm(0);
    isa::GuestAddr sc = as.syscallInsn();
    isa::Regs regs;
    port.syscallEnv(t).onSyscall(regs, code, sc + 2);

    // Two ptrace stops + sentry + host KPTI: several microseconds.
    EXPECT_GT(t.accrued(), 15000u); // > ~5 us at 2.9 GHz
}

TEST(Ports, GrapheneIpcOnlyWhenMultiProcess)
{
    hw::Machine machine(hw::MachineSpec::xeonE52690Local(), 1);
    const hw::CostModel &c = machine.costs();

    hw::CorePool::Config pool_cfg;
    pool_cfg.cores = 1;
    hw::CorePool pool(machine, pool_cfg, "t");
    guestos::NetFabric fabric(machine.events());
    runtimes::GraphenePort port(c, false);
    guestos::GuestKernel::Config kcfg;
    kcfg.vcpus = 1;
    kcfg.pool = &pool;
    kcfg.platform = &port;
    kcfg.fabric = &fabric;
    guestos::GuestKernel kernel(machine, kcfg);
    port.setKernel(&kernel);

    auto image = std::make_shared<guestos::Image>();
    guestos::Process *p1 = kernel.createProcess("p1", image);
    guestos::Thread t(kernel, *p1, 1, "probe");

    isa::CodeBuffer code(0x1000);
    isa::Assembler as(code);
    as.movEaxImm(guestos::NR_accept4); // shared-state syscall
    isa::GuestAddr sc = as.syscallInsn();
    isa::Regs regs;
    regs.rax = guestos::NR_accept4;

    port.syscallEnv(t).onSyscall(regs, code, sc + 2);
    hw::Cycles single = t.accrued();

    kernel.createProcess("p2", image); // now multi-process
    guestos::Thread t2(kernel, *p1, 2, "probe2");
    port.syscallEnv(t2).onSyscall(regs, code, sc + 2);
    hw::Cycles multi = t2.accrued();

    EXPECT_GT(multi, single + c.ipcRoundTrip - 1);
    EXPECT_EQ(port.grapheneEnv().ipcCoordinations(), 1u);
}

TEST(Ports, XcPortNetPathIsLeanerThanDockerPath)
{
    PortRig rig;
    const hw::CostModel &c = rig.machine.costs();
    guestos::NativePort docker(c, {.kpti = true,
                                   .containerNet = true,
                                   .trapCostOverride = 0,
                                   .packetExtra = 0,
                                   .seccompPerSyscall = 0,
                                   .eventDeliveryExtra = 0});
    xen::Domain *xdom = rig.xk.createDomain("x", 128ull << 20, 1);
    core::XcPort xc_port(rig.xk, xdom, {});

    // Guest-side ring work < veth + NAT on the host CPUs (the
    // back-end half runs in dom0; see DESIGN.md "dom0 offload").
    EXPECT_LT(xc_port.netPathExtraPerPacket(c, true),
              docker.netPathExtraPerPacket(c, true));
    // And the rings observed traffic.
    EXPECT_GT(xc_port.rxQueue().produced(), 0u);
}

} // namespace
} // namespace xc::test
