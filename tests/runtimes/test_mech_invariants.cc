#include <gtest/gtest.h>

#include <memory>

#include "apps/images.h"
#include "guestos/sys.h"
#include "guestos/vfs.h"
#include "hw/machine.h"
#include "runtimes/docker.h"
#include "runtimes/gvisor.h"
#include "runtimes/unikernel.h"
#include "runtimes/x_container.h"
#include "runtimes/xen_container.h"
#include "sim/mech_counters.h"

namespace xc::test {
namespace {

using guestos::Fd;
using guestos::Sys;
using guestos::Thread;
using runtimes::ContainerOpts;
using runtimes::RtContainer;
using runtimes::Runtime;
using sim::Mech;
using sim::MechSnapshot;

/**
 * One fixed syscall burst: a warmup segment (lets ABOM patch every
 * executed site) followed by a measured segment bracketed by counter
 * snapshots. Both segments run in the same process on the same image
 * so patched stubs stay patched.
 */
struct BurstState
{
    hw::Machine *machine = nullptr;
    std::uint64_t ops = 0;
    MechSnapshot mid;
    MechSnapshot end;
    bool done = false;
};

constexpr int kWarmupIters = 40;
constexpr int kMeasuredIters = 200;

/** Run the burst on a fresh container of @p rt; return the measured
 *  segment's counter delta. */
MechSnapshot
measuredDelta(Runtime &rt, std::uint64_t *ops_out = nullptr)
{
    ContainerOpts copts;
    copts.name = "mech";
    copts.image = apps::glibcImage("mech");
    copts.vcpus = 1;
    copts.memBytes = 256ull << 20;
    RtContainer *c = rt.createContainer(copts);
    EXPECT_NE(c, nullptr);
    if (!c)
        return {};

    guestos::GuestKernel &kernel = c->kernel();
    kernel.vfs().createFile("/dev/zero", 1 << 20);

    auto st = std::make_shared<BurstState>();
    st->machine = &rt.machine();

    guestos::Process *proc = c->createProcess("mech0", copts.image);
    Thread::Body body = [raw = st.get()](Thread &t) -> sim::Task<void> {
        Sys sys(t);
        Fd fd = static_cast<Fd>(
            co_await sys.open("/dev/zero", guestos::ORdOnly));
        for (int i = 0; i < kWarmupIters; ++i) {
            std::int64_t d = co_await sys.dup(fd);
            co_await sys.close(static_cast<Fd>(d));
            co_await sys.getpid();
            co_await sys.getuid();
            co_await sys.umask(022);
        }
        raw->mid = raw->machine->mech().snapshot();
        for (int i = 0; i < kMeasuredIters; ++i) {
            std::int64_t d = co_await sys.dup(fd);
            co_await sys.close(static_cast<Fd>(d));
            co_await sys.getpid();
            co_await sys.getuid();
            co_await sys.umask(022);
            ++raw->ops;
        }
        raw->end = raw->machine->mech().snapshot();
        raw->done = true;
        co_await sys.exit(0);
    };
    kernel.spawnThread(proc, "mech0", std::move(body));

    rt.machine().events().runUntil(rt.machine().now() +
                                   500 * sim::kTicksPerMs);
    EXPECT_TRUE(st->done);
    if (ops_out)
        *ops_out = st->ops;
    return st->end - st->mid;
}

TEST(MechInvariants, XContainerPatchedPathAvoidsTrapsAndFlushes)
{
    runtimes::XContainerRuntime rt({});
    std::uint64_t ops = 0;
    MechSnapshot d = measuredDelta(rt, &ops);
    EXPECT_GT(ops, 0u);
    // After warmup every executed site is ABOM-patched: the measured
    // segment dispatches through the vsyscall table as function
    // calls — zero traps, zero ptrace hops, zero TLB flushes.
    EXPECT_EQ(d.count(Mech::SyscallTrap), 0u);
    EXPECT_EQ(d.count(Mech::PtraceHop), 0u);
    EXPECT_EQ(d.count(Mech::TlbFlush), 0u);
    EXPECT_GT(d.count(Mech::PatchedCall), 0u);
}

TEST(MechInvariants, XContainerCountersDeterministicAcrossRuns)
{
    runtimes::XContainerRuntime rt1({});
    std::uint64_t ops1 = 0;
    MechSnapshot d1 = measuredDelta(rt1, &ops1);

    runtimes::XContainerRuntime rt2({});
    std::uint64_t ops2 = 0;
    MechSnapshot d2 = measuredDelta(rt2, &ops2);

    EXPECT_EQ(ops1, ops2);
    EXPECT_TRUE(d1 == d2);
}

TEST(MechInvariants, GvisorInterceptsViaPtrace)
{
    runtimes::GvisorRuntime rt({});
    std::uint64_t ops = 0;
    MechSnapshot d = measuredDelta(rt, &ops);
    EXPECT_GT(ops, 0u);
    // Every intercepted syscall costs two ptrace stops.
    EXPECT_GT(d.count(Mech::PtraceHop), 0u);
    EXPECT_GE(d.count(Mech::PtraceHop), 2 * d.count(Mech::SyscallTrap));
    EXPECT_EQ(d.count(Mech::PatchedCall), 0u);
}

TEST(MechInvariants, XenContainerFlushesTlbWhereXContainerDoesNot)
{
    runtimes::XenContainerRuntime xen({});
    MechSnapshot dxen = measuredDelta(xen);
    // PV guest: no global bit, so every syscall's hypervisor bounce
    // refills both user and kernel TLB entries.
    EXPECT_GT(dxen.count(Mech::TlbFlush), 0u);
    EXPECT_GT(dxen.count(Mech::SyscallTrap), 0u);
    EXPECT_GT(dxen.count(Mech::Hypercall), 0u);

    runtimes::XContainerRuntime xcont({});
    MechSnapshot dx = measuredDelta(xcont);
    EXPECT_EQ(dx.count(Mech::TlbFlush), 0u);
}

TEST(MechInvariants, DockerTrapsOnEverySyscall)
{
    runtimes::DockerRuntime rt({});
    std::uint64_t ops = 0;
    MechSnapshot d = measuredDelta(rt, &ops);
    EXPECT_GT(ops, 0u);
    // 5 syscalls per measured iteration, each one a trap.
    EXPECT_GE(d.count(Mech::SyscallTrap),
              5 * static_cast<std::uint64_t>(kMeasuredIters));
    EXPECT_EQ(d.count(Mech::PtraceHop), 0u);
    EXPECT_EQ(d.count(Mech::Hypercall), 0u);
    EXPECT_EQ(d.count(Mech::PatchedCall), 0u);
}

TEST(MechInvariants, UnikernelSyscallsAreFunctionCalls)
{
    runtimes::UnikernelRuntime rt({});
    std::uint64_t ops = 0;
    MechSnapshot d = measuredDelta(rt, &ops);
    EXPECT_GT(ops, 0u);
    // Rumprun links the application against the rump kernel:
    // syscalls are compiled-in function calls, never traps.
    EXPECT_EQ(d.count(Mech::SyscallTrap), 0u);
    EXPECT_GT(d.count(Mech::PatchedCall), 0u);
}

TEST(MechInvariants, MechCyclesAreAttributed)
{
    runtimes::DockerRuntime rt({});
    MechSnapshot d = measuredDelta(rt);
    // Counts without cycles would make the attribution report lie.
    EXPECT_GT(d.cyclesOf(Mech::SyscallTrap), 0u);
    EXPECT_GT(d.totalCycles(), 0u);
}

} // namespace
} // namespace xc::test
