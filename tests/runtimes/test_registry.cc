#include <gtest/gtest.h>

#include <algorithm>

#include "apps/images.h"
#include "runtimes/clear_container.h"
#include "runtimes/docker.h"
#include "runtimes/runtime.h"

namespace xc::test {
namespace {

using runtimes::buildRuntime;
using runtimes::makeRuntime;
using runtimes::MakeStatus;
using runtimes::RuntimeConfig;

TEST(Registry, ListsEveryBuiltinRuntime)
{
    auto names = runtimes::runtimeNames();
    for (const char *expected :
         {"docker", "docker-unpatched", "xen-container",
          "xen-container-unpatched", "x-container",
          "x-container-unpatched", "gvisor", "gvisor-unpatched",
          "clear-container", "clear-container-unpatched",
          "kvm-microvm", "kvm-microvm-unpatched", "unikernel",
          "graphene"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, BuildsRuntimesByName)
{
    for (const char *name :
         {"docker", "xen-container", "x-container", "gvisor",
          "unikernel", "graphene"}) {
        auto rt = makeRuntime(name);
        ASSERT_NE(rt, nullptr) << name;
        EXPECT_FALSE(rt->name().empty());
    }
}

TEST(Registry, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeRuntime("no-such-runtime"), nullptr);
    EXPECT_EQ(makeRuntime(""), nullptr);
}

TEST(Registry, ClearContainerRespectsMachineAvailability)
{
    // EC2 c4.2xlarge: nested cloud without nested HW virt.
    EXPECT_EQ(makeRuntime("clear-container",
                          hw::MachineSpec::ec2C4_2xlarge()),
              nullptr);
    // GCE exposes nested VMX; the local machine is not nested.
    EXPECT_NE(
        makeRuntime("clear-container", hw::MachineSpec::gceCustom4()),
        nullptr);
    EXPECT_NE(makeRuntime("clear-container",
                          hw::MachineSpec::xeonE52690Local()),
              nullptr);
}

TEST(Registry, BuildRuntimeReportsTypedFailures)
{
    auto unknown = buildRuntime("no-such-runtime");
    EXPECT_FALSE(unknown);
    EXPECT_EQ(unknown.status, MakeStatus::UnknownName);
    EXPECT_NE(unknown.reason.find("no-such-runtime"),
              std::string::npos);

    auto unavailable = buildRuntime(
        "clear-container", hw::MachineSpec::ec2C4_2xlarge());
    EXPECT_FALSE(unavailable);
    EXPECT_EQ(unavailable.status, MakeStatus::Unavailable);
    EXPECT_NE(unavailable.reason.find("nested"), std::string::npos);

    auto ok = buildRuntime("docker");
    ASSERT_TRUE(ok);
    EXPECT_EQ(ok.status, MakeStatus::Ok);
    EXPECT_TRUE(ok.reason.empty());
    EXPECT_EQ(ok->name(), "docker");
    // Smart-pointer accessors agree.
    EXPECT_EQ(ok.get(), &*ok);
}

TEST(Registry, MakeStatusNamesArePrintable)
{
    EXPECT_STREQ(runtimes::makeStatusName(MakeStatus::Ok), "ok");
    EXPECT_STREQ(runtimes::makeStatusName(MakeStatus::UnknownName),
                 "unknown-name");
    EXPECT_STREQ(runtimes::makeStatusName(MakeStatus::Unavailable),
                 "unavailable");
    EXPECT_STREQ(runtimes::makeStatusName(MakeStatus::InvalidConfig),
                 "invalid-config");
}

TEST(Registry, CapabilitiesExposedPerFamily)
{
    using namespace runtimes;
    EXPECT_TRUE(runtimeCapabilities("x-container") & kCapAbom);
    EXPECT_TRUE(runtimeCapabilities("x-container") &
                kCapPerContainerKernel);
    EXPECT_FALSE(runtimeCapabilities("docker") &
                 kCapPerContainerKernel);
    EXPECT_TRUE(runtimeCapabilities("docker") & kCapMultiProcess);
    EXPECT_FALSE(runtimeCapabilities("unikernel") & kCapMultiProcess);
    EXPECT_FALSE(runtimeCapabilities("graphene") &
                 kCapMeltdownPatchControl);
    EXPECT_EQ(runtimeCapabilities("no-such-runtime"), 0u);
    // Instances advertise what the registry promised.
    auto rt = buildRuntime("unikernel");
    ASSERT_TRUE(rt);
    EXPECT_EQ(rt->capabilities() & kCapMultiProcess, 0u);
}

TEST(Registry, CapabilityNamesRender)
{
    using namespace runtimes;
    EXPECT_EQ(capabilityNames(0), "none");
    std::string s =
        capabilityNames(kCapAbom | kCapPerContainerKernel);
    EXPECT_NE(s.find("abom"), std::string::npos);
    EXPECT_NE(s.find("per-container-kernel"), std::string::npos);
}

TEST(Registry, IgnoredConfigSectionsProduceWarnings)
{
    // A kvm config handed to docker is ignored — with a warning
    // naming the field, not silently.
    RuntimeConfig cfg;
    cfg.kvm = runtimes::KvmMicrovmConfig{};
    auto rt = buildRuntime("docker", cfg);
    ASSERT_TRUE(rt);
    ASSERT_FALSE(rt.warnings.empty());
    EXPECT_NE(rt.warnings[0].field.find("kvm"), std::string::npos);

    RuntimeConfig xcfg;
    xcfg.xcontainer = runtimes::XContainerConfig{};
    auto gv = buildRuntime("gvisor", xcfg);
    ASSERT_TRUE(gv);
    EXPECT_FALSE(gv.warnings.empty());

    // The section consumed by its own family: no warning.
    auto xc = buildRuntime("x-container", xcfg);
    ASSERT_TRUE(xc);
    EXPECT_TRUE(xc.warnings.empty());
}

TEST(Registry, ContainerOptsBuilderValidates)
{
    using runtimes::ContainerOpts;
    ContainerOpts ok = ContainerOpts::builder()
                           .name("web")
                           .image(apps::glibcImage("img"))
                           .vcpus(2)
                           .memBytes(64ull << 20)
                           .build();
    EXPECT_EQ(ok.name, "web");
    EXPECT_EQ(ok.vcpus, 2);

    EXPECT_THROW(ContainerOpts::builder().name("").build(),
                 std::invalid_argument);
    EXPECT_THROW(ContainerOpts::builder()
                     .name("a")
                     .vcpus(0)
                     .memBytes(1)
                     .build(),
                 std::invalid_argument);
    EXPECT_THROW(ContainerOpts::builder()
                     .name("a")
                     .vcpus(1)
                     .memBytes(0)
                     .build(),
                 std::invalid_argument);
}

TEST(Registry, CreateContainerRejectsNonPositiveVcpus)
{
    auto rt = buildRuntime("docker");
    ASSERT_TRUE(rt);
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    copts.vcpus = 0;
    EXPECT_THROW(rt->createContainer(copts), std::invalid_argument);
    copts.vcpus = -3;
    EXPECT_THROW(rt->createContainer(copts), std::invalid_argument);
}

TEST(Registry, DeprecatedShimStillWorks)
{
    // The shim flattens every failure to nullptr…
    EXPECT_EQ(makeRuntime("no-such-runtime"), nullptr);
    EXPECT_EQ(makeRuntime("clear-container",
                          hw::MachineSpec::ec2C4_2xlarge()),
              nullptr);
    // …and still builds what buildRuntime would.
    auto rt = makeRuntime("docker");
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->name(), "docker");
}

TEST(Registry, FaultPlanIsInstalledOnMachineAndFabric)
{
    RuntimeConfig cfg;
    cfg.faults = fault::FaultPlan::uniform(0.01, 3);
    auto rt = makeRuntime("docker", cfg);
    ASSERT_NE(rt, nullptr);
    EXPECT_TRUE(rt->machine().faults().enabled());
    EXPECT_EQ(rt->fabric().faults(), &rt->machine().faults());

    // Default config: inert injector, but still attached.
    auto calm = makeRuntime("docker");
    ASSERT_NE(calm, nullptr);
    EXPECT_FALSE(calm->machine().faults().enabled());
    EXPECT_EQ(calm->fabric().faults(), &calm->machine().faults());
}

TEST(Registry, SeedReachesTheMachine)
{
    RuntimeConfig a, b;
    a.seed = 7;
    b.seed = 7;
    auto ra = makeRuntime("docker", a);
    auto rb = makeRuntime("docker", b);
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    // Same seed => identical RNG streams.
    EXPECT_EQ(ra->machine().rng().next(), rb->machine().rng().next());
}

TEST(Registry, RegistrarAddsCustomRuntime)
{
    static int builds = 0;
    runtimes::RuntimeRegistrar reg(
        "test-custom", [](const RuntimeConfig &cfg) {
            ++builds;
            runtimes::DockerRuntime::Options o;
            o.spec = cfg.spec;
            o.seed = cfg.seed;
            return std::make_unique<runtimes::DockerRuntime>(o);
        });
    auto rt = makeRuntime("test-custom");
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(builds, 1);
    auto names = runtimes::runtimeNames();
    EXPECT_NE(
        std::find(names.begin(), names.end(), "test-custom"),
        names.end());
}

TEST(Registry, BootFaultsGateContainerCreation)
{
    // OomKill at rate 1: every boot is refused, and the runtime's
    // own bootContainer never runs.
    RuntimeConfig cfg;
    cfg.faults.at(fault::FaultKind::OomKill).rate = 1.0;
    auto rt = makeRuntime("docker", cfg);
    ASSERT_NE(rt, nullptr);
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    EXPECT_EQ(rt->createContainer(copts), nullptr);
    EXPECT_EQ(
        rt->machine().faults().injected(fault::FaultKind::OomKill),
        1u);
}

TEST(Registry, SlowBootHoldsTheContainersStack)
{
    RuntimeConfig cfg;
    cfg.faults.at(fault::FaultKind::SlowBoot).rate = 1.0;
    cfg.faults.at(fault::FaultKind::SlowBoot).param =
        80 * sim::kTicksPerMs;
    auto rt = makeRuntime("docker", cfg);
    ASSERT_NE(rt, nullptr);
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    runtimes::RtContainer *c = rt->createContainer(copts);
    ASSERT_NE(c, nullptr);
    ASSERT_NE(c->netStack(), nullptr);
    EXPECT_TRUE(rt->fabric().stackHeld(c->netStack()));
    // The hold expires once the simulated clock passes the deadline.
    rt->machine().events().runUntil(100 * sim::kTicksPerMs);
    EXPECT_FALSE(rt->fabric().stackHeld(c->netStack()));
}

} // namespace
} // namespace xc::test
