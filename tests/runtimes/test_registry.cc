#include <gtest/gtest.h>

#include <algorithm>

#include "apps/images.h"
#include "runtimes/clear_container.h"
#include "runtimes/docker.h"
#include "runtimes/runtime.h"

namespace xc::test {
namespace {

using runtimes::makeRuntime;
using runtimes::RuntimeConfig;

TEST(Registry, ListsEveryBuiltinRuntime)
{
    auto names = runtimes::runtimeNames();
    for (const char *expected :
         {"docker", "docker-unpatched", "xen-container",
          "xen-container-unpatched", "x-container",
          "x-container-unpatched", "gvisor", "gvisor-unpatched",
          "clear-container", "clear-container-unpatched", "unikernel",
          "graphene"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, BuildsRuntimesByName)
{
    for (const char *name :
         {"docker", "xen-container", "x-container", "gvisor",
          "unikernel", "graphene"}) {
        auto rt = makeRuntime(name);
        ASSERT_NE(rt, nullptr) << name;
        EXPECT_FALSE(rt->name().empty());
    }
}

TEST(Registry, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeRuntime("no-such-runtime"), nullptr);
    EXPECT_EQ(makeRuntime(""), nullptr);
}

TEST(Registry, ClearContainerRespectsMachineAvailability)
{
    // EC2 c4.2xlarge: nested cloud without nested HW virt.
    EXPECT_EQ(makeRuntime("clear-container",
                          hw::MachineSpec::ec2C4_2xlarge()),
              nullptr);
    // GCE exposes nested VMX; the local machine is not nested.
    EXPECT_NE(
        makeRuntime("clear-container", hw::MachineSpec::gceCustom4()),
        nullptr);
    EXPECT_NE(makeRuntime("clear-container",
                          hw::MachineSpec::xeonE52690Local()),
              nullptr);
}

TEST(Registry, FaultPlanIsInstalledOnMachineAndFabric)
{
    RuntimeConfig cfg;
    cfg.faults = fault::FaultPlan::uniform(0.01, 3);
    auto rt = makeRuntime("docker", cfg);
    ASSERT_NE(rt, nullptr);
    EXPECT_TRUE(rt->machine().faults().enabled());
    EXPECT_EQ(rt->fabric().faults(), &rt->machine().faults());

    // Default config: inert injector, but still attached.
    auto calm = makeRuntime("docker");
    ASSERT_NE(calm, nullptr);
    EXPECT_FALSE(calm->machine().faults().enabled());
    EXPECT_EQ(calm->fabric().faults(), &calm->machine().faults());
}

TEST(Registry, SeedReachesTheMachine)
{
    RuntimeConfig a, b;
    a.seed = 7;
    b.seed = 7;
    auto ra = makeRuntime("docker", a);
    auto rb = makeRuntime("docker", b);
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    // Same seed => identical RNG streams.
    EXPECT_EQ(ra->machine().rng().next(), rb->machine().rng().next());
}

TEST(Registry, RegistrarAddsCustomRuntime)
{
    static int builds = 0;
    runtimes::RuntimeRegistrar reg(
        "test-custom", [](const RuntimeConfig &cfg) {
            ++builds;
            runtimes::DockerRuntime::Options o;
            o.spec = cfg.spec;
            o.seed = cfg.seed;
            return std::make_unique<runtimes::DockerRuntime>(o);
        });
    auto rt = makeRuntime("test-custom");
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(builds, 1);
    auto names = runtimes::runtimeNames();
    EXPECT_NE(
        std::find(names.begin(), names.end(), "test-custom"),
        names.end());
}

TEST(Registry, BootFaultsGateContainerCreation)
{
    // OomKill at rate 1: every boot is refused, and the runtime's
    // own bootContainer never runs.
    RuntimeConfig cfg;
    cfg.faults.at(fault::FaultKind::OomKill).rate = 1.0;
    auto rt = makeRuntime("docker", cfg);
    ASSERT_NE(rt, nullptr);
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    EXPECT_EQ(rt->createContainer(copts), nullptr);
    EXPECT_EQ(
        rt->machine().faults().injected(fault::FaultKind::OomKill),
        1u);
}

TEST(Registry, SlowBootHoldsTheContainersStack)
{
    RuntimeConfig cfg;
    cfg.faults.at(fault::FaultKind::SlowBoot).rate = 1.0;
    cfg.faults.at(fault::FaultKind::SlowBoot).param =
        80 * sim::kTicksPerMs;
    auto rt = makeRuntime("docker", cfg);
    ASSERT_NE(rt, nullptr);
    runtimes::ContainerOpts copts;
    copts.image = apps::glibcImage("img");
    runtimes::RtContainer *c = rt->createContainer(copts);
    ASSERT_NE(c, nullptr);
    ASSERT_NE(c->netStack(), nullptr);
    EXPECT_TRUE(rt->fabric().stackHeld(c->netStack()));
    // The hold expires once the simulated clock passes the deadline.
    rt->machine().events().runUntil(100 * sim::kTicksPerMs);
    EXPECT_FALSE(rt->fabric().stackHeld(c->netStack()));
}

} // namespace
} // namespace xc::test
