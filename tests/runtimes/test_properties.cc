#include <gtest/gtest.h>

#include "apps/images.h"
#include "apps/nginx.h"
#include "load/driver.h"
#include "load/unixbench.h"
#include "runtimes/docker.h"
#include "runtimes/gvisor.h"
#include "runtimes/x_container.h"
#include "runtimes/xen_container.h"

namespace xc::test {
namespace {

using namespace xc;

/** Full-stack NGINX run with a chosen seed; returns throughput. */
double
nginxRun(std::uint64_t seed)
{
    runtimes::DockerRuntime::Options opts;
    opts.seed = seed;
    runtimes::DockerRuntime rt(opts);
    runtimes::ContainerOpts copts;
    copts.name = "web";
    copts.image = apps::glibcImage("img");
    copts.vcpus = 2;
    auto *c = rt.createContainer(copts);
    apps::NginxApp::Config ncfg;
    ncfg.workers = 2;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*c);
    rt.exposePort(c, 9000, 80);
    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 9000}, 24,
        100 * sim::kTicksPerMs);
    load::ClosedLoopDriver driver(rt.fabric(), spec, seed);
    rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(10 * sim::kTicksPerMs + spec.warmup +
                                   spec.duration +
                                   40 * sim::kTicksPerMs);
    return driver.collect().throughput;
}

TEST(Property, FullStackRunsAreBitDeterministic)
{
    EXPECT_EQ(nginxRun(7), nginxRun(7));
    EXPECT_EQ(nginxRun(1234), nginxRun(1234));
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, ThroughputIsSeedRobust)
{
    // Different seeds perturb tie-breaking but must not change the
    // measured system: within a few percent of a reference seed.
    double reference = nginxRun(1);
    double other = nginxRun(GetParam());
    EXPECT_NEAR(other / reference, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(2u, 3u, 17u, 1000u));

struct SpecCase
{
    const char *label;
    hw::MachineSpec (*make)();
};

class CloudSweep : public ::testing::TestWithParam<SpecCase>
{
};

TEST_P(CloudSweep, SyscallOrderingInvariantHolds)
{
    // The Fig. 4 ordering must hold on every machine model:
    //   x-container > docker-unpatched > docker > xen > gvisor.
    hw::MachineSpec spec = GetParam().make();
    auto rate = [&](auto make_rt) {
        auto rt = make_rt();
        return load::runMicro(*rt, load::MicroKind::Syscall,
                              60 * sim::kTicksPerMs, 1)
            .opsPerSec;
    };

    double xc = rate([&] {
        runtimes::XContainerRuntime::Options o;
        o.spec = spec;
        return std::make_unique<runtimes::XContainerRuntime>(o);
    });
    double docker = rate([&] {
        runtimes::DockerRuntime::Options o;
        o.spec = spec;
        return std::make_unique<runtimes::DockerRuntime>(o);
    });
    double docker_unp = rate([&] {
        runtimes::DockerRuntime::Options o;
        o.spec = spec;
        o.meltdownPatched = false;
        return std::make_unique<runtimes::DockerRuntime>(o);
    });
    double xen = rate([&] {
        runtimes::XenContainerRuntime::Options o;
        o.spec = spec;
        return std::make_unique<runtimes::XenContainerRuntime>(o);
    });
    double gvisor = rate([&] {
        runtimes::GvisorRuntime::Options o;
        o.spec = spec;
        return std::make_unique<runtimes::GvisorRuntime>(o);
    });

    EXPECT_GT(xc, 10 * docker);
    EXPECT_GT(docker_unp, 2 * docker);
    EXPECT_GT(docker, xen);
    EXPECT_GT(xen, gvisor);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, CloudSweep,
    ::testing::Values(
        SpecCase{"ec2", &hw::MachineSpec::ec2C4_2xlarge},
        SpecCase{"gce", &hw::MachineSpec::gceCustom4},
        SpecCase{"local", &hw::MachineSpec::xeonE52690Local}),
    [](const ::testing::TestParamInfo<SpecCase> &info) {
        return info.param.label;
    });

TEST(Property, ContainerDensityScalesInverselyWithMemory)
{
    // The Fig. 8 density mechanism: container count is bounded by
    // physical memory; halving the per-container reservation roughly
    // doubles how many fit, and exhaustion returns nullptr (never
    // crashes).
    auto count_at = [](std::uint64_t mem_bytes) {
        runtimes::XContainerRuntime rt({});
        runtimes::ContainerOpts copts;
        copts.image = apps::glibcImage("img");
        copts.vcpus = 1;
        copts.memBytes = mem_bytes;
        int n = 0;
        while (n < 64) {
            copts.name = "c" + std::to_string(n);
            if (!rt.createContainer(copts))
                break;
            ++n;
        }
        return n;
    };
    int big = count_at(4ull << 30);
    int small = count_at(2ull << 30);
    EXPECT_GT(big, 0);
    EXPECT_LT(big, 64); // exhaustion actually reached
    EXPECT_GT(small, big);
    EXPECT_NEAR(static_cast<double>(small) / big, 2.0, 0.75);
}

TEST(Property, AbomReductionMonotoneInCancellableShare)
{
    // More unpatchable calls per request -> strictly lower
    // conversion ratio.
    auto reduction = [](int odd_every) {
        runtimes::XContainerRuntime rt({});
        runtimes::ContainerOpts copts;
        copts.image = apps::mixedImage("m", {guestos::NR_ioctl});
        auto *c = rt.createContainer(copts);
        guestos::Process *p = c->createProcess("p", copts.image);
        guestos::Thread::Body body =
            [odd_every](guestos::Thread &t) -> sim::Task<void> {
            guestos::Sys sys(t);
            for (int i = 0; i < 300; ++i) {
                co_await sys.getpid();
                if (odd_every > 0 && i % odd_every == 0) {
                    co_await t.kernel().syscall(t, guestos::NR_ioctl,
                                                guestos::SysArgs{});
                }
            }
        };
        c->kernel().spawnThread(p, "loop", std::move(body));
        rt.machine().events().run();
        return rt.xkernel().abom().stats().reductionRatio();
    };

    double none = reduction(0);
    double sparse = reduction(20);
    double dense = reduction(3);
    EXPECT_GT(none, sparse);
    EXPECT_GT(sparse, dense);
    EXPECT_GT(none, 0.99);
}

} // namespace
} // namespace xc::test
