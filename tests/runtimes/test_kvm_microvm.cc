/**
 * @file
 * KVM microVM runtime family: registry presence and capability
 * advertisement, machine availability, vm-exit vs syscall mechanism
 * attribution under a real served workload, the virtio notification
 * economy, and snapshot roundtrips.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/images.h"
#include "apps/nginx.h"
#include "load/driver.h"
#include "runtimes/kvm_microvm.h"
#include "runtimes/runtime.h"
#include "sim/mech_counters.h"

namespace xc::test {
namespace {

using runtimes::buildRuntime;
using runtimes::ContainerOpts;
using runtimes::KvmMicrovmRuntime;
using runtimes::MakeStatus;
using runtimes::RtContainer;
using runtimes::Runtime;
using runtimes::RuntimeConfig;
using sim::Mech;
using sim::MechSnapshot;

/** Deploy NGINX on @p rt, drive it with wrk, return the counters. */
MechSnapshot
serveNginx(Runtime &rt)
{
    ContainerOpts copts;
    copts.name = "web";
    copts.image = apps::glibcImage("img");
    copts.vcpus = 1;
    copts.memBytes = 256ull << 20;
    RtContainer *c = rt.createContainer(copts);
    EXPECT_NE(c, nullptr);
    apps::NginxApp nginx({});
    nginx.deploy(*c);
    rt.exposePort(c, 8080, 80);
    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 8080}, 16,
        100 * sim::kTicksPerMs);
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(10 * sim::kTicksPerMs +
                                   spec.warmup + spec.duration +
                                   50 * sim::kTicksPerMs);
    EXPECT_GT(driver.collect().requests, 50u);
    return rt.machine().mech().snapshot();
}

TEST(KvmMicrovm, RegisteredUnderBothNames)
{
    auto names = runtimes::runtimeNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "kvm-microvm"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "kvm-microvm-unpatched"),
              names.end());
}

TEST(KvmMicrovm, AvailabilityFollowsNestedHwVirt)
{
    EXPECT_FALSE(KvmMicrovmRuntime::availableOn(
        hw::MachineSpec::ec2C4_2xlarge()));
    EXPECT_TRUE(KvmMicrovmRuntime::availableOn(
        hw::MachineSpec::gceCustom4()));
    EXPECT_TRUE(KvmMicrovmRuntime::availableOn(
        hw::MachineSpec::xeonE52690Local()));

    auto ec2 = buildRuntime("kvm-microvm",
                            hw::MachineSpec::ec2C4_2xlarge());
    EXPECT_FALSE(ec2);
    EXPECT_EQ(ec2.status, MakeStatus::Unavailable);
    EXPECT_NE(ec2.reason.find("nested"), std::string::npos);

    auto gce =
        buildRuntime("kvm-microvm", hw::MachineSpec::gceCustom4());
    ASSERT_TRUE(gce);
    EXPECT_EQ(gce->name(), "kvm-microvm");
}

TEST(KvmMicrovm, AdvertisesHwVirtAndVirtioCapabilities)
{
    using namespace runtimes;
    CapabilitySet caps = runtimeCapabilities("kvm-microvm");
    EXPECT_TRUE(caps & kCapHwVirtIsolation);
    EXPECT_TRUE(caps & kCapVirtioNet);
    EXPECT_TRUE(caps & kCapPerContainerKernel);
    EXPECT_TRUE(caps & kCapNestedVirtRequired);
    EXPECT_TRUE(caps & kCapMeltdownPatchControl);
    EXPECT_FALSE(caps & kCapAbom);
    // The pinned-unpatched entry gives up patch control.
    EXPECT_FALSE(runtimeCapabilities("kvm-microvm-unpatched") &
                 kCapMeltdownPatchControl);
    // The instance advertises the same family set.
    auto rt =
        buildRuntime("kvm-microvm", hw::MachineSpec::gceCustom4());
    ASSERT_TRUE(rt);
    EXPECT_TRUE(rt->capabilities() & kCapVirtioNet);
}

TEST(KvmMicrovm, RingSizeValidatedAtBuildTime)
{
    RuntimeConfig cfg;
    cfg.spec = hw::MachineSpec::gceCustom4();
    cfg.kvm = runtimes::KvmMicrovmConfig{};
    cfg.kvm->virtioRingSize = 3; // not a power of two
    auto bad = buildRuntime("kvm-microvm", cfg);
    EXPECT_FALSE(bad);
    EXPECT_EQ(bad.status, MakeStatus::InvalidConfig);
    EXPECT_NE(bad.reason.find("virtioRingSize"), std::string::npos);

    cfg.kvm->virtioRingSize = 1; // below the minimum
    EXPECT_EQ(buildRuntime("kvm-microvm", cfg).status,
              MakeStatus::InvalidConfig);

    cfg.kvm->virtioRingSize = 64;
    EXPECT_TRUE(buildRuntime("kvm-microvm", cfg));
}

TEST(KvmMicrovm, ServesNginxWithVmexitAttribution)
{
    auto rt =
        buildRuntime("kvm-microvm", hw::MachineSpec::gceCustom4());
    ASSERT_TRUE(rt);
    MechSnapshot d = serveNginx(*rt);
    // Hardware-virtualized I/O: exits, injections and doorbell kicks
    // all observed and charged.
    EXPECT_GT(d.count(Mech::KvmVmExit), 0u);
    EXPECT_GT(d.cyclesOf(Mech::KvmVmExit), 0u);
    EXPECT_GT(d.count(Mech::KvmIrqInject), 0u);
    EXPECT_GT(d.count(Mech::KvmVirtioKick), 0u);
    // Guest syscalls are native traps, not paravirtual hypercalls.
    EXPECT_GT(d.count(Mech::SyscallTrap), 0u);
    EXPECT_EQ(d.count(Mech::Hypercall), 0u);
    EXPECT_EQ(d.count(Mech::PtraceHop), 0u);
}

TEST(KvmMicrovm, ParavirtRuntimesNeverChargeKvmCounters)
{
    auto rt = buildRuntime("x-container",
                           hw::MachineSpec::gceCustom4());
    ASSERT_TRUE(rt);
    MechSnapshot d = serveNginx(*rt);
    EXPECT_EQ(d.count(Mech::KvmVmExit), 0u);
    EXPECT_EQ(d.count(Mech::KvmIrqInject), 0u);
    EXPECT_EQ(d.count(Mech::KvmVirtioKick), 0u);
}

TEST(KvmMicrovm, KickSuppressionElidesMostDoorbells)
{
    KvmMicrovmRuntime::Options opt;
    opt.spec = hw::MachineSpec::gceCustom4();
    KvmMicrovmRuntime rt(opt);
    ContainerOpts copts;
    copts.name = "web";
    copts.image = apps::glibcImage("img");
    copts.memBytes = 256ull << 20;
    auto *c = static_cast<runtimes::KvmMicrovmContainer *>(
        rt.createContainer(copts));
    ASSERT_NE(c, nullptr);
    apps::NginxApp nginx({});
    nginx.deploy(*c);
    rt.exposePort(c, 8080, 80);
    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 8080}, 16,
        100 * sim::kTicksPerMs);
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(200 * sim::kTicksPerMs +
                                   spec.warmup + spec.duration);

    const hw::VirtQueue &tx = c->port().txQueue();
    EXPECT_GT(tx.produced(), 0u);
    EXPECT_GT(tx.kicks(), 0u);
    // Under sustained load most packets ride an already-armed ring:
    // the doorbell fires only on empty->non-empty edges.
    EXPECT_GT(tx.suppressedKicks(), 0u);
    EXPECT_LT(tx.kicks(), tx.produced());
    EXPECT_EQ(tx.kicks() + tx.suppressedKicks(), tx.produced());
    // Only the TX ring rings a doorbell (PIO exit + kick-notify);
    // RX "kicks" are completion interrupts charged as irq
    // injections. The kvm_virtio_kick mech counter is therefore
    // exactly the TX kick count.
    EXPECT_EQ(rt.machine().mech().count(Mech::KvmVirtioKick),
              rt.exits().kicks());
    EXPECT_EQ(rt.exits().kicks(), tx.kicks());
}

TEST(KvmMicrovm, NestedCloudExitsCostMoreThanBareMetal)
{
    // Same workload, same seed: the GCE (nested) run must charge
    // more cycles per exit than the local bare-metal run.
    KvmMicrovmRuntime::Options nested;
    nested.spec = hw::MachineSpec::gceCustom4();
    KvmMicrovmRuntime rtNested(nested);
    MechSnapshot dn = serveNginx(rtNested);

    KvmMicrovmRuntime::Options bare;
    bare.spec = hw::MachineSpec::xeonE52690Local();
    KvmMicrovmRuntime rtBare(bare);
    MechSnapshot db = serveNginx(rtBare);

    ASSERT_GT(dn.count(Mech::KvmVmExit), 0u);
    ASSERT_GT(db.count(Mech::KvmVmExit), 0u);
    double costNested =
        static_cast<double>(dn.cyclesOf(Mech::KvmVmExit)) /
        static_cast<double>(dn.count(Mech::KvmVmExit));
    double costBare =
        static_cast<double>(db.cyclesOf(Mech::KvmVmExit)) /
        static_cast<double>(db.count(Mech::KvmVmExit));
    EXPECT_GT(costNested, costBare * 2);
}

std::string
saved(Runtime &rt)
{
    sim::snap::SnapWriter w;
    rt.saveState(w);
    return w.take();
}

TEST(KvmMicrovm, SnapshotRoundtripIsAFixedPoint)
{
    auto rt =
        buildRuntime("kvm-microvm", hw::MachineSpec::gceCustom4());
    ASSERT_TRUE(rt);
    ContainerOpts copts;
    copts.name = "kv0";
    copts.image = apps::glibcImage("img");
    copts.memBytes = 128ull << 20;
    auto *c = rt->createContainer(copts);
    ASSERT_NE(c, nullptr);
    rt->machine().events().runUntil(5 * sim::kTicksPerMs);

    std::string a = saved(*rt);
    sim::snap::SnapReader r(a);
    rt->loadState(r);
    EXPECT_EQ(saved(*rt), a);
}

} // namespace
} // namespace xc::test
