#include <gtest/gtest.h>

#include <coroutine>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/task.h"

namespace xc::sim {
namespace {

Task<int>
answer()
{
    co_return 42;
}

Task<int>
addOne(Task<int> inner)
{
    int v = co_await std::move(inner);
    co_return v + 1;
}

TEST(Task, RunsToCompletionWhenResumed)
{
    Task<int> t = answer();
    EXPECT_FALSE(t.done());
    t.handle().resume();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.result(), 42);
}

TEST(Task, NestedAwaitPropagatesValue)
{
    Task<int> t = addOne(answer());
    t.handle().resume();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.result(), 43);
}

Task<void>
throwing()
{
    throw std::runtime_error("inner failure");
    co_return;
}

Task<void>
catching(bool &caught)
{
    try {
        co_await throwing();
    } catch (const std::runtime_error &) {
        caught = true;
    }
}

TEST(Task, ExceptionPropagatesThroughAwait)
{
    bool caught = false;
    Task<void> t = catching(caught);
    t.handle().resume();
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(caught);
}

TEST(Task, ExceptionRethrownByResult)
{
    Task<void> t = throwing();
    t.handle().resume();
    EXPECT_TRUE(t.done());
    EXPECT_THROW(t.result(), std::runtime_error);
}

Task<void>
suspendOnce(std::coroutine_handle<> &resume_me, int &stage)
{
    stage = 1;
    co_await suspendWith([&](std::coroutine_handle<> h) {
        resume_me = h;
    });
    stage = 2;
}

TEST(Task, SuspendWithHandsOutResumableHandle)
{
    std::coroutine_handle<> h;
    int stage = 0;
    Task<void> t = suspendOnce(h, stage);
    t.handle().resume();
    EXPECT_EQ(stage, 1);
    EXPECT_FALSE(t.done());
    ASSERT_TRUE(h);
    h.resume();
    EXPECT_EQ(stage, 2);
    EXPECT_TRUE(t.done());
}

Task<int>
blockingLeaf(std::coroutine_handle<> &resume_me)
{
    co_await suspendWith([&](std::coroutine_handle<> h) {
        resume_me = h;
    });
    co_return 7;
}

Task<int>
wrapper(std::coroutine_handle<> &resume_me)
{
    int v = co_await blockingLeaf(resume_me);
    co_return v * 2;
}

TEST(Task, LeafSuspendResumesWholeStack)
{
    std::coroutine_handle<> h;
    Task<int> t = wrapper(h);
    t.handle().resume();
    EXPECT_FALSE(t.done());
    h.resume();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.result(), 14);
}

TEST(Task, IntegratesWithEventQueue)
{
    EventQueue q;
    std::vector<int> log;

    auto sleepUntil = [&](Tick when) {
        return suspendWith([&q, when](std::coroutine_handle<> h) {
            q.schedule(when, [h] { h.resume(); });
        });
    };

    auto body = [&]() -> Task<void> {
        log.push_back(1);
        co_await sleepUntil(100);
        log.push_back(2);
        co_await sleepUntil(200);
        log.push_back(3);
    };

    Task<void> t = body();
    t.handle().resume();
    EXPECT_EQ(log.size(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 200u);
    EXPECT_TRUE(t.done());
}

TEST(Task, MoveTransfersOwnership)
{
    Task<int> a = answer();
    Task<int> b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.handle().resume();
    EXPECT_EQ(b.result(), 42);
}

TEST(Task, DestroyingSuspendedTaskIsSafe)
{
    std::coroutine_handle<> h;
    int stage = 0;
    {
        Task<void> t = suspendOnce(h, stage);
        t.handle().resume();
        EXPECT_EQ(stage, 1);
    } // t destroyed while suspended: frame must be freed
    SUCCEED();
}

} // namespace
} // namespace xc::sim
