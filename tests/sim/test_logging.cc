#include <gtest/gtest.h>

#include "sim/logging.h"

namespace xc::sim {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { setThrowOnError(true); }
    void TearDown() override { setThrowOnError(false); }
};

TEST_F(LoggingTest, PanicThrowsSimErrorWhenConfigured)
{
    try {
        panic("boom %d", 42);
        FAIL() << "panic returned";
    } catch (const SimError &e) {
        EXPECT_TRUE(e.isPanic);
        EXPECT_EQ(e.message, "boom 42");
    }
}

TEST_F(LoggingTest, FatalThrowsSimErrorWhenConfigured)
{
    try {
        fatal("bad config: %s", "nope");
        FAIL() << "fatal returned";
    } catch (const SimError &e) {
        EXPECT_FALSE(e.isPanic);
        EXPECT_EQ(e.message, "bad config: nope");
    }
}

TEST_F(LoggingTest, AssertMacroPanicsOnFalse)
{
    EXPECT_THROW(XC_ASSERT(1 == 2), SimError);
}

TEST_F(LoggingTest, AssertMacroPassesOnTrue)
{
    EXPECT_NO_THROW(XC_ASSERT(2 == 2));
}

TEST_F(LoggingTest, LogLevelRoundTrips)
{
    LogLevel prev = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(prev);
}

} // namespace
} // namespace xc::sim
