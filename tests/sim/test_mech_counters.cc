#include <gtest/gtest.h>

#include <string>

#include "sim/mech_counters.h"

namespace xc::sim {
namespace {

TEST(MechCounters, AddAccumulatesCountsAndCycles)
{
    MechanismCounters mech;
    mech.add(Mech::SyscallTrap, 300);
    mech.add(Mech::SyscallTrap, 200);
    mech.add(Mech::TlbFlush, 500, 2);
    EXPECT_EQ(mech.count(Mech::SyscallTrap), 2u);
    EXPECT_EQ(mech.cyclesOf(Mech::SyscallTrap), 500u);
    EXPECT_EQ(mech.count(Mech::TlbFlush), 2u);
    EXPECT_EQ(mech.cyclesOf(Mech::TlbFlush), 500u);
    EXPECT_EQ(mech.count(Mech::Hypercall), 0u);
    EXPECT_EQ(mech.snapshot().totalCycles(), 1000u);

    mech.reset();
    EXPECT_EQ(mech.count(Mech::SyscallTrap), 0u);
    EXPECT_EQ(mech.snapshot().totalCycles(), 0u);
}

TEST(MechCounters, SnapshotDeltaSaturatesAtZero)
{
    MechanismCounters mech;
    mech.add(Mech::Hypercall, 100);
    MechSnapshot before = mech.snapshot();
    mech.add(Mech::Hypercall, 50);
    MechSnapshot after = mech.snapshot();

    MechSnapshot d = after - before;
    EXPECT_EQ(d.count(Mech::Hypercall), 1u);
    EXPECT_EQ(d.cyclesOf(Mech::Hypercall), 50u);

    MechSnapshot inverted = before - after;
    EXPECT_EQ(inverted.count(Mech::Hypercall), 0u);
    EXPECT_EQ(inverted.cyclesOf(Mech::Hypercall), 0u);
}

TEST(MechCounters, NamesAreStableIdentifiers)
{
    EXPECT_STREQ(mechName(Mech::SyscallTrap), "syscall_trap");
    EXPECT_STREQ(mechName(Mech::PatchedCall), "patched_call");
    EXPECT_STREQ(mechName(Mech::PtraceHop), "ptrace_hop");
    EXPECT_STREQ(mechName(Mech::RingCopy), "ring_copy");
    for (int i = 0; i < kMechCount; ++i) {
        Mech m = static_cast<Mech>(i);
        EXPECT_STRNE(mechName(m), "?");
        EXPECT_STRNE(mechDescription(m), "?");
    }
}

TEST(MechCounters, TableReportsCountsAndShares)
{
    MechanismCounters mech;
    mech.add(Mech::SyscallTrap, 750);
    mech.add(Mech::TlbFlush, 250);
    std::string table = mech.renderTable();
    EXPECT_NE(table.find("syscall_trap"), std::string::npos);
    EXPECT_NE(table.find("750"), std::string::npos);
    EXPECT_NE(table.find("75.0%"), std::string::npos);
    EXPECT_NE(table.find("25.0%"), std::string::npos);
}

TEST(MechCounters, JsonHasStableKeysAndTotal)
{
    MechanismCounters mech;
    mech.add(Mech::VmExit, 42, 3);
    std::string json = mech.renderJson();
    EXPECT_NE(
        json.find("\"vmexit\":{\"count\":3,\"cycles\":42}"),
        std::string::npos);
    EXPECT_NE(json.find("\"total_cycles\":42"), std::string::npos);
    // Every mechanism appears, even at zero, so consumers can rely
    // on the schema.
    for (int i = 0; i < kMechCount; ++i) {
        EXPECT_NE(json.find(std::string("\"") +
                            mechName(static_cast<Mech>(i)) + "\""),
                  std::string::npos);
    }
    EXPECT_EQ(mech.renderJson(), renderMechJson(mech.snapshot()));
}

} // namespace
} // namespace xc::sim
