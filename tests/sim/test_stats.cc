#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.h"
#include "sim/stats.h"

namespace xc::sim {
namespace {

TEST(Stats, CounterIncrements)
{
    StatRegistry reg;
    Counter c(reg, "a.count", "test counter");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GaugeSetsLatest)
{
    StatRegistry reg;
    Gauge g(reg, "a.gauge", "test gauge");
    g.set(3.5);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Stats, RegistryFindsByName)
{
    StatRegistry reg;
    Counter c(reg, "x.y", "c");
    EXPECT_EQ(reg.find("x.y"), &c);
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(Stats, DuplicateNamePanics)
{
    setThrowOnError(true);
    StatRegistry reg;
    Counter a(reg, "dup", "a");
    EXPECT_THROW({ Counter b(reg, "dup", "b"); }, SimError);
    setThrowOnError(false);
}

TEST(Stats, DumpContainsAllStatsSorted)
{
    StatRegistry reg;
    Counter b(reg, "b.stat", "");
    Counter a(reg, "a.stat", "");
    a += 1;
    b += 2;
    std::string dump = reg.dump();
    auto pos_a = dump.find("a.stat 1");
    auto pos_b = dump.find("b.stat 2");
    ASSERT_NE(pos_a, std::string::npos);
    ASSERT_NE(pos_b, std::string::npos);
    EXPECT_LT(pos_a, pos_b);
}

TEST(Stats, ResetAllClearsEverything)
{
    StatRegistry reg;
    Counter c(reg, "c", "");
    Gauge g(reg, "g", "");
    c += 7;
    g.set(9);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Stats, DistributionMoments)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(Stats, DistributionPercentiles)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    // Extremes are tracked exactly; interior percentiles come from
    // the log-bucket histogram, accurate to one sub-bucket (<= 1/64
    // relative).
    EXPECT_NEAR(d.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(d.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(d.percentile(50), 50.5, 50.5 / 64.0);
    EXPECT_NEAR(d.percentile(99), 99.0, 99.0 / 64.0);
}

TEST(Stats, DistributionDuplicateValues)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    for (int i = 0; i < 100; ++i)
        d.sample(7.25);
    // min == max clamps every percentile to the exact value.
    EXPECT_DOUBLE_EQ(d.percentile(0), 7.25);
    EXPECT_DOUBLE_EQ(d.percentile(50), 7.25);
    EXPECT_DOUBLE_EQ(d.percentile(99), 7.25);
    EXPECT_DOUBLE_EQ(d.percentile(100), 7.25);
    EXPECT_DOUBLE_EQ(d.mean(), 7.25);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, DistributionHistogramErrorBound)
{
    // Deterministic pseudo-random samples over six decades; every
    // percentile estimate must land within one sub-bucket (<= 1/64
    // relative) of the adjacent exact order statistics.
    StatRegistry reg;
    Distribution d(reg, "d", "");
    std::vector<double> vals;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        double u = static_cast<double>(x >> 11) /
                   static_cast<double>(1ull << 53);
        double v = 1e-3 * std::pow(10.0, 6.0 * u);
        vals.push_back(v);
        d.sample(v);
    }
    std::sort(vals.begin(), vals.end());
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        double rank = p / 100.0 *
                      static_cast<double>(vals.size() - 1);
        double lo = vals[static_cast<std::size_t>(std::floor(rank))];
        double hi = vals[static_cast<std::size_t>(std::ceil(rank))];
        double est = d.percentile(p);
        EXPECT_GE(est, lo * (1.0 - 1.0 / 64.0) - 1e-12) << "p=" << p;
        EXPECT_LE(est, hi * (1.0 + 1.0 / 64.0) + 1e-12) << "p=" << p;
    }
}

TEST(Stats, DistributionMergeAssociative)
{
    StatRegistry reg;
    Distribution a(reg, "a", ""), b(reg, "b", ""), c(reg, "c", "");
    Distribution ab_c(reg, "ab_c", ""), bc_a(reg, "bc_a", "");
    Distribution all(reg, "all", "");
    for (int i = 1; i <= 30; ++i) {
        a.sample(i);
        all.sample(i);
    }
    for (int i = 100; i <= 160; i += 2) {
        b.sample(i);
        all.sample(i);
    }
    for (double v : {0.5, 0.25, 8.75}) {
        c.sample(v);
        all.sample(v);
    }
    ab_c.merge(a);
    ab_c.merge(b);
    ab_c.merge(c);
    bc_a.merge(b);
    bc_a.merge(c);
    bc_a.merge(a);
    EXPECT_EQ(ab_c.count(), all.count());
    EXPECT_EQ(bc_a.count(), all.count());
    EXPECT_DOUBLE_EQ(ab_c.min(), all.min());
    EXPECT_DOUBLE_EQ(ab_c.max(), all.max());
    EXPECT_NEAR(ab_c.mean(), bc_a.mean(), 1e-9);
    EXPECT_NEAR(ab_c.mean(), all.mean(), 1e-9);
    // Bucket counts are integers, so percentiles are exactly
    // order-independent and equal to the all-at-once histogram.
    for (double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(ab_c.percentile(p), bc_a.percentile(p))
            << "p=" << p;
        EXPECT_DOUBLE_EQ(ab_c.percentile(p), all.percentile(p))
            << "p=" << p;
    }
}

TEST(Stats, DistributionMergeEmptyIsNoop)
{
    StatRegistry reg;
    Distribution d(reg, "d", ""), empty(reg, "e", "");
    d.sample(3.0);
    d.sample(9.0);
    d.merge(empty);
    EXPECT_EQ(d.count(), 2u);
    EXPECT_DOUBLE_EQ(d.min(), 3.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_DOUBLE_EQ(d.mean(), 6.0);
    // Merging into an empty distribution copies the other side.
    empty.merge(d);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.min(), 3.0);
    EXPECT_DOUBLE_EQ(empty.max(), 9.0);
}

TEST(Stats, DistributionResetSemantics)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    d.sample(5.0);
    d.sample(10.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
    // The distribution is fully reusable after reset.
    d.sample(3.0);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), 3.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 3.0);
}

TEST(Stats, DistributionNonPositiveSamples)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    d.sample(-1.0);
    d.sample(0.0);
    d.sample(5.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
    for (double p : {0.0, 50.0, 100.0}) {
        EXPECT_GE(d.percentile(p), d.min());
        EXPECT_LE(d.percentile(p), d.max());
    }
}

TEST(Stats, DistributionSingleSample)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    d.sample(42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 42.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, DistributionEmptyIsSafe)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

TEST(Stats, DistributionRenderHasPercentiles)
{
    StatRegistry reg;
    Distribution d(reg, "lat", "");
    d.sample(1.0);
    d.sample(2.0);
    std::string r = d.render();
    EXPECT_NE(r.find("lat.p50"), std::string::npos);
    EXPECT_NE(r.find("lat.p99"), std::string::npos);
    EXPECT_NE(r.find("lat.count 2"), std::string::npos);
}

TEST(Stats, RemoveAllowsReregistration)
{
    StatRegistry reg;
    {
        Counter c(reg, "temp", "");
        reg.remove(&c);
    }
    Counter c2(reg, "temp", "");
    EXPECT_EQ(reg.find("temp"), &c2);
}

} // namespace
} // namespace xc::sim
