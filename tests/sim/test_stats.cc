#include <gtest/gtest.h>

#include "sim/logging.h"
#include "sim/stats.h"

namespace xc::sim {
namespace {

TEST(Stats, CounterIncrements)
{
    StatRegistry reg;
    Counter c(reg, "a.count", "test counter");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GaugeSetsLatest)
{
    StatRegistry reg;
    Gauge g(reg, "a.gauge", "test gauge");
    g.set(3.5);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Stats, RegistryFindsByName)
{
    StatRegistry reg;
    Counter c(reg, "x.y", "c");
    EXPECT_EQ(reg.find("x.y"), &c);
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(Stats, DuplicateNamePanics)
{
    setThrowOnError(true);
    StatRegistry reg;
    Counter a(reg, "dup", "a");
    EXPECT_THROW({ Counter b(reg, "dup", "b"); }, SimError);
    setThrowOnError(false);
}

TEST(Stats, DumpContainsAllStatsSorted)
{
    StatRegistry reg;
    Counter b(reg, "b.stat", "");
    Counter a(reg, "a.stat", "");
    a += 1;
    b += 2;
    std::string dump = reg.dump();
    auto pos_a = dump.find("a.stat 1");
    auto pos_b = dump.find("b.stat 2");
    ASSERT_NE(pos_a, std::string::npos);
    ASSERT_NE(pos_b, std::string::npos);
    EXPECT_LT(pos_a, pos_b);
}

TEST(Stats, ResetAllClearsEverything)
{
    StatRegistry reg;
    Counter c(reg, "c", "");
    Gauge g(reg, "g", "");
    c += 7;
    g.set(9);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Stats, DistributionMoments)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(Stats, DistributionPercentiles)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    EXPECT_NEAR(d.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(d.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(d.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(d.percentile(99), 99.01, 0.1);
}

TEST(Stats, DistributionSingleSample)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    d.sample(42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 42.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, DistributionEmptyIsSafe)
{
    StatRegistry reg;
    Distribution d(reg, "d", "");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

TEST(Stats, DistributionRenderHasPercentiles)
{
    StatRegistry reg;
    Distribution d(reg, "lat", "");
    d.sample(1.0);
    d.sample(2.0);
    std::string r = d.render();
    EXPECT_NE(r.find("lat.p50"), std::string::npos);
    EXPECT_NE(r.find("lat.p99"), std::string::npos);
    EXPECT_NE(r.find("lat.count 2"), std::string::npos);
}

TEST(Stats, RemoveAllowsReregistration)
{
    StatRegistry reg;
    {
        Counter c(reg, "temp", "");
        reg.remove(&c);
    }
    Counter c2(reg, "temp", "");
    EXPECT_EQ(reg.find("temp"), &c2);
}

} // namespace
} // namespace xc::sim
