#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "load/unixbench.h"
#include "runtimes/x_container.h"
#include "sim/event_queue.h"
#include "sim/mech_counters.h"
#include "sim/metrics.h"
#include "sim/profile.h"
#include "sim/request_ctx.h"
#include "sim/trace.h"

// ----- global allocation counter --------------------------------
//
// This test binary replaces the global allocation functions to count
// every heap allocation, proving the tracing/counter hot paths are
// allocation-free when disabled. Keep this TU in its own test binary
// so the override does not leak into unrelated tests.

namespace {
std::uint64_t g_allocs = 0;
} // namespace

void *
operator new(std::size_t n)
{
    ++g_allocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace xc::test {
namespace {

TEST(TraceOverhead, DisabledHotPathsAllocateNothing)
{
    sim::trace::enable(sim::trace::None);
    sim::trace::clearCapture();
    ASSERT_FALSE(sim::trace::capturing());
    sim::prof::clear();
    ASSERT_FALSE(sim::prof::enabled());
    sim::flight::clear();
    ASSERT_FALSE(sim::flight::armed());

    sim::EventQueue queue;
    sim::MechanismCounters mech;

    std::uint64_t before = g_allocs;
    for (int i = 0; i < 1000; ++i) {
        XC_TRACE(Syscall, queue.now(), "hot", "i=%d", i);
        XC_TRACE_INSTANT(Sched, queue.now(), "hot", 0, "tick");
        {
            XC_TRACE_SPAN(Syscall, queue, "hot", 0, "span");
        }
        // mech.add is also the disabled profiler's chokepoint.
        mech.add(sim::Mech::SyscallTrap, 100);
        mech.add(sim::Mech::RingCopy, 7, 2);
        {
            XC_PROF_SCOPE("guestos/syscall");
            XC_PROF_CYCLES(100);
            XC_PROF_LEAF("xen/ring_hop", 50);
        }
        // id 0 is "not sampled": one branch, no record lookup.
        sim::flight::mark(0, "guestos/sock_read", queue.now());
    }
    std::uint64_t after = g_allocs;

    EXPECT_EQ(after - before, 0u);
    EXPECT_EQ(mech.count(sim::Mech::SyscallTrap), 1000u);
}

TEST(TraceOverhead, DisabledMetricsAllocateNothing)
{
    // Same discipline for the labeled-metrics registry: while
    // disabled, resolving an instrument returns an inert handle
    // without interning anything, updates are one null check, and
    // registering a collector is a plain early return.
    sim::metrics::clear();
    ASSERT_FALSE(sim::metrics::enabled());

    std::uint64_t before = g_allocs;
    for (int i = 0; i < 1000; ++i) {
        sim::metrics::Counter c = sim::metrics::counter(
            "xc_requests_total", "client request outcomes",
            {"runtime", "app", "status"}, {"docker", "nginx", "ok"});
        c.add(1);
        sim::metrics::Gauge g = sim::metrics::gauge(
            "xc_runq_depth", "runnable threads", {"runtime"},
            {"docker"});
        g.set(3.0);
        sim::metrics::Histogram h = sim::metrics::histogram(
            "xc_request_latency_us", "request latency", {}, {});
        h.observe(123.0);
    }
    std::uint64_t after = g_allocs;

    EXPECT_EQ(after - before, 0u);
    EXPECT_EQ(sim::metrics::familyCount(), 0u);
}

TEST(TraceOverhead, CaptureDoesNotPerturbTheSimulation)
{
    // The tracer observes; it must not charge cycles or change
    // scheduling. Same run with capture on and off: identical ops
    // and identical mechanism counters.
    auto run = [](bool capture) {
        if (capture)
            sim::trace::startCapture();
        runtimes::XContainerRuntime rt({});
        load::MicroResult r = load::runMicro(
            rt, load::MicroKind::Syscall, 50 * sim::kTicksPerMs, 1);
        if (capture) {
            sim::trace::stopCapture();
            sim::trace::clearCapture();
        }
        return r;
    };

    load::MicroResult off = run(false);
    load::MicroResult on = run(true);
    EXPECT_GT(off.ops, 0u);
    EXPECT_EQ(off.ops, on.ops);
    EXPECT_TRUE(off.mech == on.mech);
}

TEST(TraceOverhead, ProfilerDoesNotPerturbTheSimulation)
{
    // Same invariant for the cycle-attribution profiler: it records
    // where cycles went but never adds or moves any.
    auto run = [](bool profile) {
        if (profile) {
            sim::prof::enable();
            sim::prof::beginTree("perturb");
        }
        runtimes::XContainerRuntime rt({});
        load::MicroResult r = load::runMicro(
            rt, load::MicroKind::Syscall, 50 * sim::kTicksPerMs, 1);
        if (profile) {
            sim::prof::disable();
            sim::prof::clear();
        }
        return r;
    };

    load::MicroResult off = run(false);
    load::MicroResult on = run(true);
    EXPECT_GT(off.ops, 0u);
    EXPECT_EQ(off.ops, on.ops);
    EXPECT_TRUE(off.mech == on.mech);
}

} // namespace
} // namespace xc::test
