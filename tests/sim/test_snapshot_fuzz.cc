/**
 * @file
 * Negative and fuzz coverage for snapshot loading: truncated files,
 * flipped version/magic bytes, corrupted section lengths, and
 * seeded random byte flips must all surface as sim::snap::SnapError
 * — never undefined behavior, a crash, or a silently-wrong object.
 * CI runs this suite under ASan+UBSan, which is what turns "no UB"
 * from a hope into a checked property.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/snapshot.h"
#include "sim/sweep.h"

namespace xc::sim {
namespace {

using snap::SnapError;
using snap::SnapReader;
using snap::Snapshot;
using snap::SnapWriter;

Snapshot
sampleSnapshot()
{
    Snapshot s;
    SnapWriter a;
    a.u64(0x1122334455667788ull);
    a.str("payload-one");
    s.set("alpha", a.take());
    SnapWriter b;
    for (int i = 0; i < 32; ++i)
        b.u32(static_cast<std::uint32_t>(i * 2654435761u));
    s.set("beta", b.take());
    return s;
}

/** decode() must throw SnapError (and only SnapError) on @p bytes. */
void
expectRejected(const std::string &bytes)
{
    EXPECT_THROW(
        { Snapshot copy = Snapshot::decode(bytes); (void)copy; },
        SnapError);
}

TEST(SnapshotFuzz, EveryTruncationPrefixRejected)
{
    std::string bytes = sampleSnapshot().encode();
    // Every proper prefix must be rejected: either the trailer hash
    // is missing/mismatched or a length check fires first.
    for (std::size_t len = 0; len < bytes.size(); ++len)
        expectRejected(bytes.substr(0, len));
}

TEST(SnapshotFuzz, VersionFlipRejected)
{
    std::string bytes = sampleSnapshot().encode();
    // The u32 version sits right after the 8-byte magic. A version
    // bump alone also invalidates the trailer hash, but the error
    // must name the version once the hash is recomputed to match —
    // so patch both: bump the version, then re-encode the trailer.
    // Simpler and equally strong: flip the version byte and accept
    // either failure mode, then check a *consistently* re-hashed
    // future version is rejected with the version message.
    std::string flipped = bytes;
    flipped[8] = char(2);
    expectRejected(flipped);

    // Rebuild a structurally-valid "version 2" file: body with the
    // patched version, trailer recomputed over it.
    std::string body = bytes.substr(0, bytes.size() - 8);
    body[8] = char(2);
    std::uint64_t h = snap::fnv1a64(body.data(), body.size());
    std::string v2 = body;
    for (int i = 0; i < 8; ++i)
        v2 += static_cast<char>((h >> (8 * i)) & 0xff);
    try {
        Snapshot::decode(v2);
        FAIL() << "version 2 file decoded";
    } catch (const SnapError &e) {
        EXPECT_NE(std::strstr(e.what(), "version"), nullptr)
            << e.what();
    }
}

TEST(SnapshotFuzz, MagicCorruptionRejected)
{
    std::string bytes = sampleSnapshot().encode();
    for (int i = 0; i < 8; ++i) {
        std::string bad = bytes;
        bad[i] ^= 0x40;
        expectRejected(bad);
    }
}

TEST(SnapshotFuzz, SectionLengthCorruptionRejected)
{
    Snapshot s = sampleSnapshot();
    std::string bytes = s.encode();
    // The first section's name starts after magic(8)+version(4)+
    // count(4) = byte 16: nameLen u32, name, payloadLen u64. Patch
    // the payload length to a huge value and to an off-by-one, with
    // the trailer recomputed so only the length check can fire.
    std::size_t nameLen = 5; // "alpha"
    std::size_t lenOff = 16 + 4 + nameLen;
    for (std::uint64_t evil :
         {~std::uint64_t(0), std::uint64_t(1) << 40,
          std::uint64_t(200), std::uint64_t(0)}) {
        std::string body = bytes.substr(0, bytes.size() - 8);
        for (int i = 0; i < 8; ++i)
            body[lenOff + static_cast<std::size_t>(i)] =
                static_cast<char>((evil >> (8 * i)) & 0xff);
        std::uint64_t h = snap::fnv1a64(body.data(), body.size());
        std::string bad = body;
        for (int i = 0; i < 8; ++i)
            bad += static_cast<char>((h >> (8 * i)) & 0xff);
        expectRejected(bad);
    }
}

TEST(SnapshotFuzz, SeededByteFlipsNeverUb)
{
    std::string bytes = sampleSnapshot().encode();
    Rng rng(20260809);
    int decodedOk = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::string bad = bytes;
        int flips = 1 + static_cast<int>(rng.below(4));
        for (int f = 0; f < flips; ++f) {
            std::size_t pos = rng.below(bad.size());
            bad[pos] ^= static_cast<char>(1 + rng.below(255));
        }
        try {
            Snapshot copy = Snapshot::decode(bad);
            // A flip that cancels itself out (xor 0 can't happen,
            // but two flips can collide) may legitimately decode.
            ++decodedOk;
            (void)copy;
        } catch (const SnapError &) {
            // expected
        }
        // Any other exception or a sanitizer report fails the test.
    }
    // Nearly every corruption must be caught by the trailer hash.
    EXPECT_LE(decodedOk, 20);
}

TEST(SnapshotFuzz, RequireMissingSectionThrows)
{
    Snapshot s = sampleSnapshot();
    EXPECT_THROW(s.require("gamma"), SnapError);
}

TEST(SnapshotFuzz, ReaderOverrunThrows)
{
    SnapWriter w;
    w.u32(7);
    std::string bytes = w.take();
    SnapReader r(bytes);
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_THROW(r.u64(), SnapError);
    SnapReader r2(bytes);
    EXPECT_THROW(r2.u64(), SnapError);
    SnapReader r3(bytes);
    EXPECT_THROW(r3.str(), SnapError);
}

TEST(SnapshotFuzz, ExpectEndThrowsOnTrailingBytes)
{
    SnapWriter w;
    w.u32(7);
    w.u8(1);
    std::string bytes = w.take();
    SnapReader r(bytes);
    r.u32();
    EXPECT_THROW(r.expectEnd("trailing"), SnapError);
}

TEST(SnapshotFuzz, CorruptQueueSectionRejectedStructurally)
{
    // Queue loadState validates indices even when the container
    // hashes pass (a hostile or buggy producer): hand it a payload
    // whose free-list head points far out of range.
    EventQueue q;
    q.schedule(10, [] {});
    SnapWriter w;
    q.saveState(w);
    std::string good = w.take();

    // Layout: now u64, nextSeq u64, l0 u64, l1 u64, l2 u64,
    // used u32, freeHead u32, ...
    std::string bad = good;
    std::size_t freeHeadOff = 8 * 5 + 4;
    std::uint32_t evil = 0x7fffffff;
    std::memcpy(&bad[freeHeadOff], &evil, sizeof evil);
    EventQueue fresh;
    SnapReader r(bad);
    EXPECT_THROW(fresh.loadState(r), SnapError);
}

TEST(SnapshotFuzz, CorruptDomainRunQueueRejectedStructurally)
{
    // Same structural validation, but on a queue that just finished
    // a lookahead-domain run (DESIGN.md §15): cross-domain injection
    // must leave the slab in a state whose corruption is still
    // caught, not one the validator no longer understands.
    EventQueue q0, q1;
    DomainSet ds(2);
    ds.attach(0, &q0);
    ds.attach(1, &q1);
    q0.post(1, [&ds, &q0] { ds.post(1, q0.now() + 40, [] {}); });
    ds.run(200, 40);
    q1.schedule(250, [] {});

    SnapWriter w;
    q1.saveState(w);
    std::string good = w.take();
    std::string bad = good;
    std::size_t freeHeadOff = 8 * 5 + 4;
    std::uint32_t evil = 0x7fffffff;
    std::memcpy(&bad[freeHeadOff], &evil, sizeof evil);
    EventQueue fresh;
    SnapReader r(bad);
    EXPECT_THROW(fresh.loadState(r), SnapError);
    // The untampered bytes still load and re-save as a fixed point.
    EventQueue ok;
    SnapReader r2(good);
    ok.loadState(r2);
    SnapWriter w2;
    ok.saveState(w2);
    EXPECT_EQ(w2.take(), good);
}

TEST(SnapshotFuzz, LoadFileMissingPathThrows)
{
    EXPECT_THROW(
        Snapshot::loadFile("/nonexistent/dir/snap.bin"), SnapError);
}

} // namespace
} // namespace xc::sim
