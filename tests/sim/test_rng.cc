#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sim/rng.h"

namespace xc::sim {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedResets)
{
    Rng a(7);
    auto first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ExpMeanMatchesRequestedMean)
{
    Rng r(19);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.expMean(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ZipfStaysInRange)
{
    Rng r(23);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(r.zipf(100, 0.99), 100u);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng r(29);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[r.zipf(50, 1.0)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], 20000 / 50); // far above uniform share
}

TEST(Rng, SplitMix64IsDeterministic)
{
    std::uint64_t s1 = 99, s2 = 99;
    EXPECT_EQ(splitMix64(s1), splitMix64(s2));
    EXPECT_EQ(s1, s2);
}

} // namespace
} // namespace xc::sim
