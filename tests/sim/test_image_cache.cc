/**
 * @file
 * Content-addressed intern store (DESIGN.md §17): first use
 * constructs, later uses share, distinct keys stay distinct, and the
 * key hash is a stable pure function.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/image_cache.h"

namespace xc::sim {
namespace {

TEST(ImageCache, FirstInternConstructsLaterInternsShare)
{
    ImageCache cache;
    int built = 0;
    auto make = [&] {
        ++built;
        return std::make_shared<std::string>("kernel-image");
    };
    std::uint64_t key = ImageCache::fnv1a("glibc/img");

    auto a = cache.intern<std::string>(key, make);
    auto b = cache.intern<std::string>(key, make);
    auto c = cache.intern<std::string>(key, make);
    EXPECT_EQ(built, 1);
    // Identity, not equality: all callers hold the same object.
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(b.get(), c.get());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ImageCache, DistinctKeysInternDistinctArtifacts)
{
    ImageCache cache;
    auto a = cache.intern<std::string>(
        ImageCache::fnv1a("image/alpine"),
        [] { return std::make_shared<std::string>("a"); });
    auto b = cache.intern<std::string>(
        ImageCache::fnv1a("image/ubuntu"),
        [] { return std::make_shared<std::string>("b"); });
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(ImageCache, HashIsStableAndOrderSensitive)
{
    // fnv1a is the canonical content key: equal input, equal key —
    // across calls, caches and processes (no address identity).
    EXPECT_EQ(ImageCache::fnv1a("abc"), ImageCache::fnv1a("abc"));
    EXPECT_NE(ImageCache::fnv1a("abc"), ImageCache::fnv1a("acb"));
    EXPECT_NE(ImageCache::fnv1a("ab"), ImageCache::fnv1a("abc"));

    std::uint64_t h = ImageCache::fnv1a("stub-library");
    EXPECT_EQ(ImageCache::combine(h, 42),
              ImageCache::combine(h, 42));
    EXPECT_NE(ImageCache::combine(h, 42),
              ImageCache::combine(h, 43));
    // Order-sensitive fold: (a then b) != (b then a).
    EXPECT_NE(ImageCache::combine(ImageCache::combine(h, 1), 2),
              ImageCache::combine(ImageCache::combine(h, 2), 1));
}

TEST(ImageCache, TypeTagKeepsTypesApart)
{
    // Two artifact types built from the same source string must fold
    // a type tag into the key — the store is type-erased and cannot
    // catch a collision itself.
    std::uint64_t imgKey = ImageCache::combine(
        ImageCache::fnv1a("type:image"), ImageCache::fnv1a("busybox"));
    std::uint64_t stubKey = ImageCache::combine(
        ImageCache::fnv1a("type:stubs"), ImageCache::fnv1a("busybox"));
    EXPECT_NE(imgKey, stubKey);

    ImageCache cache;
    auto img = cache.intern<std::string>(imgKey, [] {
        return std::make_shared<std::string>("image-bytes");
    });
    auto stubs = cache.intern<int>(stubKey,
                                   [] { return std::make_shared<int>(7); });
    EXPECT_EQ(*img, "image-bytes");
    EXPECT_EQ(*stubs, 7);
    EXPECT_EQ(cache.size(), 2u);
}

} // namespace
} // namespace xc::sim
