#include <gtest/gtest.h>

#include "sim/mech_counters.h"
#include "sim/profile.h"

namespace xc::sim {
namespace {

/** Every test leaves the global profiler disabled and empty. */
struct ProfGuard
{
    ProfGuard() { prof::clear(); }
    ~ProfGuard() { prof::clear(); }
};

TEST(Profile, DisabledEntryPointsAreNoops)
{
    ProfGuard guard;
    ASSERT_FALSE(prof::enabled());
    {
        XC_PROF_SCOPE("guestos/syscall");
        XC_PROF_CYCLES(100);
        XC_PROF_LEAF("xen/ring_hop", 50);
    }
    prof::beginTree("run");
    EXPECT_EQ(prof::treeCount(), 0u);
    EXPECT_EQ(prof::totalCycles("run"), 0u);
}

TEST(Profile, AttributesCyclesToNestedScopes)
{
    ProfGuard guard;
    prof::enable();
    prof::beginTree("run");
    {
        XC_PROF_SCOPE("guestos/syscall");
        XC_PROF_CYCLES(100);
        {
            XC_PROF_SCOPE("guestos/net_rx");
            XC_PROF_CYCLES(40);
        }
        XC_PROF_LEAF("xen/ring_hop", 10);
    }
    prof::disable();
    EXPECT_EQ(prof::treeCount(), 1u);
    EXPECT_EQ(prof::totalCycles("run"), 150u);
    // cyclesUnder is subtree-inclusive.
    EXPECT_EQ(prof::cyclesUnder("run", "guestos/syscall"), 150u);
    EXPECT_EQ(prof::cyclesUnder("run", "guestos/net_rx"), 40u);
    EXPECT_EQ(prof::cyclesUnder("run", "xen/ring_hop"), 10u);
    EXPECT_EQ(prof::cyclesUnder("run", "no/such_frame"), 0u);
}

TEST(Profile, MechChargesLandAsLeafFrames)
{
    ProfGuard guard;
    prof::enable();
    prof::beginTree("mech");
    MechanismCounters mech;
    {
        XC_PROF_SCOPE("guestos/syscall");
        mech.add(Mech::SyscallTrap, 1000);
        mech.add(Mech::RingCopy, 300, 2);
    }
    mech.add(Mech::Hypercall, 77); // outside any scope: root child
    prof::disable();
    EXPECT_EQ(prof::cyclesUnder("mech", "xen/syscall_trap"), 1000u);
    EXPECT_EQ(prof::cyclesUnder("mech", "guestos/ring_copy"), 300u);
    EXPECT_EQ(prof::cyclesUnder("mech", "xen/hypercall"), 77u);
    EXPECT_EQ(prof::totalCycles("mech"), 1377u);
    // The hook never changes counter semantics.
    EXPECT_EQ(mech.count(Mech::SyscallTrap), 1u);
    EXPECT_EQ(mech.count(Mech::RingCopy), 2u);
    EXPECT_EQ(mech.cyclesOf(Mech::RingCopy), 300u);
}

TEST(Profile, MechFrameNamesAreStable)
{
    EXPECT_STREQ(
        prof::mechFrameName(static_cast<int>(Mech::SyscallTrap)),
        "xen/syscall_trap");
    EXPECT_STREQ(
        prof::mechFrameName(static_cast<int>(Mech::PatchedCall)),
        "libos/patched_call");
    EXPECT_STREQ(
        prof::mechFrameName(static_cast<int>(Mech::PtraceHop)),
        "gvisor/ptrace_hop");
    EXPECT_STREQ(prof::mechFrameName(-1), "");
    EXPECT_STREQ(prof::mechFrameName(kMechCount), "");
}

TEST(Profile, BeginTreeReusesExistingLabel)
{
    ProfGuard guard;
    prof::enable();
    prof::beginTree("a");
    XC_PROF_LEAF("guestos/vfs", 10);
    prof::beginTree("b");
    XC_PROF_LEAF("guestos/vfs", 5);
    prof::beginTree("a"); // back to the first tree
    XC_PROF_LEAF("guestos/vfs", 20);
    prof::disable();
    EXPECT_EQ(prof::treeCount(), 2u);
    EXPECT_EQ(prof::totalCycles("a"), 30u);
    EXPECT_EQ(prof::totalCycles("b"), 5u);
}

TEST(Profile, ExportJsonIsDeterministicAndSortsChildren)
{
    ProfGuard guard;
    prof::enable();
    prof::beginTree("run");
    // Insert out of name order; export must sort by name.
    XC_PROF_LEAF("zeta/op", 1);
    XC_PROF_LEAF("alpha/op", 2);
    prof::disable();
    std::string a = prof::exportJson();
    std::string b = prof::exportJson();
    EXPECT_EQ(a, b);
    std::size_t alpha = a.find("\"name\":\"alpha/op\"");
    std::size_t zeta = a.find("\"name\":\"zeta/op\"");
    ASSERT_NE(alpha, std::string::npos);
    ASSERT_NE(zeta, std::string::npos);
    EXPECT_LT(alpha, zeta);
    EXPECT_NE(a.find("\"total_cycles\":3"), std::string::npos);
}

TEST(Profile, ExportCollapsedEmitsStackLines)
{
    ProfGuard guard;
    prof::enable();
    prof::beginTree("run");
    {
        XC_PROF_SCOPE("guestos/syscall");
        XC_PROF_CYCLES(100);
        XC_PROF_LEAF("xen/syscall_trap", 40);
    }
    prof::disable();
    std::string collapsed = prof::exportCollapsed();
    EXPECT_NE(collapsed.find("run;guestos/syscall 100\n"),
              std::string::npos);
    EXPECT_NE(
        collapsed.find("run;guestos/syscall;xen/syscall_trap 40\n"),
        std::string::npos);
}

TEST(Profile, DisableKeepsTreesForExport)
{
    ProfGuard guard;
    prof::enable();
    prof::beginTree("run");
    XC_PROF_LEAF("guestos/pipe", 9);
    prof::disable();
    EXPECT_FALSE(prof::enabled());
    EXPECT_EQ(prof::totalCycles("run"), 9u);
    prof::clear();
    EXPECT_EQ(prof::treeCount(), 0u);
}

} // namespace
} // namespace xc::sim
