#ifndef XC_TESTS_SIM_REFERENCE_EVENT_QUEUE_H
#define XC_TESTS_SIM_REFERENCE_EVENT_QUEUE_H

/**
 * @file
 * The pre-timing-wheel EventQueue, kept verbatim as a test oracle.
 *
 * This is the binary-heap + shared_ptr implementation the simulator
 * shipped with before the hot-path rewrite. Its firing order defines
 * the (when, seq) contract: earlier ticks first, insertion order
 * within a tick. test_wheel_differential drives it in lockstep with
 * the production wheel and asserts bit-identical behaviour. Do not
 * optimise or "fix" this file — it is the specification.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace xc::sim::testref {

/** Handle used to cancel a scheduled reference event. */
class ReferenceEventHandle
{
  public:
    ReferenceEventHandle() = default;

    bool pending() const { return alive && *alive; }

    void
    cancel()
    {
        if (alive && *alive) {
            *alive = false;
            if (live)
                --*live;
        }
    }

  private:
    friend class ReferenceEventQueue;
    ReferenceEventHandle(std::shared_ptr<bool> a,
                         std::shared_ptr<std::size_t> l)
        : alive(std::move(a)), live(std::move(l))
    {
    }

    std::shared_ptr<bool> alive;
    std::shared_ptr<std::size_t> live;
};

/** The original single-owner discrete-event queue. */
class ReferenceEventQueue
{
  public:
    ReferenceEventQueue() = default;
    ReferenceEventQueue(const ReferenceEventQueue &) = delete;
    ReferenceEventQueue &operator=(const ReferenceEventQueue &) = delete;

    Tick now() const { return now_; }

    ReferenceEventHandle
    schedule(Tick when, std::function<void()> fn)
    {
        XC_ASSERT(when >= now_);
        auto alive = std::make_shared<bool>(true);
        queue.push(Entry{when, nextSeq++, std::move(fn), alive});
        ++*live_;
        return ReferenceEventHandle(alive, live_);
    }

    ReferenceEventHandle
    scheduleAfter(Tick delay, std::function<void()> fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    std::size_t pendingEvents() const { return *live_; }

    void
    runUntil(Tick limit)
    {
        while (!queue.empty()) {
            if (!*queue.top().alive) {
                queue.pop();
                continue;
            }
            if (queue.top().when > limit)
                break;
            fireNext();
        }
        if (limit > now_)
            now_ = limit;
    }

    void
    run(std::uint64_t maxEvents = ~std::uint64_t(0))
    {
        std::uint64_t fired = 0;
        while (fired < maxEvents && fireNext())
            ++fired;
    }

    bool step() { return fireNext(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
        std::shared_ptr<bool> alive;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool
    fireNext()
    {
        while (!queue.empty()) {
            Entry e = queue.top();
            queue.pop();
            if (!*e.alive)
                continue;
            *e.alive = false;
            --*live_;
            XC_ASSERT(e.when >= now_);
            now_ = e.when;
            e.fn();
            return true;
        }
        return false;
    }

    Tick now_ = 0;
    std::uint64_t nextSeq = 0;
    std::shared_ptr<std::size_t> live_ = std::make_shared<std::size_t>(0);
    std::priority_queue<Entry, std::vector<Entry>, Later> queue;
};

} // namespace xc::sim::testref

#endif // XC_TESTS_SIM_REFERENCE_EVENT_QUEUE_H
