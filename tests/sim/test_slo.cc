#include <gtest/gtest.h>

#include <string>

#include "sim/metrics.h"
#include "sim/slo.h"

namespace xc::sim {
namespace {

namespace mx = metrics;

/** Evaluation quantum for every test: 10 simulated microseconds
 *  (ticks are picoseconds), so alert timestamps render as
 *  recognizable %.6f second values. */
constexpr Tick kQ = 10 * kTicksPerUs;

/** Bind a fresh MetricState to this thread so each test's SLO
 *  samples come from its own registry (cell isolation). */
struct BoundState
{
    BoundState()
    {
        prev = mx::detail::bindThreadState(&st);
        mx::enable();
    }
    ~BoundState()
    {
        mx::clear();
        mx::detail::bindThreadState(prev);
    }
    mx::detail::MetricState st;
    mx::detail::MetricState *prev = nullptr;
};

/** An error-rate spec over xc_requests_total with a 0.9 objective
 *  (10% error budget), fast window 2 quanta, slow window 4. */
slo::Spec
availSpec()
{
    slo::Spec s;
    s.name = "avail";
    s.kind = slo::Spec::Kind::ErrorRate;
    s.metric = "xc_requests_total";
    s.objective = 0.9;
    s.fastWindow = 2 * kQ;
    s.slowWindow = 4 * kQ;
    s.fastBurn = 2.0;
    s.slowBurn = 1.0;
    return s;
}

TEST(Slo, BurnRateFiresOnConjunctionAndClearsOnEitherWindow)
{
    BoundState bound;
    mx::Counter ok = mx::counter("xc_requests_total", "requests",
                                 {"status"}, {"ok"});
    mx::Counter err = mx::counter("xc_requests_total", "requests",
                                  {"status"}, {"error"});

    slo::Monitor mon(kQ);
    mon.addSpec(availSpec());
    ASSERT_EQ(mon.specCount(), 1u);

    // t=10: clean traffic — no burn.
    ok.add(100);
    mon.evaluate(1 * kQ);
    EXPECT_FALSE(mon.firing());

    // t=20: 50/100 requests fail this quantum. Fast window (back to
    // t=0, baseline t=10): bad 50/100 = 0.5 -> burn 5 >= 2. Slow
    // window agrees -> FIRE.
    ok.add(50);
    err.add(50);
    mon.evaluate(2 * kQ);
    EXPECT_TRUE(mon.firing());
    EXPECT_TRUE(mon.firing("avail"));
    EXPECT_FALSE(mon.firing("other"));

    // t=30: clean again, but the fast window [10,30] still holds
    // the bad quantum: bad 50/200 -> burn 2.5 >= 2. Still firing,
    // and no duplicate FIRE is logged.
    ok.add(100);
    mon.evaluate(3 * kQ);
    EXPECT_TRUE(mon.firing());
    ASSERT_EQ(mon.alerts().size(), 1u);

    // t=40: the fast window [20,40] is clean (burn 0 < 2) while the
    // slow window [0,40] still burns 50/300/0.1 = 1.67 >= 1. One
    // window below threshold is enough to clear.
    ok.add(100);
    mon.evaluate(4 * kQ);
    EXPECT_FALSE(mon.firing());

    ASSERT_EQ(mon.alerts().size(), 2u);
    const slo::Alert &fire = mon.alerts()[0];
    const slo::Alert &clear = mon.alerts()[1];
    EXPECT_EQ(fire.slo, "avail");
    EXPECT_TRUE(fire.firing);
    EXPECT_EQ(fire.at, 2 * kQ);
    EXPECT_DOUBLE_EQ(fire.fast, 5.0);
    EXPECT_DOUBLE_EQ(fire.slow, 5.0);
    EXPECT_EQ(clear.slo, "avail");
    EXPECT_FALSE(clear.firing);
    EXPECT_EQ(clear.at, 4 * kQ);
    EXPECT_DOUBLE_EQ(clear.fast, 0.0);
    EXPECT_GE(clear.slow, 1.0); // cleared while the slow window burned
}

TEST(Slo, LatencyObjectiveCountsSamplesAboveThresholdAsBad)
{
    BoundState bound;
    mx::Histogram lat = mx::histogram("xc_request_latency_us",
                                      "latency", {}, {});

    slo::Spec s;
    s.name = "lat";
    s.kind = slo::Spec::Kind::Latency;
    s.metric = "xc_request_latency_us";
    s.latencyThresholdUs = 1000.0;
    s.objective = 0.5; // half the samples may be slow
    s.fastWindow = 1 * kQ;
    s.slowWindow = 2 * kQ;
    s.fastBurn = 2.0;
    s.slowBurn = 2.0;

    slo::Monitor mon(kQ);
    mon.addSpec(s);

    // t=10: all fast — compliant.
    for (int i = 0; i < 10; ++i)
        lat.observe(50.0);
    mon.evaluate(1 * kQ);
    EXPECT_FALSE(mon.firing());

    // t=20: this quantum is 100% slow: bad 1.0 / budget 0.5 = burn
    // 2.0 on both windows -> FIRE.
    for (int i = 0; i < 10; ++i)
        lat.observe(50000.0);
    mon.evaluate(2 * kQ);
    EXPECT_TRUE(mon.firing("lat"));
    ASSERT_EQ(mon.alerts().size(), 1u);
    EXPECT_DOUBLE_EQ(mon.alerts()[0].fast, 2.0);
}

TEST(Slo, MatchFiltersInstancesByLabel)
{
    BoundState bound;
    mx::Counter aOk =
        mx::counter("xc_requests_total", "requests",
                    {"runtime", "status"}, {"docker", "ok"});
    mx::Counter bErr =
        mx::counter("xc_requests_total", "requests",
                    {"runtime", "status"}, {"gvisor", "error"});

    slo::Spec s = availSpec();
    s.match = {{"runtime", "docker"}};
    slo::Monitor mon(kQ);
    mon.addSpec(s);

    // Every gvisor request fails; docker is clean. The docker-scoped
    // SLO must not fire on the other runtime's errors.
    aOk.add(100);
    bErr.add(100);
    mon.evaluate(1 * kQ);
    aOk.add(100);
    bErr.add(100);
    mon.evaluate(2 * kQ);
    EXPECT_FALSE(mon.firing());
    EXPECT_TRUE(mon.alerts().empty());
}

TEST(Slo, MissingMetricFamilyIsQuiet)
{
    BoundState bound;
    slo::Monitor mon(kQ);
    mon.addSpec(availSpec()); // family never registered
    mon.evaluate(1 * kQ);
    mon.evaluate(2 * kQ);
    EXPECT_FALSE(mon.firing());
    EXPECT_TRUE(mon.alerts().empty());
    EXPECT_NE(mon.renderText().find("avail"), std::string::npos);
    EXPECT_NE(mon.renderText().find("OK"), std::string::npos);
}

TEST(Slo, LogAndJsonAreDeterministicReplays)
{
    auto run = [](slo::Monitor &mon) {
        BoundState bound;
        mx::Counter ok = mx::counter("xc_requests_total", "requests",
                                     {"status"}, {"ok"});
        mx::Counter err = mx::counter("xc_requests_total",
                                      "requests", {"status"},
                                      {"error"});
        mon.addSpec(availSpec());
        ok.add(100);
        mon.evaluate(1 * kQ);
        ok.add(50);
        err.add(50);
        mon.evaluate(2 * kQ);
        ok.add(100);
        mon.evaluate(3 * kQ);
        ok.add(100);
        mon.evaluate(4 * kQ);
    };

    slo::Monitor monA(kQ), monB(kQ);
    run(monA);
    run(monB);

    std::string log = monA.renderLog();
    EXPECT_EQ(log, monB.renderLog());
    EXPECT_EQ(monA.exportJson(), monB.exportJson());
    EXPECT_EQ(monA.renderText(), monB.renderText());

    // The golden log format: one line per transition with the
    // quantized sim timestamp and both burns.
    EXPECT_NE(log.find("FIRE  avail t=0.000020s fast=5.000"),
              std::string::npos)
        << log;
    EXPECT_NE(log.find("CLEAR avail t=0.000040s fast=0.000"),
              std::string::npos)
        << log;
    EXPECT_NE(monA.exportJson().find("\"type\":\"fire\""),
              std::string::npos);
    EXPECT_NE(monA.exportJson().find("\"firing\":false"),
              std::string::npos);
}

TEST(Slo, HistoryPruningKeepsSlowWindowBaseline)
{
    BoundState bound;
    mx::Counter ok = mx::counter("xc_requests_total", "requests",
                                 {"status"}, {"ok"});
    mx::Counter err = mx::counter("xc_requests_total", "requests",
                                  {"status"}, {"error"});

    slo::Monitor mon(kQ);
    mon.addSpec(availSpec());

    // Long clean run so history pruning has cycled many times
    // (slow window 40 keeps ~5 samples of the hundreds taken).
    for (Tick t = kQ; t <= 100 * kQ; t += kQ) {
        ok.add(100);
        mon.evaluate(t);
    }
    EXPECT_FALSE(mon.firing());

    // A burst must still be judged against the pruned trailing
    // windows exactly as in the short run: 50% bad over one quantum
    // -> fast burn 5 -> FIRE.
    ok.add(50);
    err.add(50);
    mon.evaluate(101 * kQ);
    EXPECT_TRUE(mon.firing());
    ASSERT_EQ(mon.alerts().size(), 1u);
    EXPECT_EQ(mon.alerts()[0].at, 101 * kQ);
    // Fast window [990,1010]: 100 clean + 100 half-bad = 50/200.
    EXPECT_DOUBLE_EQ(mon.alerts()[0].fast, 2.5);
}

} // namespace
} // namespace xc::sim
