/**
 * @file
 * Snapshot roundtrip identity, per subsystem: serialize, load into a
 * fresh (or the same) object, serialize again, and require the two
 * byte strings to be identical. This is the invariant the
 * checkpoint/restore design rests on (DESIGN.md §13): if save→load→
 * save is not a fixed point, restore byte-verification can never
 * pass.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/page_table.h"
#include "hw/phys_memory.h"
#include "apps/images.h"
#include "guestos/process.h"
#include "guestos/sys.h"
#include "isa/superblock.h"
#include "isa/syscall_stub.h"
#include "runtimes/runtime.h"
#include "sim/event_queue.h"
#include "sim/mech_counters.h"
#include "sim/rng.h"
#include "sim/snapshot.h"
#include "sim/sweep.h"
#include "sim/timeseries.h"

namespace xc {
namespace {

using sim::snap::SnapReader;
using sim::snap::SnapWriter;

template <typename T>
std::string
saved(T &t)
{
    SnapWriter w;
    t.saveState(w);
    return w.take();
}

template <typename T>
void
loadFrom(T &t, const std::string &bytes)
{
    SnapReader r(bytes);
    t.loadState(r);
}

// --- writer/reader primitives ---------------------------------------

TEST(SnapshotRoundtrip, PrimitivesRoundtrip)
{
    SnapWriter w;
    w.u8(0xab);
    w.b(true);
    w.b(false);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.i64(-42);
    w.f64(3.25);
    w.f64(-0.0);
    w.str("hello");
    w.str("");
    std::string bytes = w.take();

    SnapReader r(bytes);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 3.25);
    // -0.0 must survive bit-exactly (IEEE bit pattern, not value).
    double nz = r.f64();
    EXPECT_EQ(nz, 0.0);
    EXPECT_TRUE(std::signbit(nz));
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    EXPECT_NO_THROW(r.expectEnd("primitives"));
}

TEST(SnapshotRoundtrip, ContainerEncodeDecode)
{
    sim::snap::Snapshot snap;
    snap.set("alpha", std::string("\x00\x01\x02", 3));
    snap.set("beta", "payload");
    snap.set("empty", "");
    std::string bytes = snap.encode();

    sim::snap::Snapshot back = sim::snap::Snapshot::decode(bytes);
    ASSERT_EQ(back.sectionCount(), 3u);
    EXPECT_EQ(back.require("alpha"), std::string("\x00\x01\x02", 3));
    EXPECT_EQ(back.require("beta"), "payload");
    EXPECT_EQ(back.require("empty"), "");
    EXPECT_EQ(back.find("gamma"), nullptr);
    // Re-encode is a fixed point.
    EXPECT_EQ(back.encode(), bytes);
}

// --- event queue ------------------------------------------------------

TEST(SnapshotRoundtrip, EventQueueAcrossWheelLevelsAndHeap)
{
    sim::EventQueue q;
    // Freelist churn: schedule + fire a batch first.
    for (int i = 0; i < 5; ++i)
        q.schedule(1 + i, [] {});
    q.runUntil(100);
    // Level 0 (near), level 1, level 2, and overflow-heap distances,
    // plus a cancelled entry (live slab slot, dead event).
    q.schedule(150, [] {});
    q.schedule(100 + (1 << 10), [] {});
    q.schedule(100 + (1 << 18), [] {});
    q.schedule(100 + (1ull << 30), [] {});
    q.schedule(100 + (1ull << 40), [] {});
    sim::EventHandle dead = q.schedule(170, [] {});
    dead.cancel();

    std::string a = saved(q);
    sim::EventQueue fresh;
    loadFrom(fresh, a);
    std::string b = saved(fresh);
    EXPECT_EQ(a, b);
    EXPECT_EQ(fresh.now(), q.now());
    EXPECT_EQ(fresh.pendingEvents(), q.pendingEvents());
}

TEST(SnapshotRoundtrip, EventQueueMidBurst)
{
    sim::EventQueue q;
    for (int i = 0; i < 3; ++i)
        q.schedule(50, [] {});
    q.schedule(60, [] {});
    // Fire exactly one of the three same-tick events: the snapshot
    // must capture the in-flight burst cursor.
    ASSERT_TRUE(q.step());
    ASSERT_EQ(q.now(), 50u);

    std::string a = saved(q);
    sim::EventQueue fresh;
    loadFrom(fresh, a);
    EXPECT_EQ(saved(fresh), a);
}

TEST(SnapshotRoundtrip, EventQueueSelfLoadIsFixedPoint)
{
    sim::EventQueue q;
    q.schedule(10, [] {});
    q.schedule(20, [] {});
    std::string a = saved(q);
    loadFrom(q, a); // load into the live queue itself
    EXPECT_EQ(saved(q), a);
}

// --- small subsystems -------------------------------------------------

TEST(SnapshotRoundtrip, Rng)
{
    sim::Rng rng(1234);
    for (int i = 0; i < 100; ++i)
        rng.next();
    std::string a = saved(rng);
    sim::Rng fresh(1);
    loadFrom(fresh, a);
    EXPECT_EQ(saved(fresh), a);
    // The restored generator continues the same stream.
    sim::Rng again(1234);
    for (int i = 0; i < 100; ++i)
        again.next();
    EXPECT_EQ(fresh.next(), again.next());
}

TEST(SnapshotRoundtrip, MechanismCounters)
{
    sim::MechanismCounters mech;
    mech.add(sim::Mech::SyscallTrap, 100);
    mech.add(sim::Mech::TlbFlush, 7);
    std::string a = saved(mech);
    sim::MechanismCounters fresh;
    loadFrom(fresh, a);
    EXPECT_EQ(saved(fresh), a);
}

TEST(SnapshotRoundtrip, FaultInjector)
{
    fault::FaultInjector inj;
    inj.configure(fault::FaultPlan::uniform(0.25, 99));
    for (sim::Tick t = 0; t < 64; ++t)
        inj.shouldInject(fault::FaultKind::PacketLoss, t, t * 3);
    std::string a = saved(inj);
    fault::FaultInjector fresh;
    loadFrom(fresh, a);
    EXPECT_EQ(saved(fresh), a);
    EXPECT_EQ(fresh.enabled(), inj.enabled());
    EXPECT_EQ(fresh.injected(fault::FaultKind::PacketLoss),
              inj.injected(fault::FaultKind::PacketLoss));
}

TEST(SnapshotRoundtrip, PhysMemory)
{
    hw::PhysMemory mem(64ull << 20);
    auto a1 = mem.alloc(10, 1);
    auto a2 = mem.alloc(20, 2);
    auto a3 = mem.alloc(5, 1);
    ASSERT_TRUE(a1 && a2 && a3);
    mem.free(*a2, 20); // leave a hole
    std::string a = saved(mem);
    hw::PhysMemory fresh(64ull << 20);
    loadFrom(fresh, a);
    EXPECT_EQ(saved(fresh), a);
    EXPECT_EQ(fresh.usedFrames(), mem.usedFrames());
    EXPECT_EQ(fresh.ownedFrames(1), mem.ownedFrames(1));
}

TEST(SnapshotRoundtrip, PageTable)
{
    hw::PageTable pt;
    pt.map(0x1000, 7, hw::PtePresent | hw::PteWritable);
    pt.map(0xffff800000001000ull, 9,
           hw::PtePresent | hw::PteGlobal);
    pt.map(0x5000, 11, hw::PtePresent | hw::PteUser | hw::PteCow);
    std::string a = saved(pt);
    hw::PageTable fresh;
    loadFrom(fresh, a);
    EXPECT_EQ(saved(fresh), a);
    EXPECT_EQ(fresh.mappedPages(), pt.mappedPages());
}

TEST(SnapshotRoundtrip, MachineSelf)
{
    hw::Machine m(hw::MachineSpec::ec2C4_2xlarge(), 42);
    m.cpu(0).account(hw::CycleClass::User, 1000);
    m.cpu(1).account(hw::CycleClass::Kernel, 500);
    m.memory().alloc(32, 3);
    std::string a = saved(m);
    loadFrom(m, a);
    EXPECT_EQ(saved(m), a);
}

TEST(SnapshotRoundtrip, TimeSeries)
{
    sim::EventQueue q;
    sim::TimeSeries::Options to;
    to.cadence = 10;
    double v = 0.0;
    sim::TimeSeries series(q, to);
    series.addProbe("v", sim::TimeSeries::Kind::Level,
                    [&v] { return v; });
    series.start();
    q.schedule(35, [&v] { v = 7.5; });
    q.runUntil(50);
    series.stop();

    std::string a = saved(series);
    sim::TimeSeries fresh(q, to);
    fresh.addProbe("v", sim::TimeSeries::Kind::Level,
                   [&v] { return v; });
    loadFrom(fresh, a);
    EXPECT_EQ(saved(fresh), a);
    EXPECT_EQ(fresh.exportJson(), series.exportJson());
}

// --- full runtimes (self-roundtrip: save, load back, save) -----------

TEST(SnapshotRoundtrip, DockerRuntime)
{
    auto rt = runtimes::makeRuntime(
        "docker", hw::MachineSpec::ec2C4_2xlarge());
    ASSERT_NE(rt, nullptr);
    runtimes::ContainerOpts copts;
    copts.name = "c0";
    copts.image = apps::glibcImage("img");
    auto *c = rt->createContainer(copts);
    ASSERT_NE(c, nullptr);
    rt->machine().events().runUntil(5 * sim::kTicksPerMs);

    std::string a = saved(*rt);
    loadFrom(*rt, a);
    EXPECT_EQ(saved(*rt), a);
}

TEST(SnapshotRoundtrip, XContainerRuntime)
{
    auto rt = runtimes::makeRuntime(
        "x-container", hw::MachineSpec::ec2C4_2xlarge());
    ASSERT_NE(rt, nullptr);
    runtimes::ContainerOpts copts;
    copts.name = "xc0";
    copts.image = apps::glibcImage("img");
    auto *c = rt->createContainer(copts);
    ASSERT_NE(c, nullptr);
    rt->machine().events().runUntil(5 * sim::kTicksPerMs);

    std::string a = saved(*rt);
    loadFrom(*rt, a);
    EXPECT_EQ(saved(*rt), a);
}

// --- derived state: superblock caches & lookahead domains ------------
//
// Neither the superblock translation cache (DESIGN.md §15) nor the
// lookahead-domain partition is serialized: both are re-derived on
// restore — the cache by re-translating patched text on first
// execution, the partition from the recipe's machine-id map. These
// tests pin that down: snapshots taken with warm and never-warmed
// caches are byte-identical, and domain-run queues snapshot to the
// same fixed point on every identical run.

namespace {

/** Boot an X-Container, run a thread through a burst of patched
 *  syscalls, and return the runtime snapshot plus the image's
 *  superblock-cache population. */
std::pair<std::string, std::size_t>
syscallBurstSnapshot(bool superblocks)
{
    isa::setSuperblocksEnabled(superblocks);
    auto image = apps::glibcImage("img");
    auto rt = runtimes::makeRuntime(
        "x-container", hw::MachineSpec::ec2C4_2xlarge());
    runtimes::ContainerOpts copts;
    copts.name = "xc0";
    copts.image = image;
    auto *c = rt->createContainer(copts);
    guestos::Process *proc = c->createProcess("p0", image);
    c->kernel().spawnThread(
        proc, "t0", [](guestos::Thread &t) -> sim::Task<void> {
            guestos::Sys sys(t);
            for (int i = 0; i < 50; ++i) {
                co_await sys.getpid();
                co_await sys.getuid();
                co_await sys.umask(022);
            }
        });
    rt->machine().events().runUntil(5 * sim::kTicksPerMs);
    std::pair<std::string, std::size_t> out(
        saved(*rt), image->stubs->superblocks().blockCount());
    isa::setSuperblocksEnabled(true);
    return out;
}

} // namespace

TEST(SnapshotRoundtrip, SuperblockCacheIsDerivedNotSerialized)
{
    // Same recipe executed twice: once through the superblock cache,
    // once through the verbatim interpreter (cache never touched).
    // If any cache state leaked into the snapshot — or if superblock
    // execution charged even one cycle differently — the byte
    // strings would differ.
    auto warm = syscallBurstSnapshot(true);
    auto cold = syscallBurstSnapshot(false);
    EXPECT_GT(warm.second, 0u); // the cache really was exercised
    EXPECT_EQ(cold.second, 0u); // ...and really was bypassed here
    EXPECT_EQ(warm.first, cold.first);
}

TEST(SnapshotRoundtrip, SuperblockCacheUntouchedByLoadState)
{
    // loadState neither clears nor repopulates the cache — it simply
    // is not in the snapshot. A restore-by-replay starts cold (the
    // previous test) and a live reload keeps whatever is warm.
    isa::setSuperblocksEnabled(true);
    auto image = apps::glibcImage("img");
    auto rt = runtimes::makeRuntime(
        "x-container", hw::MachineSpec::ec2C4_2xlarge());
    runtimes::ContainerOpts copts;
    copts.name = "xc0";
    copts.image = image;
    auto *c = rt->createContainer(copts);
    guestos::Process *proc = c->createProcess("p0", image);
    c->kernel().spawnThread(
        proc, "t0", [](guestos::Thread &t) -> sim::Task<void> {
            guestos::Sys sys(t);
            for (int i = 0; i < 20; ++i)
                co_await sys.getpid();
        });
    rt->machine().events().runUntil(5 * sim::kTicksPerMs);

    std::size_t blocks = image->stubs->superblocks().blockCount();
    ASSERT_GT(blocks, 0u);
    std::string a = saved(*rt);
    loadFrom(*rt, a);
    EXPECT_EQ(saved(*rt), a);
    EXPECT_EQ(image->stubs->superblocks().blockCount(), blocks);
}

TEST(SnapshotRoundtrip, DomainRunQueuesSnapshotToSameFixedPoint)
{
    // A two-domain run with cross-domain traffic: every domain queue
    // must be a save→load→save fixed point afterwards, and repeating
    // the identical run must reproduce the identical per-queue bytes
    // — the partition re-derives from the recipe, so nothing about
    // it needs to live in (or perturb) the queue snapshots.
    constexpr sim::Tick W = 40;
    auto runOnce = []() {
        std::vector<std::string> out;
        sim::EventQueue q0, q1;
        sim::DomainSet ds(2);
        ds.attach(0, &q0);
        ds.attach(1, &q1);
        struct Pump
        {
            sim::DomainSet *ds;
            sim::EventQueue *q;
            int d;
            void
            operator()() const
            {
                Pump next = *this;
                next.d = 1 - d;
                next.q = ds->queueOf(next.d);
                if (q->now() + W <= 600)
                    ds->post(next.d, q->now() + W, next);
            }
        };
        q0.post(3, Pump{&ds, &q0, 0});
        q1.post(5, Pump{&ds, &q1, 1});
        ds.run(600, W);
        out.push_back(saved(q0));
        out.push_back(saved(q1));
        return out;
    };

    std::vector<std::string> a = runOnce();
    for (const std::string &bytes : a) {
        sim::EventQueue fresh;
        loadFrom(fresh, bytes);
        EXPECT_EQ(saved(fresh), bytes);
    }
    EXPECT_EQ(runOnce(), a);
}

// --- observability ----------------------------------------------------

TEST(SnapshotRoundtrip, ObservabilitySection)
{
    SnapWriter w;
    sim::snap::saveObservability(w);
    std::string a = w.take();
    // Nothing changed between save and load: verification passes.
    SnapReader r(a);
    EXPECT_NO_THROW(sim::snap::loadObservability(r));
    SnapWriter w2;
    sim::snap::saveObservability(w2);
    EXPECT_EQ(w2.take(), a);
}

} // namespace
} // namespace xc
