#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/images.h"
#include "guestos/sys.h"
#include "guestos/vfs.h"
#include "runtimes/x_container.h"
#include "sim/mech_counters.h"
#include "sim/trace.h"

namespace xc::test {
namespace {

using guestos::Fd;
using guestos::Sys;
using guestos::Thread;

/** Everything a run produces that must replay identically. */
struct RunOutput
{
    std::string json;
    sim::MechSnapshot mech;
    std::uint64_t ops = 0;
};

/**
 * One full capture: boot an X-Container, run a syscall burst, export
 * the structured trace. The simulation is seeded and single-threaded,
 * so two invocations must be byte-identical.
 */
RunOutput
runOnce()
{
    sim::trace::startCapture();

    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.name = "replay";
    copts.image = apps::glibcImage("replay");
    copts.vcpus = 2;
    copts.memBytes = 256ull << 20;
    runtimes::RtContainer *c = rt.createContainer(copts);
    EXPECT_NE(c, nullptr);

    RunOutput out;
    if (c) {
        guestos::GuestKernel &kernel = c->kernel();
        kernel.vfs().createFile("/dev/zero", 1 << 20);
        auto ops = std::make_shared<std::uint64_t>(0);
        guestos::Process *proc =
            c->createProcess("replay0", copts.image);
        Thread::Body body =
            [raw = ops.get()](Thread &t) -> sim::Task<void> {
            Sys sys(t);
            Fd fd = static_cast<Fd>(
                co_await sys.open("/dev/zero", guestos::ORdOnly));
            for (int i = 0; i < 100; ++i) {
                std::int64_t d = co_await sys.dup(fd);
                co_await sys.close(static_cast<Fd>(d));
                co_await sys.getpid();
                co_await sys.umask(022);
                ++*raw;
            }
            co_await sys.exit(0);
        };
        kernel.spawnThread(proc, "replay0", std::move(body));
        rt.machine().events().runUntil(rt.machine().now() +
                                       200 * sim::kTicksPerMs);
        out.ops = *ops;
        out.mech = rt.machine().mech().snapshot();
    }

    sim::trace::stopCapture();
    out.json = sim::trace::exportJson();
    sim::trace::clearCapture();
    return out;
}

TEST(TraceReplay, SameSeedProducesByteIdenticalTrace)
{
    RunOutput a = runOnce();
    RunOutput b = runOnce();
    EXPECT_GT(a.ops, 0u);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.json, b.json);
    EXPECT_TRUE(a.mech == b.mech);
}

TEST(TraceReplay, ExportIsChromeTraceShaped)
{
    RunOutput a = runOnce();
    // Object form with a traceEvents array...
    EXPECT_NE(a.json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(a.json.find("\"displayTimeUnit\""), std::string::npos);
    // ...containing complete spans (syscalls), instants (dispatch /
    // hypercalls) and process-name metadata for the tracks.
    EXPECT_NE(a.json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(a.json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(a.json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(a.json.find("process_name"), std::string::npos);
    // The burst's syscalls and the boot hypercalls are on the trace.
    EXPECT_NE(a.json.find("\"name\":\"dup\""), std::string::npos);
    EXPECT_NE(a.json.find("\"name\":\"getpid\""), std::string::npos);
}

TEST(TraceReplay, CaptureOffRecordsNothing)
{
    sim::trace::clearCapture();
    ASSERT_FALSE(sim::trace::capturing());

    runtimes::XContainerRuntime rt({});
    runtimes::ContainerOpts copts;
    copts.name = "quiet";
    copts.image = apps::glibcImage("quiet");
    copts.vcpus = 1;
    copts.memBytes = 128ull << 20;
    EXPECT_NE(rt.createContainer(copts), nullptr);

    EXPECT_EQ(sim::trace::capturedEvents(), 0u);
    EXPECT_EQ(sim::trace::droppedEvents(), 0u);
}

TEST(TraceReplay, BufferLimitDropsAndCounts)
{
    sim::trace::startCapture(/*max_events=*/8);
    for (int i = 0; i < 20; ++i)
        sim::trace::instantEvent(sim::trace::App, "t", 0, "e",
                                 static_cast<sim::Tick>(i));
    sim::trace::stopCapture();
    EXPECT_EQ(sim::trace::capturedEvents(), 8u);
    EXPECT_EQ(sim::trace::droppedEvents(), 12u);
    std::string json = sim::trace::exportJson();
    EXPECT_NE(json.find("\"dropped\":12"), std::string::npos);
    sim::trace::clearCapture();
}

} // namespace
} // namespace xc::test
