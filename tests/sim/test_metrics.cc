#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/snapshot.h"

namespace xc::sim {
namespace {

namespace mx = metrics;

/** Bind a fresh MetricState to this thread for the test's lifetime
 *  (the same isolation runMacro gives each cell), restoring the
 *  previous binding on destruction. */
struct BoundState
{
    BoundState() { prev = mx::detail::bindThreadState(&st); }
    ~BoundState()
    {
        mx::clear();
        mx::detail::bindThreadState(prev);
    }
    mx::detail::MetricState st;
    mx::detail::MetricState *prev = nullptr;
};

TEST(Metrics, DisabledHandlesAreInertAndAllocationIsSkipped)
{
    BoundState bound;
    ASSERT_FALSE(mx::enabled());

    mx::Counter c = mx::counter("xc_requests_total", "requests",
                                {"status"}, {"ok"});
    mx::Gauge g = mx::gauge("xc_depth", "depth", {}, {});
    mx::Histogram h =
        mx::histogram("xc_latency_us", "latency", {}, {});
    EXPECT_FALSE(static_cast<bool>(c));
    EXPECT_FALSE(static_cast<bool>(g));
    EXPECT_FALSE(static_cast<bool>(h));
    EXPECT_EQ(h.histogram(), nullptr);

    // Inert handles swallow updates without touching any state.
    c.add(5);
    g.set(3.0);
    h.observe(42.0);
    mx::addCollector("xc_runq", "runq", mx::Kind::Gauge, {}, {},
                     [] { return 1.0; });

    EXPECT_EQ(mx::familyCount(), 0u);
    EXPECT_EQ(mx::renderText(), "");
    EXPECT_DOUBLE_EQ(mx::valueOf("xc_requests_total"), 0.0);
}

TEST(Metrics, CounterGaugeHistogramRoundTrip)
{
    BoundState bound;
    mx::enable();
    ASSERT_TRUE(mx::enabled());

    mx::Counter ok = mx::counter("xc_requests_total", "requests",
                                 {"status"}, {"ok"});
    mx::Counter err = mx::counter("xc_requests_total", "requests",
                                  {"status"}, {"error"});
    mx::Gauge depth = mx::gauge("xc_runq_depth", "depth", {}, {});
    mx::Histogram lat =
        mx::histogram("xc_latency_us", "latency", {}, {});
    ASSERT_TRUE(static_cast<bool>(ok));
    ASSERT_TRUE(static_cast<bool>(err));

    ok.add();
    ok.add(9);
    err.add(2);
    depth.set(7.0);
    depth.set(3.0); // gauge: latest value wins
    lat.observe(100.0);
    lat.observe(300.0);

    EXPECT_EQ(mx::familyCount(), 3u);
    EXPECT_DOUBLE_EQ(mx::valueOf("xc_requests_total"), 12.0);
    EXPECT_DOUBLE_EQ(
        mx::valueOf("xc_requests_total", {{"status", "ok"}}), 10.0);
    EXPECT_DOUBLE_EQ(
        mx::valueOf("xc_requests_total", {{"status", "error"}}),
        2.0);
    EXPECT_DOUBLE_EQ(mx::valueOf("xc_runq_depth"), 3.0);
    ASSERT_NE(lat.histogram(), nullptr);
    EXPECT_EQ(lat.histogram()->count(), 2u);
    EXPECT_DOUBLE_EQ(lat.histogram()->sum(), 400.0);
}

TEST(Metrics, LabelTuplesInternToOneInstance)
{
    BoundState bound;
    mx::enable();

    mx::Counter a = mx::counter("xc_mech_cycles_total", "cycles",
                                {"mech"}, {"syscall"});
    mx::Counter b = mx::counter("xc_mech_cycles_total", "cycles",
                                {"mech"}, {"syscall"});
    a.add(3);
    b.add(4); // same interned instance as `a`
    EXPECT_DOUBLE_EQ(mx::valueOf("xc_mech_cycles_total",
                                 {{"mech", "syscall"}}),
                     7.0);
    EXPECT_EQ(mx::familyCount(), 1u);
}

TEST(Metrics, RenderTextUsesFirstTouchOrder)
{
    BoundState bound;
    mx::enable();

    mx::counter("xc_ops_total", "ops", {"op"}, {"write"}).add(1);
    mx::counter("xc_ops_total", "ops", {"op"}, {"read"}).add(2);
    // Re-touching an existing tuple must not reorder instances.
    mx::counter("xc_ops_total", "ops", {"op"}, {"write"}).add(1);

    std::string text = mx::renderText();
    std::size_t help = text.find("# HELP xc_ops_total ops");
    std::size_t type = text.find("# TYPE xc_ops_total counter");
    std::size_t w = text.find("xc_ops_total{op=\"write\"} 2");
    std::size_t r = text.find("xc_ops_total{op=\"read\"} 2");
    ASSERT_NE(help, std::string::npos) << text;
    ASSERT_NE(type, std::string::npos) << text;
    ASSERT_NE(w, std::string::npos) << text;
    ASSERT_NE(r, std::string::npos) << text;
    EXPECT_LT(help, type);
    EXPECT_LT(type, w);
    EXPECT_LT(w, r); // write touched first, so it renders first
}

TEST(Metrics, ExpositionIsDeterministic)
{
    auto populate = [] {
        mx::enable();
        mx::counter("xc_requests_total", "requests",
                    {"runtime", "status"}, {"docker", "ok"})
            .add(11);
        mx::counter("xc_requests_total", "requests",
                    {"runtime", "status"}, {"docker", "error"})
            .add(1);
        mx::gauge("xc_net_backlog", "backlog", {"runtime"},
                  {"docker"})
            .set(4.0);
        mx::Histogram h = mx::histogram("xc_latency_us", "latency",
                                        {"runtime"}, {"docker"});
        for (int i = 1; i <= 16; ++i)
            h.observe(100.0 * i);
    };

    std::string text1, json1;
    {
        BoundState bound;
        populate();
        text1 = mx::renderText();
        json1 = mx::exportJson();
        // Same state, same bytes.
        EXPECT_EQ(mx::renderText(), text1);
        EXPECT_EQ(mx::exportJson(), json1);
    }
    // A separately-built state with the same touch sequence exposes
    // byte-identical documents.
    BoundState bound;
    populate();
    EXPECT_EQ(mx::renderText(), text1);
    EXPECT_EQ(mx::exportJson(), json1);
    EXPECT_NE(json1.find("\"kind\":\"histogram\""),
              std::string::npos);
    EXPECT_NE(json1.find("\"count\":16"), std::string::npos);
}

TEST(Metrics, CollectorsRefreshAtExpositionAndFreezeOnFinalize)
{
    BoundState bound;
    mx::enable();

    double depth = 2.0;
    mx::addCollector("xc_runq_depth", "depth", mx::Kind::Gauge, {},
                     {}, [&depth] { return depth; });

    EXPECT_NE(mx::renderText().find("xc_runq_depth 2"),
              std::string::npos);
    depth = 9.0; // no metrics call needed: re-read at next scrape
    EXPECT_NE(mx::renderText().find("xc_runq_depth 9"),
              std::string::npos);

    depth = 5.0;
    mx::finalizeCollectors(); // captures 5, drops the callback
    depth = 77.0;
    EXPECT_DOUBLE_EQ(mx::valueOf("xc_runq_depth"), 5.0);
    EXPECT_NE(mx::renderText().find("xc_runq_depth 5"),
              std::string::npos);
}

TEST(Metrics, MergeSumsCountersMergesHistogramsGaugesTakeSrc)
{
    mx::detail::MetricState dst, src;

    {
        BoundState dummy; // keep the process default clean
        mx::detail::bindThreadState(&dst);
        mx::enable();
        mx::counter("xc_requests_total", "requests", {"status"},
                    {"ok"})
            .add(10);
        mx::gauge("xc_depth", "depth", {}, {}).set(1.0);
        mx::histogram("xc_latency_us", "latency", {}, {})
            .observe(100.0);

        mx::detail::bindThreadState(&src);
        mx::enable();
        // Different first-touch order within the family and one
        // tuple dst has not seen.
        mx::counter("xc_requests_total", "requests", {"status"},
                    {"error"})
            .add(3);
        mx::counter("xc_requests_total", "requests", {"status"},
                    {"ok"})
            .add(5);
        mx::gauge("xc_depth", "depth", {}, {}).set(8.0);
        mx::Histogram h =
            mx::histogram("xc_latency_us", "latency", {}, {});
        h.observe(200.0);
        h.observe(300.0);
        // A family only the source knows, collector-backed; its
        // callback captures a local that dies with this scope, so
        // the merge must finalize it.
        double waiting = 6.0;
        mx::addCollector("xc_cpu_pool_waiting", "waiting",
                         mx::Kind::Gauge, {}, {},
                         [&waiting] { return waiting; });

        mx::detail::mergeState(dst, src);
        mx::detail::bindThreadState(&dst);

        EXPECT_DOUBLE_EQ(mx::valueOf("xc_requests_total",
                                     {{"status", "ok"}}),
                         15.0);
        EXPECT_DOUBLE_EQ(mx::valueOf("xc_requests_total",
                                     {{"status", "error"}}),
                         3.0);
        EXPECT_DOUBLE_EQ(mx::valueOf("xc_depth"), 8.0);
        EXPECT_DOUBLE_EQ(mx::valueOf("xc_cpu_pool_waiting"), 6.0);
        mx::detail::bindThreadState(&dummy.st);
    }

    // After the merge the source's collector callback is gone:
    // exposing the merged state cannot call into the dead cell.
    for (const mx::detail::Family &f : src.families) {
        for (const mx::detail::Instance &i : f.instances)
            EXPECT_FALSE(static_cast<bool>(i.collect));
    }
    ASSERT_EQ(dst.byName.count("xc_latency_us"), 1u);
    const mx::detail::Family &lat =
        dst.families[dst.byName.at("xc_latency_us")];
    ASSERT_EQ(lat.instances.size(), 1u);
    EXPECT_EQ(lat.instances.front().histo.count(), 3u);
    EXPECT_DOUBLE_EQ(lat.instances.front().histo.sum(), 600.0);
}

TEST(Metrics, MergeInSequentialCellOrderReproducesSequentialRun)
{
    // The -j byte-identity argument in one test: touching cells
    // sequentially into one state, or touching per-cell states and
    // merging them in cell order, must expose the same bytes.
    auto touchCell = [](const char *rt, double errs) {
        mx::counter("xc_requests_total", "requests",
                    {"runtime", "status"}, {rt, "ok"})
            .add(100);
        mx::counter("xc_requests_total", "requests",
                    {"runtime", "status"}, {rt, "error"})
            .add(errs);
    };

    std::string sequential;
    {
        BoundState bound;
        mx::enable();
        touchCell("docker", 2);
        touchCell("x-container", 1);
        sequential = mx::renderText();
    }

    mx::detail::MetricState merged, cellA, cellB;
    BoundState dummy;
    mx::detail::bindThreadState(&merged);
    mx::enable();
    mx::detail::bindThreadState(&cellA);
    mx::enable();
    touchCell("docker", 2);
    mx::detail::bindThreadState(&cellB);
    mx::enable();
    touchCell("x-container", 1);
    mx::detail::mergeState(merged, cellA);
    mx::detail::mergeState(merged, cellB);
    mx::detail::bindThreadState(&merged);
    EXPECT_EQ(mx::renderText(), sequential);
    mx::detail::bindThreadState(&dummy.st);
}

TEST(Metrics, SaveLoadStateIsAByteFixedPoint)
{
    BoundState bound;
    mx::enable();

    mx::counter("xc_requests_total", "requests",
                {"runtime", "status"}, {"docker", "ok"})
        .add(123);
    mx::gauge("xc_net_backlog", "backlog", {"runtime"}, {"docker"})
        .set(5.0);
    mx::Histogram h =
        mx::histogram("xc_latency_us", "latency", {}, {});
    for (int i = 0; i < 32; ++i)
        h.observe(50.0 + 13.0 * i);
    double cycles = 4096.0;
    mx::addCollector("xc_mech_cycles_total", "cycles", mx::Kind::Counter,
                     {"mech"}, {"syscall"},
                     [&cycles] { return cycles; });

    snap::SnapWriter w1;
    mx::saveState(w1);
    std::string bytes = w1.take();
    std::string text = mx::renderText();

    mx::detail::MetricState fresh;
    mx::detail::MetricState *self =
        mx::detail::bindThreadState(&fresh);
    mx::enable();
    snap::SnapReader r(bytes);
    mx::loadState(r);

    snap::SnapWriter w2;
    mx::saveState(w2);
    EXPECT_EQ(w2.take(), bytes);
    // The restored state exposes the same document (collector
    // values were serialized as plain values).
    EXPECT_EQ(mx::renderText(), text);
    EXPECT_DOUBLE_EQ(mx::valueOf("xc_mech_cycles_total",
                                 {{"mech", "syscall"}}),
                     4096.0);
    mx::detail::bindThreadState(self);
}

TEST(Metrics, EnableResetsAndDisableKeepsFamiliesReadable)
{
    BoundState bound;
    mx::enable();
    mx::counter("xc_a_total", "a", {}, {}).add(1);
    EXPECT_EQ(mx::familyCount(), 1u);

    // disable(): recording stops, exposition still works.
    mx::disable();
    EXPECT_FALSE(mx::enabled());
    EXPECT_EQ(mx::familyCount(), 1u);
    EXPECT_NE(mx::renderText().find("xc_a_total 1"),
              std::string::npos);
    mx::counter("xc_a_total", "a", {}, {}).add(99); // inert
    EXPECT_DOUBLE_EQ(mx::valueOf("xc_a_total"), 1.0);

    // enable(): a fresh recording epoch.
    mx::enable();
    EXPECT_EQ(mx::familyCount(), 0u);
}

} // namespace
} // namespace xc::sim
