#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/timeseries.h"

namespace xc::sim {
namespace {

TEST(TimeSeries, SamplesLevelAndDeltaProbes)
{
    EventQueue events;
    TimeSeries::Options opt;
    opt.cadence = 10;
    TimeSeries ts(events, opt);

    double level = 3.0;
    double counter = 0.0;
    ts.addProbe("level", TimeSeries::Kind::Level,
                [&] { return level; });
    ts.addProbe("rate", TimeSeries::Kind::Delta,
                [&] { return counter; });
    ts.start();

    // Advance 5 cadences, bumping the counter by 7 per interval and
    // the level once mid-way.
    for (int i = 0; i < 5; ++i) {
        counter += 7.0;
        if (i == 2)
            level = 9.0;
        events.runUntil(events.now() + 10);
    }
    ts.stop();

    EXPECT_EQ(ts.samplesTaken(), 5u);
    std::vector<double> lv = ts.points("level");
    std::vector<double> rv = ts.points("rate");
    ASSERT_EQ(lv.size(), 5u);
    ASSERT_EQ(rv.size(), 5u);
    EXPECT_DOUBLE_EQ(lv.front(), 3.0);
    EXPECT_DOUBLE_EQ(lv.back(), 9.0);
    for (double v : rv)
        EXPECT_DOUBLE_EQ(v, 7.0);
    EXPECT_TRUE(ts.points("unknown").empty());
}

TEST(TimeSeries, DeltaBaselineIsPrimedAtStart)
{
    EventQueue events;
    TimeSeries::Options opt;
    opt.cadence = 10;
    TimeSeries ts(events, opt);
    double counter = 1000.0; // pre-run history must not leak in
    ts.addProbe("rate", TimeSeries::Kind::Delta,
                [&] { return counter; });
    ts.start();
    counter += 5.0;
    events.runUntil(events.now() + 10);
    ts.stop();
    std::vector<double> rv = ts.points("rate");
    ASSERT_EQ(rv.size(), 1u);
    EXPECT_DOUBLE_EQ(rv[0], 5.0);
}

TEST(TimeSeries, RingDropsOldestWhenFull)
{
    EventQueue events;
    TimeSeries::Options opt;
    opt.cadence = 1;
    opt.capacity = 4;
    TimeSeries ts(events, opt);
    double i = 0.0;
    ts.addProbe("i", TimeSeries::Kind::Level, [&] { return i; });
    ts.start();
    for (int k = 1; k <= 10; ++k) {
        i = k;
        events.runUntil(events.now() + 1);
    }
    ts.stop();
    EXPECT_EQ(ts.samplesTaken(), 10u);
    std::vector<double> pts = ts.points("i");
    ASSERT_EQ(pts.size(), 4u);
    // Oldest-first unroll of the ring: the last four samples.
    EXPECT_DOUBLE_EQ(pts[0], 7.0);
    EXPECT_DOUBLE_EQ(pts[3], 10.0);
}

TEST(TimeSeries, StopHaltsSampling)
{
    EventQueue events;
    TimeSeries::Options opt;
    opt.cadence = 10;
    TimeSeries ts(events, opt);
    ts.addProbe("x", TimeSeries::Kind::Level, [] { return 1.0; });
    ts.start();
    events.runUntil(events.now() + 35);
    ts.stop();
    std::uint64_t taken = ts.samplesTaken();
    events.runUntil(events.now() + 100);
    EXPECT_EQ(ts.samplesTaken(), taken);
    EXPECT_FALSE(ts.running());
}

TEST(TimeSeries, ExportJsonHasSeriesAndMetadata)
{
    EventQueue events;
    TimeSeries::Options opt;
    opt.cadence = 10;
    TimeSeries ts(events, opt);
    double c = 0.0;
    ts.addProbe("ops", TimeSeries::Kind::Delta, [&] { return c; });
    ts.addProbe("depth", TimeSeries::Kind::Level, [] { return 2.0; });
    ts.start();
    for (int k = 0; k < 3; ++k) {
        c += 4.0;
        events.runUntil(events.now() + 10);
    }
    ts.stop();
    std::string json = ts.exportJson();
    EXPECT_NE(json.find("\"cadence_ticks\":10"), std::string::npos);
    EXPECT_NE(json.find("\"samples\":3"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"ops\",\"kind\":\"delta\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"depth\",\"kind\":\"level\""),
              std::string::npos);
    EXPECT_NE(json.find("\"points\":[4,4,4]"), std::string::npos);
    // Deterministic: same state, same bytes.
    EXPECT_EQ(json, ts.exportJson());
}

TEST(TimeSeries, ExportJsonEmptyRing)
{
    EventQueue events;
    TimeSeries::Options opt;
    opt.cadence = 10;
    TimeSeries ts(events, opt);
    ts.addProbe("ops", TimeSeries::Kind::Delta, [] { return 0.0; });

    // Never started: no samples, no points, still a valid document.
    std::string json = ts.exportJson();
    EXPECT_NE(json.find("\"samples\":0"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
    EXPECT_NE(json.find("\"points\":[]"), std::string::npos);
    EXPECT_EQ(json, ts.exportJson());
    EXPECT_TRUE(ts.points("ops").empty());

    // Started but stopped before the first cadence: same shape.
    ts.start();
    ts.stop();
    EXPECT_NE(ts.exportJson().find("\"points\":[]"),
              std::string::npos);
}

TEST(TimeSeries, ExportJsonExactlyFullRingThenWrap)
{
    EventQueue events;
    TimeSeries::Options opt;
    opt.cadence = 1;
    opt.capacity = 3;
    TimeSeries ts(events, opt);
    double i = 0.0;
    ts.addProbe("i", TimeSeries::Kind::Level, [&] { return i; });
    ts.start();
    for (int k = 1; k <= 3; ++k) {
        i = k;
        events.runUntil(events.now() + 1);
    }
    // Exactly full: no wrap, nothing dropped, insertion order kept.
    EXPECT_EQ(ts.samplesTaken(), 3u);
    std::string json = ts.exportJson();
    EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
    EXPECT_NE(json.find("\"points\":[1,2,3]"), std::string::npos);

    // One more sample wraps: oldest falls off, unroll stays
    // oldest-first starting at the ring head.
    i = 4;
    events.runUntil(events.now() + 1);
    ts.stop();
    EXPECT_EQ(ts.samplesTaken(), 4u);
    json = ts.exportJson();
    EXPECT_NE(json.find("\"dropped\":1"), std::string::npos);
    EXPECT_NE(json.find("\"points\":[2,3,4]"), std::string::npos);
    EXPECT_EQ(json, ts.exportJson());
}

TEST(TimeSeries, DeltaClampsAtZeroWhenCounterDecreases)
{
    EventQueue events;
    TimeSeries::Options opt;
    opt.cadence = 10;
    TimeSeries ts(events, opt);
    double counter = 100.0;
    ts.addProbe("rate", TimeSeries::Kind::Delta,
                [&] { return counter; });
    ts.start();
    counter = 110.0; // normal increase
    events.runUntil(events.now() + 10);
    // The counter's owner restarts (restore adoption): the raw value
    // drops below the baseline. The point clamps to 0 — per-interval
    // rates are documented non-negative — and the new raw value
    // becomes the baseline.
    counter = 5.0;
    events.runUntil(events.now() + 10);
    counter = 12.0; // exact again from the adopted baseline
    events.runUntil(events.now() + 10);
    ts.stop();

    std::vector<double> rv = ts.points("rate");
    ASSERT_EQ(rv.size(), 3u);
    EXPECT_DOUBLE_EQ(rv[0], 10.0);
    EXPECT_DOUBLE_EQ(rv[1], 0.0);
    EXPECT_DOUBLE_EQ(rv[2], 7.0);
    for (double v : rv)
        EXPECT_GE(v, 0.0);
}

} // namespace
} // namespace xc::sim
