#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace xc::sim {
namespace {

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pendingEvents(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFiresInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, AdvancesNowToEventTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(123, [&] { seen = q.now(); });
    q.run();
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    EventHandle h = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    int count = 0;
    EventHandle h = q.schedule(10, [&] { ++count; });
    q.run();
    EXPECT_FALSE(h.pending());
    h.cancel();
    q.run();
    EXPECT_EQ(count, 1);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.schedule(30, [&] { order.push_back(3); });
    q.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilAdvancesNowPastLastEvent)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, EventsScheduledDuringRunFire)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleAfter(10, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, StepFiresExactlyOne)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] { ++count; });
    q.schedule(2, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue q;
    EventHandle a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.pendingEvents(), 2u);
    a.cancel();
    EXPECT_EQ(q.pendingEvents(), 1u);
    q.run();
    EXPECT_EQ(q.pendingEvents(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 2000; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 1000);
        q.schedule(when, [&, when] {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    q.run();
    EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace xc::sim
