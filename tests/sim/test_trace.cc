#include <gtest/gtest.h>

#include <vector>

#include "sim/trace.h"

namespace xc::sim::trace {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        lines.clear();
        setSink([this](const std::string &line) {
            lines.push_back(line);
        });
    }

    void
    TearDown() override
    {
        enable(None);
        setSink(nullptr);
    }

    std::vector<std::string> lines;
};

TEST_F(TraceTest, DisabledCategoryEmitsNothing)
{
    enable(None);
    XC_TRACE(Syscall, 1000, "kern", "should not appear");
    EXPECT_TRUE(lines.empty());
}

TEST_F(TraceTest, EnabledCategoryEmits)
{
    enable(Syscall);
    XC_TRACE(Syscall, 2 * kTicksPerUs, "kern", "nr=%d", 39);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("nr=39"), std::string::npos);
    EXPECT_NE(lines[0].find("syscall"), std::string::npos);
    EXPECT_NE(lines[0].find("kern"), std::string::npos);
    EXPECT_NE(lines[0].find("2.000 us"), std::string::npos);
}

TEST_F(TraceTest, MaskIsSelective)
{
    enable(Net | Abom);
    XC_TRACE(Syscall, 0, "a", "no");
    XC_TRACE(Net, 0, "b", "yes1");
    XC_TRACE(Abom, 0, "c", "yes2");
    XC_TRACE(Sched, 0, "d", "no");
    ASSERT_EQ(lines.size(), 2u);
}

TEST_F(TraceTest, ParseCategories)
{
    EXPECT_EQ(parseCategories("syscall"), Syscall);
    EXPECT_EQ(parseCategories("syscall,net"), Syscall | Net);
    EXPECT_EQ(parseCategories("abom,sched,mem"),
              Abom | Sched | Mem);
    EXPECT_EQ(parseCategories("all"), All);
    EXPECT_EQ(parseCategories("bogus"), None);
    EXPECT_EQ(parseCategories(""), None);
}

TEST_F(TraceTest, ActivePredicateMatchesMask)
{
    enable(Hypercall);
    EXPECT_TRUE(active(Hypercall));
    EXPECT_FALSE(active(Net));
}

} // namespace
} // namespace xc::sim::trace
