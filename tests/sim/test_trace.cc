#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/trace.h"

namespace xc::sim::trace {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        lines.clear();
        setSink([this](const std::string &line) {
            lines.push_back(line);
        });
    }

    void
    TearDown() override
    {
        enable(None);
        setSink(nullptr);
    }

    std::vector<std::string> lines;
};

TEST_F(TraceTest, DisabledCategoryEmitsNothing)
{
    enable(None);
    XC_TRACE(Syscall, 1000, "kern", "should not appear");
    EXPECT_TRUE(lines.empty());
}

TEST_F(TraceTest, EnabledCategoryEmits)
{
    enable(Syscall);
    XC_TRACE(Syscall, 2 * kTicksPerUs, "kern", "nr=%d", 39);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("nr=39"), std::string::npos);
    EXPECT_NE(lines[0].find("syscall"), std::string::npos);
    EXPECT_NE(lines[0].find("kern"), std::string::npos);
    EXPECT_NE(lines[0].find("2.000 us"), std::string::npos);
}

TEST_F(TraceTest, MaskIsSelective)
{
    enable(Net | Abom);
    XC_TRACE(Syscall, 0, "a", "no");
    XC_TRACE(Net, 0, "b", "yes1");
    XC_TRACE(Abom, 0, "c", "yes2");
    XC_TRACE(Sched, 0, "d", "no");
    ASSERT_EQ(lines.size(), 2u);
}

TEST_F(TraceTest, ParseCategories)
{
    EXPECT_EQ(parseCategories("syscall"), Syscall);
    EXPECT_EQ(parseCategories("syscall,net"), Syscall | Net);
    EXPECT_EQ(parseCategories("abom,sched,mem"),
              Abom | Sched | Mem);
    EXPECT_EQ(parseCategories("all"), All);
    EXPECT_EQ(parseCategories("bogus"), None);
    EXPECT_EQ(parseCategories(""), None);
}

TEST_F(TraceTest, ActivePredicateMatchesMask)
{
    enable(Hypercall);
    EXPECT_TRUE(active(Hypercall));
    EXPECT_FALSE(active(Net));
}

class CaptureTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearCapture(); }
    void TearDown() override
    {
        stopCapture();
        clearCapture();
    }
};

TEST_F(CaptureTest, EventsIgnoredUnlessCapturing)
{
    instantEvent(App, "track", 0, "before", 100);
    EXPECT_EQ(capturedEvents(), 0u);

    startCapture();
    EXPECT_TRUE(capturing());
    instantEvent(App, "track", 0, "during", 200);
    EXPECT_EQ(capturedEvents(), 1u);

    stopCapture();
    EXPECT_FALSE(capturing());
    instantEvent(App, "track", 0, "after", 300);
    EXPECT_EQ(capturedEvents(), 1u);
}

TEST_F(CaptureTest, ExportFormatsSpansInstantsAndCounters)
{
    startCapture();
    completeEvent(Syscall, "guest", 3, "read",
                  2 * kTicksPerUs, 5 * kTicksPerUs);
    instantEvent(Sched, "guest", 1, "dispatch", 7 * kTicksPerUs);
    counterEvent(Mem, "guest", "rss", 8 * kTicksPerUs, 4096);
    stopCapture();

    std::string json = exportJson();
    // Complete span: begin 2us, duration 3us, on pid "guest" tid 3.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":2.000,\"dur\":3.000"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"read\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":7.000,\"s\":\"t\""),
              std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":4096}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"process_name\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"guest\""), std::string::npos);
}

TEST_F(CaptureTest, ScopedSpanRecordsAgainstQueueClock)
{
    EventQueue q;
    startCapture();
    bool ran = false;
    q.schedule(10 * kTicksPerUs, [&] {
        XC_TRACE_SPAN(Syscall, q, "k", 0, "work");
        ran = true;
    });
    q.runUntil(20 * kTicksPerUs);
    stopCapture();
    EXPECT_TRUE(ran);
    // Span begins and ends at the same tick: zero duration at 10us.
    EXPECT_NE(exportJson().find("\"ts\":10.000,\"dur\":0.000"),
              std::string::npos);
}

TEST_F(CaptureTest, StartCaptureClearsPreviousEvents)
{
    startCapture();
    instantEvent(App, "t", 0, "one", 1);
    stopCapture();
    EXPECT_EQ(capturedEvents(), 1u);
    startCapture();
    EXPECT_EQ(capturedEvents(), 0u);
}

} // namespace
} // namespace xc::sim::trace
