/**
 * @file
 * EventHandle edge cases: the semantics the old shared_ptr handles
 * provided, pinned so the generation-counted slab handles (and any
 * future rewrite) keep them bit-for-bit.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/logging.h"
#include "sim/snapshot.h"

namespace xc::sim {
namespace {

TEST(EventHandleEdge, CancelOwnEventFromInsideCallbackIsNoop)
{
    EventQueue q;
    EventHandle h;
    int fired = 0;
    bool pendingInside = true;
    h = q.schedule(10, [&] {
        ++fired;
        // The firing event is no longer pending from its own
        // callback's point of view; cancelling it is a no-op.
        pendingInside = h.pending();
        h.cancel();
        h.cancel();
    });
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(pendingInside);
    EXPECT_FALSE(h.pending());
    EXPECT_EQ(q.pendingEvents(), 0u);
}

TEST(EventHandleEdge, CancelSiblingFromInsideCallback)
{
    EventQueue q;
    std::vector<int> order;
    EventHandle b;
    q.schedule(10, [&] {
        order.push_back(1);
        b.cancel(); // same-tick sibling, later in the burst
    });
    b = q.schedule(10, [&] { order.push_back(2); });
    q.schedule(10, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
    EXPECT_EQ(q.pendingEvents(), 0u);
}

TEST(EventHandleEdge, CancelFutureEventFromInsideCallback)
{
    EventQueue q;
    bool fired = false;
    EventHandle far;
    far = q.schedule(1000, [&] { fired = true; });
    q.schedule(10, [&] { far.cancel(); });
    q.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.now(), 10u);
    EXPECT_EQ(q.pendingEvents(), 0u);
}

TEST(EventHandleEdge, DoubleCancelDecrementsPendingOnce)
{
    EventQueue q;
    EventHandle h = q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(q.pendingEvents(), 2u);
    h.cancel();
    EXPECT_EQ(q.pendingEvents(), 1u);
    h.cancel(); // second cancel must not double-decrement
    EXPECT_EQ(q.pendingEvents(), 1u);
    q.run();
    EXPECT_EQ(q.pendingEvents(), 0u);
}

TEST(EventHandleEdge, CancelAfterFireIsNoop)
{
    EventQueue q;
    int count = 0;
    EventHandle h = q.schedule(10, [&] { ++count; });
    q.run();
    EXPECT_FALSE(h.pending());
    h.cancel();
    h.cancel();
    q.run();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.pendingEvents(), 0u);
}

TEST(EventHandleEdge, HandleOutlivesQueue)
{
    EventHandle h;
    {
        EventQueue q;
        h = q.schedule(10, [] {});
        EXPECT_TRUE(h.pending());
    }
    // The queue is gone; the handle must observe "not pending" and
    // cancel must be safe (no dangling access — ASan-verified).
    EXPECT_FALSE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
}

TEST(EventHandleEdge, HandleOutlivesQueueAfterFire)
{
    EventHandle h;
    {
        EventQueue q;
        h = q.schedule(10, [] {});
        q.run();
        EXPECT_FALSE(h.pending());
    }
    EXPECT_FALSE(h.pending());
    h.cancel();
}

TEST(EventHandleEdge, StaleHandleDoesNotCancelSlotReuse)
{
    // After an event fires, its slab slot can be reused by a new
    // event. A stale handle to the old event must not observe — or
    // cancel — the new occupant.
    EventQueue q;
    EventHandle stale = q.schedule(1, [] {});
    q.run();
    EXPECT_FALSE(stale.pending());
    bool fired = false;
    EventHandle fresh = q.schedule(100, [&] { fired = true; });
    stale.cancel(); // must not touch the reused slot
    EXPECT_TRUE(fresh.pending());
    q.run();
    EXPECT_TRUE(fired);
}

TEST(EventHandleEdge, ScheduleAtCurrentTickFromCallback)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        // Same-tick from inside a callback: fires this tick, after
        // every event already scheduled for it.
        q.scheduleAfter(0, [&] { order.push_back(4); });
    });
    q.schedule(10, [&] { order.push_back(2); });
    q.schedule(10, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventHandleEdge, ChainedSameTickSchedulingTerminatesInOrder)
{
    EventQueue q;
    std::vector<int> order;
    int depth = 0;
    std::function<void()> chain = [&] {
        order.push_back(depth);
        if (++depth < 5)
            q.scheduleAfter(0, chain);
    };
    q.schedule(42, chain);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(q.now(), 42u);
}

TEST(EventHandleEdge, CancelOneOfManySameTick)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<EventHandle> hs;
    for (int i = 0; i < 10; ++i)
        hs.push_back(q.schedule(5, [&order, i] { order.push_back(i); }));
    hs[3].cancel();
    hs[7].cancel();
    EXPECT_EQ(q.pendingEvents(), 8u);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 4, 5, 6, 8, 9}));
}

TEST(EventHandleEdge, DefaultHandleIsInert)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
}

TEST(EventHandleEdge, PendingCallbacksDestroyedWithQueue)
{
    // Captured state must be released when the queue dies with
    // events still pending (leak-checked under ASan in CI).
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> observer = token;
    {
        EventQueue q;
        q.schedule(10, [t = std::move(token)] { (void)*t; });
        EXPECT_FALSE(observer.expired());
    }
    EXPECT_TRUE(observer.expired());
}

TEST(EventHandleEdge, CancelReleasesCapturesImmediately)
{
    // Cancellation destroys the callback (and its captures) right
    // away rather than when the tick is eventually reached.
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> observer = token;
    EventQueue q;
    EventHandle h =
        q.schedule(1000000, [t = std::move(token)] { (void)*t; });
    EXPECT_FALSE(observer.expired());
    h.cancel();
    EXPECT_TRUE(observer.expired());
}

TEST(EventHandleEdge, PostedEventsInterleaveWithScheduled)
{
    // post() (no handle) and schedule() share one seq space; the
    // same-tick tie-break is global insertion order.
    EventQueue q;
    std::vector<int> order;
    q.post(10, [&] { order.push_back(1); });
    q.schedule(10, [&] { order.push_back(2); });
    q.postAfter(10, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventHandleEdge, OversizedCaptureStillWorks)
{
    // Captures beyond the inline SBO take the heap fallback; the
    // contract is unchanged.
    EventQueue q;
    struct Big
    {
        std::uint64_t payload[16];
    };
    Big big{};
    big.payload[0] = 1;
    big.payload[15] = 99;
    std::uint64_t seen = 0;
    EventHandle h =
        q.schedule(10, [big, &seen] { seen = big.payload[15]; });
    EXPECT_TRUE(h.pending());
    q.run();
    EXPECT_EQ(seen, 99u);
    // And cancellation of an oversized capture frees it (ASan).
    EventHandle h2 = q.schedule(20, [big, &seen] { seen = 0; });
    h2.cancel();
    q.run();
    EXPECT_EQ(seen, 99u);
}

// --- snapshot restore vs handles (DESIGN.md §13) ---------------------

TEST(EventHandleEdge, RestoreInvalidatesPreexistingHandles)
{
    EventQueue q;
    EventHandle h = q.schedule(100, [] {});
    EXPECT_TRUE(h.pending());

    snap::SnapWriter w;
    q.saveState(w);
    std::string bytes = w.take();

    // Loading bumps the slab's restore nonce: the entry's generation
    // still roundtrips bit-exactly (save→load→save is a fixed
    // point), but a handle minted before the load must read as dead
    // — its world was replaced wholesale, generation match or not.
    snap::SnapReader r(bytes);
    q.loadState(r);
    EXPECT_FALSE(h.pending());

    // ... and state identity was NOT sacrificed for that: the
    // restored queue re-serializes to the same bytes.
    snap::SnapWriter w2;
    q.saveState(w2);
    EXPECT_EQ(w2.take(), bytes);
}

TEST(EventHandleEdge, CancelAfterRestoreIsInertNoop)
{
    EventQueue q;
    EventHandle h = q.schedule(100, [] {});
    snap::SnapWriter w;
    q.saveState(w);
    std::string bytes = w.take();
    snap::SnapReader r(bytes);
    q.loadState(r);

    // A stale cancel must not touch the restored entry (which may
    // now describe a different logical event in the restored world).
    h.cancel();
    h.cancel();
    EXPECT_EQ(q.pendingEvents(), 1u);
}

TEST(EventHandleEdge, HandlesMintedAfterRestoreWork)
{
    EventQueue q;
    q.schedule(100, [] {});
    snap::SnapWriter w;
    q.saveState(w);
    std::string bytes = w.take();
    snap::SnapReader r(bytes);
    q.loadState(r);

    EventHandle fresh = q.schedule(50, [] {});
    EXPECT_TRUE(fresh.pending());
    fresh.cancel();
    EXPECT_FALSE(fresh.pending());
    EXPECT_EQ(q.pendingEvents(), 1u);
}

TEST(EventHandleEdge, FiringHollowRestoredEventPanics)
{
    // A restored queue is verify-only: its entries have no callbacks
    // (closures cannot be serialized), so running it is a programming
    // error that must be loud, not a silent no-op.
    EventQueue q;
    q.schedule(10, [] {});
    snap::SnapWriter w;
    q.saveState(w);
    std::string bytes = w.take();
    snap::SnapReader r(bytes);
    q.loadState(r);

    setThrowOnError(true);
    EXPECT_THROW(q.run(), SimError);
    setThrowOnError(false);
}

} // namespace
} // namespace xc::sim
