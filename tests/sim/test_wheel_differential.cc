/**
 * @file
 * Differential test: the timing-wheel EventQueue against the
 * original binary-heap ReferenceEventQueue.
 *
 * Both queues are driven with the same randomized operation stream —
 * schedules across every wheel horizon (same tick, near wheel,
 * cascading levels, overflow heap), cancellations, step/run/runUntil
 * mixes, and callbacks that schedule and cancel reentrantly. The
 * firing sequence, now() trajectory, and pendingEvents() counts must
 * be identical element-for-element: determinism is the product, so
 * the rewrite must be provably equivalent, not plausibly equivalent.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "reference_event_queue.h"
#include "sim/event_queue.h"

namespace xc::sim {
namespace {

/** Cheap deterministic per-event hash: decides what a callback does
 *  without consuming shared randomness at fire time. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Delay horizons that exercise every wheel level + overflow. */
Tick
pickDelay(std::uint64_t r)
{
    switch (r % 6) {
      case 0: return 0;                          // same tick
      case 1: return 1 + r % 255;                // level 0
      case 2: return 256 + r % 65000;            // level 1
      case 3: return 65536 + r % ((1u << 24) - 65536); // level 2
      case 4: return (1u << 24) + r % (1u << 26);      // overflow heap
      default: return r % 64;                    // dense near traffic
    }
}

/**
 * Drives one queue implementation with a scripted op stream. All
 * random decisions are drawn from a private engine seeded the same
 * way for both drivers; in-callback decisions hash the event id so
 * both sides act identically without sharing state.
 */
template <typename Queue, typename Handle>
struct Driver
{
    Queue q;
    std::mt19937_64 rng;
    std::vector<Handle> handles;
    std::uint64_t nextId = 0;

    // Observed behaviour, compared across implementations.
    std::vector<std::uint64_t> firedIds;
    std::vector<Tick> firedTicks;
    std::vector<Tick> nowTrace;
    std::vector<std::size_t> pendingTrace;

    explicit Driver(std::uint64_t seed) : rng(seed) {}

    void
    scheduleOne(Tick delay)
    {
        std::uint64_t id = nextId++;
        auto *self = this;
        Handle h = q.scheduleAfter(delay, [self, id] {
            self->onFire(id);
        });
        if (mix(id) & 1)
            handles.push_back(h);
    }

    void
    onFire(std::uint64_t id)
    {
        firedIds.push_back(id);
        firedTicks.push_back(q.now());
        std::uint64_t h = mix(id ^ 0x9e3779b97f4a7c15ull);
        // Reentrant scheduling: ~1/4 of events spawn a child, some at
        // the very tick that is currently firing.
        if ((h & 3) == 0) {
            Tick delay = (h >> 2) % 5 == 0 ? 0 : pickDelay(h >> 8);
            scheduleOne(delay);
        }
        // Reentrant cancellation: ~1/8 of events cancel a pending
        // handle (possibly one already fired or cancelled).
        if ((h & 7) == 5 && !handles.empty()) {
            handles[(h >> 16) % handles.size()].cancel();
        }
    }

    void
    runOps(int nops)
    {
        for (int i = 0; i < nops; ++i) {
            std::uint64_t r = rng();
            switch (r % 10) {
              case 0:
              case 1:
              case 2:
              case 3:
                scheduleOne(pickDelay(rng()));
                break;
              case 4:
                if (!handles.empty())
                    handles[rng() % handles.size()].cancel();
                break;
              case 5:
                q.step();
                break;
              case 6:
                q.runUntil(q.now() + rng() % 512);
                break;
              case 7:
                q.runUntil(q.now() + rng() % (1u << 25));
                break;
              case 8:
                q.run(1 + rng() % 8);
                break;
              case 9:
                // Burst: several events, mixed horizons, then a
                // bounded drain.
                for (int k = 0; k < 8; ++k)
                    scheduleOne(pickDelay(rng()));
                q.run(4);
                break;
            }
            nowTrace.push_back(q.now());
            pendingTrace.push_back(q.pendingEvents());
        }
        // Drain what remains (bounded: self-scheduling is
        // subcritical, so this terminates).
        q.run(1u << 22);
        nowTrace.push_back(q.now());
        pendingTrace.push_back(q.pendingEvents());
    }
};

using WheelDriver = Driver<EventQueue, EventHandle>;
using RefDriver =
    Driver<testref::ReferenceEventQueue, testref::ReferenceEventHandle>;

void
runDifferential(std::uint64_t seed, int nops)
{
    WheelDriver wheel(seed);
    RefDriver ref(seed);
    wheel.runOps(nops);
    ref.runOps(nops);

    ASSERT_EQ(wheel.firedIds.size(), ref.firedIds.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < ref.firedIds.size(); ++i) {
        ASSERT_EQ(wheel.firedIds[i], ref.firedIds[i])
            << "seed " << seed << ": firing order diverged at event "
            << i;
        ASSERT_EQ(wheel.firedTicks[i], ref.firedTicks[i])
            << "seed " << seed << ": firing time diverged at event "
            << i;
    }
    ASSERT_EQ(wheel.nowTrace, ref.nowTrace) << "seed " << seed;
    ASSERT_EQ(wheel.pendingTrace, ref.pendingTrace) << "seed " << seed;
}

TEST(WheelDifferential, RandomOpStreamsMatchReference)
{
    // ~10^5 operations across seeds; every op checks now() and
    // pendingEvents(), every fired event checks order and tick.
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 42ull, 0xdeadbeefull})
        runDifferential(seed, 20000);
}

TEST(WheelDifferential, SameTickBurstsMatchReference)
{
    // Heavy same-tick traffic: insertion order within a tick is the
    // tie-break contract.
    WheelDriver wheel(7);
    RefDriver ref(7);
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 50; ++i) {
            wheel.scheduleOne(i % 3);
            ref.scheduleOne(i % 3);
        }
        wheel.q.run(60);
        ref.q.run(60);
    }
    wheel.q.run();
    ref.q.run();
    ASSERT_EQ(wheel.firedIds, ref.firedIds);
    ASSERT_EQ(wheel.firedTicks, ref.firedTicks);
}

TEST(WheelDifferential, FarFutureOverflowPromotionMatchesReference)
{
    // Far-future events (overflow heap) interleaved with near events
    // landing on the same ticks: the merge across wheel and heap must
    // preserve global (when, seq) order.
    WheelDriver wheel(11);
    RefDriver ref(11);
    auto script = [](auto &d) {
        const Tick far = (Tick(1) << 24) + 12345;
        for (int i = 0; i < 32; ++i)
            d.scheduleOne(far + (i % 4));
        d.q.runUntil(far - 7);
        // Now the far tick is near: schedule onto the same ticks so
        // heap-resident and wheel-resident events collide.
        Tick left = far - d.q.now();
        for (int i = 0; i < 32; ++i)
            d.scheduleOne(left + (i % 4));
        d.q.run();
        // Cross several hyperblock boundaries in one jump.
        d.scheduleOne(Tick(3) << 25);
        d.q.run();
    };
    script(wheel);
    script(ref);
    ASSERT_EQ(wheel.firedIds, ref.firedIds);
    ASSERT_EQ(wheel.firedTicks, ref.firedTicks);
    ASSERT_EQ(wheel.q.now(), ref.q.now());
    ASSERT_EQ(wheel.q.pendingEvents(), ref.q.pendingEvents());
}

TEST(WheelDifferential, CancellationStormsMatchReference)
{
    WheelDriver wheel(13);
    RefDriver ref(13);
    auto script = [](auto &d) {
        for (int round = 0; round < 100; ++round) {
            std::size_t before = d.handles.size();
            for (int i = 0; i < 20; ++i)
                d.scheduleOne(pickDelay(d.rng()));
            // Cancel roughly half of the new handles, some twice.
            for (std::size_t i = before; i < d.handles.size(); ++i) {
                if (i % 2 == 0)
                    d.handles[i].cancel();
                if (i % 4 == 0)
                    d.handles[i].cancel();
            }
            d.q.runUntil(d.q.now() + 500);
        }
        d.q.run();
    };
    script(wheel);
    script(ref);
    ASSERT_EQ(wheel.firedIds, ref.firedIds);
    ASSERT_EQ(wheel.firedTicks, ref.firedTicks);
    ASSERT_EQ(wheel.q.pendingEvents(), ref.q.pendingEvents());
}

} // namespace
} // namespace xc::sim
