/**
 * @file
 * Control-plane wire protocol: frame codec roundtrips, every
 * truncation prefix, hostile lengths, seeded byte-flip fuzzing, the
 * command-log grammar, a live CtlServer loopback, and the Session
 * command dispatcher. The invariant under test: malformed input of
 * any shape yields a typed error (CtlError / kReplyErr / latched
 * parser), never undefined behavior.
 */

#include <gtest/gtest.h>

#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/ctl.h"

namespace xc::test {
namespace {

using namespace sim::ctl;

std::vector<Frame>
parseAll(const std::string &bytes)
{
    FrameParser p;
    std::vector<Frame> out;
    EXPECT_TRUE(p.feed(bytes.data(), bytes.size(), out));
    return out;
}

TEST(CtlFrame, RoundtripsTypesAndPayloads)
{
    std::string bytes = encodeFrame(kPing, "") +
                        encodeFrame(kSpawn, "web0") +
                        encodeFrame(kReplyOk, std::string(1000, 'x'));
    auto frames = parseAll(bytes);
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, kPing);
    EXPECT_EQ(frames[0].payload, "");
    EXPECT_EQ(frames[1].type, kSpawn);
    EXPECT_EQ(frames[1].payload, "web0");
    EXPECT_EQ(frames[2].type, kReplyOk);
    EXPECT_EQ(frames[2].payload.size(), 1000u);
}

TEST(CtlFrame, ByteAtATimeFeedFindsTheSameFrames)
{
    std::string bytes =
        encodeFrame(kMech, "") + encodeFrame(kKill, "c9");
    FrameParser p;
    std::vector<Frame> out;
    for (char ch : bytes)
        ASSERT_TRUE(p.feed(&ch, 1, out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].payload, "c9");
    EXPECT_EQ(p.buffered(), 0u);
}

TEST(CtlFrame, EveryTruncationPrefixJustBuffers)
{
    std::string bytes = encodeFrame(kInjectFaults, "0.25");
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        FrameParser p;
        std::vector<Frame> out;
        ASSERT_TRUE(p.feed(bytes.data(), cut, out)) << cut;
        EXPECT_TRUE(out.empty()) << cut;
        EXPECT_FALSE(p.failed()) << cut;
        EXPECT_EQ(p.buffered(), cut) << cut;
        // Completing the frame later still works.
        ASSERT_TRUE(
            p.feed(bytes.data() + cut, bytes.size() - cut, out));
        ASSERT_EQ(out.size(), 1u) << cut;
        EXPECT_EQ(out[0].payload, "0.25") << cut;
    }
}

TEST(CtlFrame, HostileLengthLatchesTheParser)
{
    // type=1, len=2^31: far past kMaxPayload.
    unsigned char evil[8] = {1, 0, 0, 0, 0, 0, 0, 0x80};
    FrameParser p;
    std::vector<Frame> out;
    EXPECT_FALSE(p.feed(evil, sizeof evil, out));
    EXPECT_TRUE(p.failed());
    EXPECT_NE(p.error().find("exceeds"), std::string::npos);
    // Latched: even a pristine frame is rejected now.
    std::string good = encodeFrame(kPing, "");
    EXPECT_FALSE(p.feed(good.data(), good.size(), out));
    EXPECT_TRUE(out.empty());
}

TEST(CtlFrame, LengthJustOverTheLimitFails)
{
    unsigned char hdr[8] = {1, 0, 0, 0, 0, 0, 0, 0};
    std::uint32_t len = kMaxPayload + 1;
    std::memcpy(hdr + 4, &len, 4);
    FrameParser p;
    std::vector<Frame> out;
    EXPECT_FALSE(p.feed(hdr, sizeof hdr, out));
    EXPECT_TRUE(p.failed());
}

TEST(CtlFrame, EncodeRejectsOversizePayload)
{
    EXPECT_THROW(
        encodeFrame(kSpawn, std::string(kMaxPayload + 1, 'a')),
        CtlError);
    // At the limit is legal.
    EXPECT_NO_THROW(encodeFrame(kSpawn, std::string(kMaxPayload, 'a')));
}

TEST(CtlFrame, ThousandSeededByteFlipsNeverMisbehave)
{
    const std::string base = encodeFrame(kStatus, "") +
                             encodeFrame(kSpawn, "container-name") +
                             encodeFrame(kInjectFaults, "0.125") +
                             encodeFrame(kReplyErr, "some reason");
    std::uint64_t rng = 0x9e3779b97f4a7c15ull; // fixed seed
    auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
    };
    for (int iter = 0; iter < 1000; ++iter) {
        std::string bytes = base;
        std::size_t pos = next() % bytes.size();
        bytes[pos] =
            static_cast<char>(bytes[pos] ^ (1u << (next() % 8)));
        FrameParser p;
        std::vector<Frame> out;
        bool ok = p.feed(bytes.data(), bytes.size(), out);
        // Either the stream still parses (the flip hit a payload or
        // a type byte) or the parser latched a typed error — and the
        // two verdicts must agree.
        EXPECT_EQ(ok, !p.failed()) << iter;
        if (!ok)
            EXPECT_FALSE(p.error().empty()) << iter;
        for (const Frame &f : out)
            EXPECT_LE(f.payload.size(), kMaxPayload) << iter;
    }
}

// --- command log ------------------------------------------------------

TEST(CtlLog, FormatParseRoundtrip)
{
    std::string text = "# xc-ctl-log v1 quantum=1000\n";
    std::vector<LogEntry> entries = {
        {0, kPing, ""},
        {1000, kSpawn, "web0"},
        {1000, kInjectFaults, "0.5"},
        {5000, kResume, ""},
    };
    for (const LogEntry &e : entries)
        text += formatLogLine(e) + "\n";
    CtlLog log = parseCtlLogText(text);
    EXPECT_EQ(log.quantum, 1000u);
    ASSERT_EQ(log.entries.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(log.entries[i].tick, entries[i].tick) << i;
        EXPECT_EQ(log.entries[i].type, entries[i].type) << i;
        EXPECT_EQ(log.entries[i].payload, entries[i].payload) << i;
    }
}

TEST(CtlLog, RejectsMalformedLogs)
{
    // No header.
    EXPECT_THROW(parseCtlLogText("0 1 -\n"), CtlError);
    // Wrong version.
    EXPECT_THROW(parseCtlLogText("# xc-ctl-log v2 quantum=10\n"),
                 CtlError);
    const std::string hdr = "# xc-ctl-log v1 quantum=1000\n";
    // Odd-length hex payload.
    EXPECT_THROW(parseCtlLogText(hdr + "0 1 abc\n"), CtlError);
    // Non-hex payload bytes.
    EXPECT_THROW(parseCtlLogText(hdr + "0 1 zz\n"), CtlError);
    // Ticks must be non-decreasing (commands execute in order).
    EXPECT_THROW(parseCtlLogText(hdr + "2000 1 -\n1000 1 -\n"),
                 CtlError);
    // Missing fields.
    EXPECT_THROW(parseCtlLogText(hdr + "1000\n"), CtlError);
    // Zero quantum would wedge the poll loop.
    EXPECT_THROW(parseCtlLogText("# xc-ctl-log v1 quantum=0\n"),
                 CtlError);
}

TEST(CtlLog, FuzzedLogTextEitherParsesOrThrows)
{
    const std::string base = "# xc-ctl-log v1 quantum=1000\n"
                             "0 1 -\n"
                             "1000 8 77656230\n"
                             "2000 10 -\n";
    std::uint64_t rng = 42;
    auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
    };
    int parsed = 0, rejected = 0;
    for (int iter = 0; iter < 1000; ++iter) {
        std::string text = base;
        std::size_t pos = next() % text.size();
        text[pos] = static_cast<char>(next() % 256);
        try {
            CtlLog log = parseCtlLogText(text);
            ++parsed;
            for (std::size_t i = 1; i < log.entries.size(); ++i)
                EXPECT_GE(log.entries[i].tick,
                          log.entries[i - 1].tick);
        } catch (const CtlError &) {
            ++rejected; // typed rejection is the contract
        }
    }
    // The corpus must exercise both outcomes.
    EXPECT_GT(parsed, 0);
    EXPECT_GT(rejected, 0);
}

// --- server loopback --------------------------------------------------

int
connectTo(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    return fd;
}

TEST(CtlServer, LoopbackRequestReply)
{
    std::string path = ::testing::TempDir() + "xc_ctl_loop.sock";
    ::unlink(path.c_str());
    CtlServer server(path);
    int fd = connectTo(path);

    std::string req = encodeFrame(kStatus, "");
    ASSERT_EQ(::write(fd, req.data(), req.size()),
              static_cast<ssize_t>(req.size()));
    ASSERT_TRUE(server.waitForRequests(5000));
    auto reqs = server.drain();
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].type, kStatus);
    EXPECT_TRUE(reqs[0].payload.empty());

    server.post(reqs[0].client, kReplyOk, "tick=0");
    FrameParser p;
    std::vector<Frame> frames;
    char buf[256];
    while (frames.empty()) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        ASSERT_GT(n, 0);
        ASSERT_TRUE(p.feed(buf, static_cast<std::size_t>(n), frames));
    }
    EXPECT_EQ(frames[0].type, kReplyOk);
    EXPECT_EQ(frames[0].payload, "tick=0");
    ::close(fd);
}

TEST(CtlServer, HostileClientIsDroppedOthersSurvive)
{
    std::string path = ::testing::TempDir() + "xc_ctl_evil.sock";
    ::unlink(path.c_str());
    CtlServer server(path);
    int evil = connectTo(path);
    int good = connectTo(path);

    unsigned char bomb[8] = {1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::write(evil, bomb, sizeof bomb), 8);
    std::string req = encodeFrame(kPing, "");
    ASSERT_EQ(::write(good, req.data(), req.size()),
              static_cast<ssize_t>(req.size()));

    ASSERT_TRUE(server.waitForRequests(5000));
    auto reqs = server.drain();
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].type, kPing);

    // The hostile connection is closed by the server.
    char c;
    EXPECT_EQ(::read(evil, &c, 1), 0);
    ::close(evil);
    ::close(good);
}

// --- session dispatch -------------------------------------------------

TEST(CtlSession, ExecuteDispatchesToHooks)
{
    sim::EventQueue q;
    SessionHooks hooks;
    hooks.status = [] { return std::string("running"); };
    double seenRate = -1;
    hooks.injectFaults = [&](double rate) {
        seenRate = rate;
        return std::string();
    };
    std::string lastSpawn;
    hooks.spawn = [&](const std::string &name) {
        lastSpawn = name;
        return std::string();
    };
    Session s(q, SessionOptions{}, hooks);

    auto [ok1, r1] = s.execute(kPing, "");
    EXPECT_TRUE(ok1);
    EXPECT_EQ(r1, "pong");
    auto [ok2, r2] = s.execute(kStatus, "");
    EXPECT_TRUE(ok2);
    EXPECT_EQ(r2, "running");
    auto [ok3, r3] = s.execute(kInjectFaults, "0.25");
    EXPECT_TRUE(ok3);
    EXPECT_DOUBLE_EQ(seenRate, 0.25);
    auto [ok4, r4] = s.execute(kSpawn, "webX");
    EXPECT_TRUE(ok4);
    EXPECT_EQ(lastSpawn, "webX");
    EXPECT_EQ(s.executed(), 4u);
}

TEST(CtlSession, ExecuteRejectsBadRequestsTyped)
{
    sim::EventQueue q;
    SessionHooks hooks;
    hooks.status = [] { return std::string("ok"); };
    hooks.injectFaults = [](double) { return std::string(); };
    hooks.spawn = [](const std::string &) { return std::string(); };
    Session s(q, SessionOptions{}, hooks);

    // Unset hook.
    EXPECT_FALSE(s.execute(kMech, "").first);
    // Queries take no payload.
    EXPECT_FALSE(s.execute(kStatus, "junk").first);
    // Fault rate must be a double in [0, 1].
    EXPECT_FALSE(s.execute(kInjectFaults, "nonsense").first);
    EXPECT_FALSE(s.execute(kInjectFaults, "1.5").first);
    EXPECT_FALSE(s.execute(kInjectFaults, "-0.1").first);
    EXPECT_FALSE(s.execute(kInjectFaults, "").first);
    // Spawn/kill need a name.
    EXPECT_FALSE(s.execute(kSpawn, "").first);
    EXPECT_FALSE(s.execute(kKill, "x").first); // hook unset
    // Unknown command type.
    auto [ok, reason] = s.execute(9999, "");
    EXPECT_FALSE(ok);
    EXPECT_NE(reason.find("unknown"), std::string::npos);
}

TEST(CtlSession, RejectsContradictoryOptions)
{
    sim::EventQueue q;
    SessionOptions opt;
    opt.socketPath = "/tmp/a.sock";
    opt.replayPath = "/tmp/a.log";
    EXPECT_THROW(Session(q, opt, SessionHooks{}), CtlError);
    SessionOptions zero;
    zero.quantum = 0;
    EXPECT_THROW(Session(q, zero, SessionHooks{}), CtlError);
}

} // namespace
} // namespace xc::test
