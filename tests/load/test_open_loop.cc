/**
 * @file
 * Open-loop arrival determinism (DESIGN.md §17). The entire source
 * of open-loop randomness is OpenLoopDriver::schedule(), a pure
 * function of (config, seed, window) — so these tests pin the
 * properties fig_cluster's golden digests depend on: byte-identical
 * schedules across calls and across host threads (the -j1 vs -j4
 * invariant), Poisson inter-arrival statistics, MMPP seed stability,
 * and diurnal window discipline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <thread>
#include <vector>

#include "load/open_loop.h"

namespace xc::load {
namespace {

ArrivalConfig
poissonCfg(double rate)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Poisson;
    cfg.ratePerSec = rate;
    return cfg;
}

TEST(OpenLoopSchedule, PureFunctionOfConfigSeedWindow)
{
    ArrivalConfig cfg = poissonCfg(2000.0);
    auto a = OpenLoopDriver::schedule(cfg, 42, 0, sim::kTicksPerSec);
    auto b = OpenLoopDriver::schedule(cfg, 42, 0, sim::kTicksPerSec);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(OpenLoopSchedule, IdenticalAcrossHostThreads)
{
    // The -j1 vs -j4 golden invariant in miniature: four host
    // threads generating the same (config, seed, window) must
    // produce byte-identical schedules — no hidden global RNG.
    ArrivalConfig cfg = poissonCfg(5000.0);
    auto ref = OpenLoopDriver::schedule(cfg, 7, 0, sim::kTicksPerSec);

    std::vector<std::vector<sim::Tick>> got(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&, t] {
            got[t] = OpenLoopDriver::schedule(cfg, 7, 0,
                                              sim::kTicksPerSec);
        });
    for (std::thread &th : threads)
        th.join();
    for (const auto &s : got)
        EXPECT_EQ(s, ref);
}

TEST(OpenLoopSchedule, StrictlyIncreasingWithinWindow)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Mmpp,
                             ArrivalKind::Diurnal}) {
        ArrivalConfig cfg;
        cfg.kind = kind;
        cfg.ratePerSec = 3000.0;
        sim::Tick start = 10 * sim::kTicksPerMs;
        sim::Tick end = start + sim::kTicksPerSec;
        auto s = OpenLoopDriver::schedule(cfg, 3, start, end);
        ASSERT_FALSE(s.empty());
        EXPECT_GE(s.front(), start);
        EXPECT_LT(s.back(), end);
        EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
        for (std::size_t i = 1; i < s.size(); ++i)
            EXPECT_GT(s[i], s[i - 1]);
    }
}

TEST(OpenLoopSchedule, PoissonInterArrivalMeanConverges)
{
    // rate = 1000/s over 100 simulated seconds: the mean
    // inter-arrival time converges to 1 ms and the count to
    // rate * window (a few percent of slack for a fixed seed).
    const double rate = 1000.0;
    const sim::Tick window = 100 * sim::kTicksPerSec;
    auto s =
        OpenLoopDriver::schedule(poissonCfg(rate), 42, 0, window);
    const double expected = rate * sim::ticksToSeconds(window);
    EXPECT_NEAR(static_cast<double>(s.size()), expected,
                0.03 * expected);

    double sumGaps = 0;
    for (std::size_t i = 1; i < s.size(); ++i)
        sumGaps += static_cast<double>(s[i] - s[i - 1]);
    double meanGap = sumGaps / static_cast<double>(s.size() - 1);
    EXPECT_NEAR(meanGap, static_cast<double>(sim::kTicksPerMs),
                0.03 * static_cast<double>(sim::kTicksPerMs));
}

TEST(OpenLoopSchedule, PoissonDifferentSeedsDiffer)
{
    ArrivalConfig cfg = poissonCfg(1000.0);
    auto a = OpenLoopDriver::schedule(cfg, 1, 0, sim::kTicksPerSec);
    auto b = OpenLoopDriver::schedule(cfg, 2, 0, sim::kTicksPerSec);
    EXPECT_NE(a, b);
}

TEST(OpenLoopSchedule, MmppSeedStability)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Mmpp;
    cfg.ratePerSec = 2000.0;
    auto a = OpenLoopDriver::schedule(cfg, 9, 0, sim::kTicksPerSec);
    auto b = OpenLoopDriver::schedule(cfg, 9, 0, sim::kTicksPerSec);
    auto c = OpenLoopDriver::schedule(cfg, 10, 0, sim::kTicksPerSec);
    EXPECT_EQ(a, b);  // same seed: bursts land on the same ticks
    EXPECT_NE(a, c);  // different seed: different burst pattern
}

TEST(OpenLoopSchedule, MmppLongRunRateMatchesConfig)
{
    // The two-state modulation is normalized so the long-run mean
    // stays ratePerSec regardless of burst/calm factors.
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Mmpp;
    cfg.ratePerSec = 1000.0;
    const sim::Tick window = 200 * sim::kTicksPerSec;
    auto s = OpenLoopDriver::schedule(cfg, 42, 0, window);
    const double expected =
        cfg.ratePerSec * sim::ticksToSeconds(window);
    EXPECT_NEAR(static_cast<double>(s.size()), expected,
                0.10 * expected);
}

TEST(OpenLoopSchedule, MmppIsBurstierThanPoisson)
{
    // Squared coefficient of variation of inter-arrival gaps:
    // exponential gaps give ~1; Markov-modulated bursts push it
    // well above.
    auto scv = [](const std::vector<sim::Tick> &s) {
        double sum = 0, sumSq = 0;
        for (std::size_t i = 1; i < s.size(); ++i) {
            double g = static_cast<double>(s[i] - s[i - 1]);
            sum += g;
            sumSq += g * g;
        }
        double n = static_cast<double>(s.size() - 1);
        double mean = sum / n;
        return (sumSq / n - mean * mean) / (mean * mean);
    };
    const sim::Tick window = 50 * sim::kTicksPerSec;
    auto poisson =
        OpenLoopDriver::schedule(poissonCfg(2000.0), 42, 0, window);
    ArrivalConfig mcfg;
    mcfg.kind = ArrivalKind::Mmpp;
    mcfg.ratePerSec = 2000.0;
    auto mmpp = OpenLoopDriver::schedule(mcfg, 42, 0, window);
    EXPECT_NEAR(scv(poisson), 1.0, 0.2);
    EXPECT_GT(scv(mmpp), 1.5 * scv(poisson));
}

TEST(OpenLoopSchedule, DiurnalRateSwingsAroundTheMean)
{
    // With depth 0.8 and one full period per window, arrivals in
    // the peak half-period far outnumber the trough half-period,
    // while the total still tracks ratePerSec.
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Diurnal;
    cfg.ratePerSec = 5000.0;
    const sim::Tick window = cfg.diurnalPeriod * 50;
    auto s = OpenLoopDriver::schedule(cfg, 42, 0, window);
    const double expected =
        cfg.ratePerSec * sim::ticksToSeconds(window);
    EXPECT_NEAR(static_cast<double>(s.size()), expected,
                0.10 * expected);

    // Bucket arrivals by phase within the period: max bucket must
    // dominate min bucket (the sinusoid is visible, not washed out).
    constexpr int kBuckets = 8;
    std::array<std::uint64_t, kBuckets> bucket{};
    for (sim::Tick t : s)
        ++bucket[(t % cfg.diurnalPeriod) * kBuckets /
                 cfg.diurnalPeriod];
    auto [mn, mx] = std::minmax_element(bucket.begin(), bucket.end());
    ASSERT_GT(*mn, 0u);
    EXPECT_GT(static_cast<double>(*mx),
              3.0 * static_cast<double>(*mn));
}

} // namespace
} // namespace xc::load
