#include <gtest/gtest.h>

#include "apps/images.h"
#include "apps/nginx.h"
#include "load/driver.h"
#include "runtimes/runtime.h"

namespace xc::test {
namespace {

using fault::FaultKind;
using fault::FaultPlan;

/** NGINX on registry-built Docker, driven with client robustness
 *  enabled, under an arbitrary fault plan. */
load::LoadResult
runUnderFaults(const FaultPlan &plan, std::uint64_t driver_seed = 1,
               sim::Tick timeout = 25 * sim::kTicksPerMs)
{
    runtimes::RuntimeConfig cfg;
    cfg.faults = plan;
    auto rt = runtimes::makeRuntime("docker", cfg);
    EXPECT_NE(rt, nullptr);

    runtimes::ContainerOpts copts;
    copts.name = "web";
    copts.image = apps::glibcImage("img");
    copts.vcpus = 2;
    runtimes::RtContainer *c = rt->createContainer(copts);
    EXPECT_NE(c, nullptr);
    apps::NginxApp::Config ncfg;
    ncfg.workers = 2;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*c);
    rt->exposePort(c, 9000, 80);

    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt->hostIp(), 9000}, 8,
        150 * sim::kTicksPerMs);
    spec.requestTimeout = timeout;
    spec.retryBudget = 3;

    load::ClosedLoopDriver driver(rt->fabric(), spec, driver_seed);
    rt->machine().events().schedule(10 * sim::kTicksPerMs,
                                    [&] { driver.start(); });
    rt->machine().events().runUntil(10 * sim::kTicksPerMs +
                                    spec.warmup + spec.duration +
                                    80 * sim::kTicksPerMs);
    return driver.collect();
}

TEST(DriverFaults, NoFaultsMeansZeroTaxonomyEvenWithTimeoutsArmed)
{
    auto r = runUnderFaults(FaultPlan{});
    EXPECT_GT(r.requests, 0u);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.errorDetail.timeouts, 0u);
    EXPECT_EQ(r.errorDetail.resets, 0u);
    EXPECT_EQ(r.errorDetail.refused, 0u);
    EXPECT_EQ(r.errorDetail.truncated, 0u);
    EXPECT_EQ(r.errorDetail.retries, 0u);
    EXPECT_EQ(r.errors, r.errorDetail.aggregate());
}

TEST(DriverFaults, PacketLossSurfacesAsTimeoutsAndRetries)
{
    FaultPlan plan;
    plan.at(FaultKind::PacketLoss).rate = 0.08;
    auto r = runUnderFaults(plan);
    // Service degraded, not dead.
    EXPECT_GT(r.requests, 0u);
    EXPECT_GT(r.errorDetail.timeouts, 0u);
    EXPECT_GT(r.errorDetail.retries, 0u);
    EXPECT_EQ(r.errors, r.errorDetail.aggregate());
}

TEST(DriverFaults, ConnResetsSurfaceAsResets)
{
    FaultPlan plan;
    plan.at(FaultKind::ConnReset).rate = 0.03;
    auto r = runUnderFaults(plan);
    EXPECT_GT(r.requests, 0u);
    EXPECT_GT(r.errorDetail.resets, 0u);
    EXPECT_GT(r.errors, 0u);
}

TEST(DriverFaults, LinkPartitionsSurfaceAsRefusedConnects)
{
    FaultPlan plan;
    plan.at(FaultKind::LinkPartition).rate = 0.3;
    auto r = runUnderFaults(plan);
    EXPECT_GT(r.errorDetail.refused, 0u);
}

TEST(DriverFaults, SameSeedRunsAreIdentical)
{
    FaultPlan plan = FaultPlan::uniform(0.01, 5);
    auto r1 = runUnderFaults(plan, 3);
    auto r2 = runUnderFaults(plan, 3);
    EXPECT_EQ(r1.requests, r2.requests);
    EXPECT_EQ(r1.errors, r2.errors);
    EXPECT_EQ(r1.errorDetail.timeouts, r2.errorDetail.timeouts);
    EXPECT_EQ(r1.errorDetail.resets, r2.errorDetail.resets);
    EXPECT_EQ(r1.errorDetail.refused, r2.errorDetail.refused);
    EXPECT_EQ(r1.errorDetail.truncated, r2.errorDetail.truncated);
    EXPECT_EQ(r1.errorDetail.retries, r2.errorDetail.retries);
    EXPECT_DOUBLE_EQ(r1.throughput, r2.throughput);
    EXPECT_DOUBLE_EQ(r1.p50LatencyUs, r2.p50LatencyUs);
    EXPECT_DOUBLE_EQ(r1.p99LatencyUs, r2.p99LatencyUs);
}

TEST(DriverFaults, DifferentFaultSeedsDiffer)
{
    auto r1 = runUnderFaults(FaultPlan::uniform(0.02, 5));
    auto r2 = runUnderFaults(FaultPlan::uniform(0.02, 6));
    // Same rates, different schedule: some observable difference.
    EXPECT_TRUE(r1.requests != r2.requests ||
                r1.errors != r2.errors ||
                r1.p99LatencyUs != r2.p99LatencyUs);
}

TEST(DriverFaults, HigherLossRatesDegradeTailLatency)
{
    auto clean = runUnderFaults(FaultPlan{});
    FaultPlan lossy;
    lossy.at(FaultKind::PacketLoss).rate = 0.08;
    auto faulty = runUnderFaults(lossy);
    EXPECT_GT(faulty.p99LatencyUs, clean.p99LatencyUs);
    EXPECT_LT(faulty.throughput, clean.throughput);
}

TEST(DriverFaults, ErrorTaxonomyRendersInMechReportAndJson)
{
    FaultPlan plan;
    plan.at(FaultKind::ConnReset).rate = 0.05;
    auto r = runUnderFaults(plan);
    ASSERT_GT(r.errors, 0u);
    EXPECT_NE(r.mechReport().find("client errors"),
              std::string::npos);
    EXPECT_NE(r.mechJson().find("\"errors\""), std::string::npos);
    EXPECT_NE(r.mechJson().find("\"resets\""), std::string::npos);

    // Clean run: the report stays byte-compatible with PR 1 (no
    // error section at all).
    auto clean = runUnderFaults(FaultPlan{});
    EXPECT_EQ(clean.mechReport().find("client errors"),
              std::string::npos);
    EXPECT_EQ(clean.mechJson().find("\"errors\""),
              std::string::npos);
}

} // namespace
} // namespace xc::test
