#include <gtest/gtest.h>

#include "apps/images.h"
#include "apps/nginx.h"
#include "load/driver.h"
#include "load/iperf.h"
#include "load/unixbench.h"
#include "runtimes/docker.h"
#include "runtimes/x_container.h"

namespace xc::test {
namespace {

using namespace xc;

struct WebRig
{
    WebRig() : rt({})
    {
        runtimes::ContainerOpts copts;
        copts.name = "web";
        copts.image = apps::glibcImage("img");
        copts.vcpus = 2;
        c = rt.createContainer(copts);
        apps::NginxApp::Config ncfg;
        ncfg.workers = 2;
        nginx = std::make_unique<apps::NginxApp>(ncfg);
        nginx->deploy(*c);
        rt.exposePort(c, 9000, 80);
    }

    load::LoadResult
    run(load::WorkloadSpec spec)
    {
        load::ClosedLoopDriver driver(rt.fabric(), spec);
        rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                       [&] { driver.start(); });
        rt.machine().events().runUntil(
            10 * sim::kTicksPerMs + spec.warmup + spec.duration +
            50 * sim::kTicksPerMs);
        return driver.collect();
    }

    runtimes::DockerRuntime rt;
    runtimes::RtContainer *c = nullptr;
    std::unique_ptr<apps::NginxApp> nginx;
};

TEST(LoadDriver, MeasuresOnlyInsideWindow)
{
    WebRig rig;
    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rig.rt.hostIp(), 9000}, 4,
        100 * sim::kTicksPerMs);
    auto r = rig.run(spec);
    // Total served includes warmup; counted requests do not.
    EXPECT_GT(rig.nginx->requestsServed(), r.requests);
    EXPECT_GT(r.requests, 0u);
    EXPECT_NEAR(r.seconds, 0.1, 1e-9);
}

TEST(LoadDriver, LatencyPercentilesAreOrdered)
{
    WebRig rig;
    auto r = rig.run(load::wrkSpec(
        guestos::SockAddr{rig.rt.hostIp(), 9000}, 16,
        100 * sim::kTicksPerMs));
    EXPECT_GT(r.p50LatencyUs, 0.0);
    EXPECT_LE(r.p50LatencyUs, r.p99LatencyUs);
    EXPECT_GE(r.meanLatencyUs, 100.0); // at least the wire RTT
}

TEST(LoadDriver, MoreConnectionsMoreThroughputUntilSaturation)
{
    WebRig rig1;
    auto r4 = rig1.run(load::wrkSpec(
        guestos::SockAddr{rig1.rt.hostIp(), 9000}, 4,
        100 * sim::kTicksPerMs));
    WebRig rig2;
    auto r32 = rig2.run(load::wrkSpec(
        guestos::SockAddr{rig2.rt.hostIp(), 9000}, 32,
        100 * sim::kTicksPerMs));
    EXPECT_GT(r32.throughput, 2 * r4.throughput);
}

TEST(LoadDriver, AbReconnectsPerRequest)
{
    // Non-keepalive load: the server sees roughly one connection per
    // request (thundering accept path).
    WebRig rig;
    auto r = rig.run(load::abSpec(
        guestos::SockAddr{rig.rt.hostIp(), 9000}, 8,
        80 * sim::kTicksPerMs));
    EXPECT_GT(r.requests, 20u);
    // ab throughput < wrk throughput at the same concurrency.
    WebRig rig2;
    auto rk = rig2.run(load::wrkSpec(
        guestos::SockAddr{rig2.rt.hostIp(), 9000}, 8,
        80 * sim::kTicksPerMs));
    EXPECT_GT(rk.throughput, r.throughput);
}

TEST(LoadDriver, ConnectionErrorsAreCountedAndRetried)
{
    runtimes::DockerRuntime rt({});
    // Nothing listening: connects are refused but retried.
    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 9000}, 2,
        50 * sim::kTicksPerMs);
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    driver.start();
    rt.machine().events().runUntil(200 * sim::kTicksPerMs);
    auto r = driver.collect();
    EXPECT_EQ(r.requests, 0u);
    EXPECT_GT(r.errors, 0u);
}

using MicroParam = std::tuple<load::MicroKind, int>;

class MicroSweep : public ::testing::TestWithParam<MicroParam>
{
};

TEST_P(MicroSweep, ProducesPositiveRatesAndScalesWithCopies)
{
    auto [kind, copies] = GetParam();
    runtimes::DockerRuntime rt({});
    auto r = load::runMicro(rt, kind, 60 * sim::kTicksPerMs, copies);
    EXPECT_GT(r.ops, 0u);
    EXPECT_GT(r.opsPerSec, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MicroSweep,
    ::testing::Combine(
        ::testing::Values(load::MicroKind::Syscall,
                          load::MicroKind::Execl,
                          load::MicroKind::FileCopy,
                          load::MicroKind::PipeThroughput,
                          load::MicroKind::ContextSwitch,
                          load::MicroKind::ProcessCreation),
        ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<MicroParam> &info) {
        std::string name =
            load::microKindName(std::get<0>(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_x" + std::to_string(std::get<1>(info.param));
    });

TEST(Micro, ConcurrentCopiesScaleThroughput)
{
    runtimes::DockerRuntime rt1({});
    auto r1 = load::runMicro(rt1, load::MicroKind::Syscall,
                             60 * sim::kTicksPerMs, 1);
    runtimes::DockerRuntime rt4({});
    auto r4 = load::runMicro(rt4, load::MicroKind::Syscall,
                             60 * sim::kTicksPerMs, 4);
    EXPECT_GT(r4.opsPerSec, 3.2 * r1.opsPerSec);
}

TEST(Iperf, DeliversGigabitsAndRespectsDuration)
{
    runtimes::DockerRuntime rt({});
    auto r = load::runIperf(rt, 100 * sim::kTicksPerMs, 1);
    EXPECT_GT(r.gbitPerSec, 1.0);
    EXPECT_LT(r.gbitPerSec, 100.0);
    EXPECT_GT(r.bytes, 1u << 20);
}

TEST(Iperf, MoreStreamsMoreThroughput)
{
    runtimes::DockerRuntime rt1({});
    auto r1 = load::runIperf(rt1, 100 * sim::kTicksPerMs, 1);
    runtimes::DockerRuntime rt2({});
    auto r2 = load::runIperf(rt2, 100 * sim::kTicksPerMs, 4);
    EXPECT_GT(r2.gbitPerSec, 1.5 * r1.gbitPerSec);
}

} // namespace
} // namespace xc::test
