#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/images.h"
#include "apps/nginx.h"
#include "load/driver.h"
#include "runtimes/docker.h"
#include "runtimes/x_container.h"
#include "sim/request_ctx.h"

namespace xc::test {
namespace {

/** Every test leaves the global flight recorder disarmed and empty. */
struct FlightGuard
{
    FlightGuard() { sim::flight::clear(); }
    ~FlightGuard() { sim::flight::clear(); }
};

template <typename Rt>
load::LoadResult
runNginx(Rt &rt, int connections, sim::Tick duration)
{
    runtimes::ContainerOpts copts;
    copts.name = "web";
    copts.image = apps::glibcImage("img");
    copts.vcpus = 2;
    auto *c = rt.createContainer(copts);
    apps::NginxApp::Config ncfg;
    ncfg.workers = 2;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*c);
    rt.exposePort(c, 9000, 80);

    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 9000}, connections, duration);
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    rt.machine().events().schedule(10 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(10 * sim::kTicksPerMs +
                                   spec.warmup + spec.duration +
                                   50 * sim::kTicksPerMs);
    return driver.collect();
}

TEST(Flight, RecordsEndToEndTimelines)
{
    FlightGuard guard;
    sim::flight::arm(8, "docker/nginx", 0.4);
    runtimes::DockerRuntime rt({});
    auto r = runNginx(rt, 4, 80 * sim::kTicksPerMs);
    EXPECT_GT(r.requests, 0u);

    ASSERT_GE(sim::flight::completeCount(), 1u);
    for (const sim::flight::Record &rec : sim::flight::records()) {
        if (!rec.complete)
            continue;
        EXPECT_EQ(rec.label, "docker/nginx");
        EXPECT_GT(rec.duration(), 0u);
        // The recorder's core invariant: hop segments telescope, so
        // their sum equals the measured end-to-end latency within
        // one tick.
        EXPECT_LE(rec.hopSum() > rec.duration()
                      ? rec.hopSum() - rec.duration()
                      : rec.duration() - rec.hopSum(),
                  1u);
        ASSERT_GE(rec.hops.size(), 2u);
        EXPECT_STREQ(rec.hops.front().where, "client/send");
        // Hops are in time order.
        for (std::size_t i = 1; i < rec.hops.size(); ++i)
            EXPECT_GE(rec.hops[i].at, rec.hops[i - 1].at);
        EXPECT_LE(rec.criticalHop(), rec.hops.size());
    }
}

TEST(Flight, TimelineCrossesEveryLayer)
{
    FlightGuard guard;
    sim::flight::arm(4, "x/nginx");
    runtimes::XContainerRuntime rt({});
    auto r = runNginx(rt, 2, 80 * sim::kTicksPerMs);
    EXPECT_GT(r.requests, 0u);
    ASSERT_GE(sim::flight::completeCount(), 1u);

    const sim::flight::Record *rec = nullptr;
    for (const sim::flight::Record &candidate :
         sim::flight::records())
        if (candidate.complete) {
            rec = &candidate;
            break;
        }
    ASSERT_NE(rec, nullptr);
    auto has = [&](const char *where) {
        for (const sim::flight::Hop &h : rec->hops)
            if (std::string(h.where) == where)
                return true;
        return false;
    };
    EXPECT_TRUE(has("client/send"));
    EXPECT_TRUE(has("wire/request"));
    EXPECT_TRUE(has("guestos/sock_read"));
    EXPECT_TRUE(has("apps/reply"));
    EXPECT_TRUE(has("wire/reply"));
    EXPECT_TRUE(has("client/recv"));

    std::string rendered = sim::flight::renderTimeline(*rec);
    EXPECT_NE(rendered.find("client/send"), std::string::npos);
    EXPECT_NE(rendered.find("<-- critical path"), std::string::npos);
    EXPECT_NE(sim::flight::exportJson().find("guestos/sock_read"),
              std::string::npos);
}

TEST(Flight, BudgetBoundsSampledRequests)
{
    FlightGuard guard;
    sim::flight::arm(3, "docker/nginx");
    runtimes::DockerRuntime rt({});
    runNginx(rt, 8, 80 * sim::kTicksPerMs);
    EXPECT_EQ(sim::flight::records().size(), 3u);
    EXPECT_FALSE(sim::flight::armed()); // budget exhausted
}

TEST(Flight, DisarmedRunRecordsNothing)
{
    FlightGuard guard;
    ASSERT_FALSE(sim::flight::armed());
    runtimes::DockerRuntime rt({});
    auto r = runNginx(rt, 4, 60 * sim::kTicksPerMs);
    EXPECT_GT(r.requests, 0u);
    EXPECT_TRUE(sim::flight::records().empty());
}

TEST(Flight, FailedRequestsCloseAsFailed)
{
    FlightGuard guard;
    sim::flight::arm(2, "refused");
    runtimes::DockerRuntime rt({});
    // Nothing listening: requests never get a connection, so no
    // records are minted (begin happens at send, after connect).
    load::WorkloadSpec spec = load::wrkSpec(
        guestos::SockAddr{rt.hostIp(), 9000}, 2,
        50 * sim::kTicksPerMs);
    spec.requestTimeout = 20 * sim::kTicksPerMs;
    load::ClosedLoopDriver driver(rt.fabric(), spec);
    driver.start();
    rt.machine().events().runUntil(200 * sim::kTicksPerMs);
    for (const sim::flight::Record &rec : sim::flight::records()) {
        EXPECT_TRUE(rec.failed || rec.complete);
        if (rec.failed) {
            EXPECT_GE(rec.end, rec.begin);
        }
    }
}

} // namespace
} // namespace xc::test
