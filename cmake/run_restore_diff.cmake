# Checkpoint/restore differential over a full figure bench
# (DESIGN.md §13). Three facts are pinned at once:
#
#   1. a checkpoint-capturing run's --golden digest equals the
#      committed plain-run digest (the capture hook is invisible);
#   2. the run restored from that snapshot — replay to the
#      checkpoint tick, byte-verify all sections, continue to
#      completion — produces the SAME committed digest;
#   3. the snapshot file itself is written and non-empty.
#
#   cmake -DBENCH=<binary> -DGOLDEN=<committed> -DWORK=<scratch-dir>
#         -P run_restore_diff.cmake

foreach(var BENCH GOLDEN WORK)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_restore_diff.cmake: -D${var}= is required")
    endif()
endforeach()

file(MAKE_DIRECTORY ${WORK})
set(SNAP ${WORK}/restore_diff.snap)
set(OUT_CK ${WORK}/restore_diff_ck.json)
set(OUT_RS ${WORK}/restore_diff_rs.json)

# 1. Checkpoint-capturing run.
execute_process(
    COMMAND ${BENCH} --quick --seed 42 --golden ${OUT_CK}
            --checkpoint-at 40 --checkpoint ${SNAP}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "checkpoint run exited with ${rc}")
endif()
if(NOT EXISTS ${SNAP})
    message(FATAL_ERROR "checkpoint run wrote no snapshot at ${SNAP}")
endif()
file(SIZE ${SNAP} snap_size)
if(snap_size EQUAL 0)
    message(FATAL_ERROR "snapshot ${SNAP} is empty")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT_CK} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "checkpoint-capturing run drifted from the committed golden: "
        "${OUT_CK} differs from ${GOLDEN}. The capture hook must be "
        "invisible to the simulation.")
endif()

# 2. Restore run: replay, byte-verify every section, continue.
execute_process(
    COMMAND ${BENCH} --quick --seed 42 --golden ${OUT_RS}
            --restore ${SNAP}
    RESULT_VARIABLE rc
    ERROR_VARIABLE restore_err
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "restore run exited with ${rc}: ${restore_err}")
endif()
if(NOT restore_err MATCHES "byte-verified")
    message(FATAL_ERROR
        "restore run did not report byte-verification: ${restore_err}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT_RS} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "restore-then-run drifted from the committed golden: "
        "${OUT_RS} differs from ${GOLDEN}. Restore must be "
        "event-for-event identical to the straight-through run.")
endif()
