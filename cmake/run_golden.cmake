# Runs one figure bench in --quick mode with a fixed seed and
# compares its --golden digest byte-for-byte against the committed
# snapshot under tests/golden/. Any drift — an event fired in a
# different order, a mechanism cycle attributed differently — fails
# the test. Invoked by ctest (see bench/CMakeLists.txt):
#
#   cmake -DBENCH=<binary> -DGOLDEN=<committed> -DOUT=<scratch>
#         [-DEXTRA_ARGS=<;-list>] -P run_golden.cmake
#
# EXTRA_ARGS appends flags to the bench invocation (e.g. "-j;4" to
# check that a parallel sweep reproduces the sequential digest).

foreach(var BENCH GOLDEN OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_golden.cmake: -D${var}= is required")
    endif()
endforeach()
if(NOT DEFINED EXTRA_ARGS)
    set(EXTRA_ARGS "")
endif()

execute_process(
    COMMAND ${BENCH} --quick --seed 42 --golden ${OUT} ${EXTRA_ARGS}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "golden digest drift: ${OUT} differs from ${GOLDEN}.\n"
        "The simulation is no longer byte-identical to the pinned "
        "run. If the change is intentional (new mechanism, changed "
        "cost model), regenerate the snapshot with:\n"
        "  ${BENCH} --quick --seed 42 --golden ${GOLDEN}")
endif()
