# Runs fig4 in --quick mode with a fixed seed and the
# cycle-attribution profiler on, and compares the exported profile
# JSON byte-for-byte against the committed snapshot under
# tests/golden/. The export is deterministic by construction
# (children sorted by name, fixed key order, integer cycles), so any
# drift means cycles moved between frames. Invoked by ctest (see
# bench/CMakeLists.txt):
#
#   cmake -DBENCH=<binary> -DGOLDEN=<committed> -DOUT=<scratch>
#         -P run_profile_golden.cmake

foreach(var BENCH GOLDEN OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR
            "run_profile_golden.cmake: -D${var}= is required")
    endif()
endforeach()

execute_process(
    COMMAND ${BENCH} --quick --seed 42 --profile ${OUT}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} exited with ${rc}")
endif()

# The live export carries a provenance header (seed, git describe,
# build flags — see bench/provenance.h) that is deliberately absent
# from committed goldens; strip it before the byte compare.
file(READ ${OUT} out_json)
string(REGEX REPLACE "\"provenance\":{[^}]*},?" "" out_json
    "${out_json}")
file(WRITE ${OUT}.stripped "${out_json}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}.stripped
        ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "profile golden drift: ${OUT} differs from ${GOLDEN}.\n"
        "Cycle attribution is no longer byte-identical to the "
        "pinned run. If the change is intentional (new scope, "
        "changed cost model), regenerate the snapshot with:\n"
        "  ${BENCH} --quick --seed 42 --profile ${GOLDEN}")
endif()
