#!/usr/bin/env python3
"""Compare a fresh BENCH_sim.json against the committed baseline.

Usage: perf_compare.py BASELINE CURRENT [--threshold PCT]

Prints a per-metric table and emits GitHub Actions ::warning::
annotations for regressions beyond the threshold (default 20%).
Always exits 0: CI runners are noisy, so perf drift warns rather
than fails — the committed baseline is refreshed deliberately, not
on every run.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_metric(label, base, cur, higher_is_better, threshold, warnings):
    if not base or not cur:
        return
    change = (cur - base) / base * 100.0
    regressed = change < -threshold if higher_is_better else change > threshold
    marker = "  <-- REGRESSION" if regressed else ""
    print(f"  {label:<52} {base:>12.4g} -> {cur:>12.4g}  "
          f"({change:+6.1f}%){marker}")
    if regressed:
        warnings.append(f"{label}: {change:+.1f}% vs baseline")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="warn when worse by more than PCT (default 20)")
    args = ap.parse_args()

    try:
        base = load(args.baseline)
    except OSError as e:
        print(f"no baseline ({e}); skipping comparison")
        return 0
    cur = load(args.current)

    warnings = []
    print("microbenchmarks (ns/op, lower is better):")
    for name, row in cur.get("microbench", {}).items():
        ref = base.get("microbench", {}).get(name, {})
        # ns/op is the universal metric: every row reports it, and
        # comparing it lower-is-better means a *faster* benchmark
        # (e.g. BM_StubInterpretation after superblock direct
        # execution) sails through — only slowdowns beyond the
        # threshold warn. events_per_sec is redundant with ns/op and
        # zero for rows that don't report items_per_second, so it is
        # no longer compared.
        compare_metric(name, ref.get("ns_per_op"),
                       row.get("ns_per_op"), False,
                       args.threshold, warnings)

    print("figure benches (host wall seconds, lower is better):")
    for name, row in cur.get("figures", {}).items():
        ref = base.get("figures", {}).get(name, {})
        compare_metric(f"{name} wall_s", ref.get("wall_s"),
                       row.get("wall_s"), False, args.threshold,
                       warnings)
        compare_metric(f"{name} max_rss_kb", ref.get("max_rss_kb"),
                       row.get("max_rss_kb"), False, args.threshold,
                       warnings)
        # The parallel-sweep row also tracks its speedup over the
        # sequential fig3 run (higher is better). Worker counts can
        # differ between baseline and CI hosts, so only compare when
        # both ran with the same -j.
        if "speedup" in row and ref.get("jobs") == row.get("jobs"):
            compare_metric(f"{name} speedup", ref.get("speedup"),
                           row.get("speedup"), True, args.threshold,
                           warnings)
        # The superblock row tracks its speedup over the verbatim
        # interpreter, measured back-to-back on the same host — a
        # host-speed-independent ratio (higher is better).
        if "speedup_vs_verbatim" in row:
            compare_metric(f"{name} speedup_vs_verbatim",
                           ref.get("speedup_vs_verbatim"),
                           row.get("speedup_vs_verbatim"), True,
                           args.threshold, warnings)

    # Row-coverage diff: a baseline row that vanished from the fresh
    # report usually means a bench was dropped (or renamed) without
    # refreshing the baseline, and a fresh row absent from the
    # baseline means the baseline is stale. Neither is skipped
    # silently; vanished rows warn like regressions do.
    for section in ("microbench", "figures"):
        base_rows = set(base.get(section, {}))
        cur_rows = set(cur.get(section, {}))
        for name in sorted(base_rows - cur_rows):
            msg = (f"{section}/{name}: in baseline but missing from "
                   "the fresh report (bench dropped or renamed?)")
            print(msg)
            warnings.append(msg)
        for name in sorted(cur_rows - base_rows):
            print(f"{section}/{name}: new row not in the baseline — "
                  "refresh bench/BENCH_sim.baseline.json")

    for w in warnings:
        print(f"::warning title=sim perf regression::{w}")
    if not warnings:
        print(f"no regressions beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
