#!/usr/bin/env bash
# Live control-plane smoke + replay determinism gate (DESIGN.md §14).
#
#   ctl_smoke.sh <fig3_macro> <xc_ctl> <workdir>
#
# Holds a fig3 --quick run at its first poll tick, drives it over the
# UNIX socket with xc_ctl (queries, a fault injection, a container
# spawn + kill, resume), then replays the recorded command log twice
# (-j1 and -j4). All three runs must produce byte-identical golden
# digests: the live session IS a deterministic run.
set -euo pipefail

FIG3=$1
XC_CTL=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"
SOCK="$WORK/ctl.sock"
LOG="$WORK/ctl.log"

"$FIG3" --quick --seed 42 --cloud ec2 --runtime docker \
    --golden "$WORK/live.json" \
    --ctl "$SOCK" --ctl-hold --ctl-log "$LOG" \
    >"$WORK/live.out" 2>"$WORK/live.err" &
BENCH_PID=$!

# Wait for the held session's socket to appear.
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "ctl socket never appeared"; exit 1; }

"$XC_CTL" "$SOCK" ping | grep -q pong
"$XC_CTL" "$SOCK" status >/dev/null
"$XC_CTL" "$SOCK" mech | grep -q syscall_trap
"$XC_CTL" "$SOCK" inject-faults 0.001
"$XC_CTL" "$SOCK" spawn smoke1
"$XC_CTL" "$SOCK" kill smoke1
# A bad command must fail typed, not wedge the session.
if "$XC_CTL" "$SOCK" inject-faults not-a-rate 2>/dev/null; then
    echo "hostile inject-faults unexpectedly succeeded"; exit 1
fi
"$XC_CTL" "$SOCK" resume

wait "$BENCH_PID"
grep -q '^# xc-ctl-log v1' "$LOG"

"$FIG3" --quick --seed 42 --cloud ec2 --runtime docker \
    --golden "$WORK/replay1.json" --ctl-replay "$LOG" -j1 \
    >/dev/null 2>&1
"$FIG3" --quick --seed 42 --cloud ec2 --runtime docker \
    --golden "$WORK/replay4.json" --ctl-replay "$LOG" -j4 \
    >/dev/null 2>&1

cmp "$WORK/live.json" "$WORK/replay1.json"
cmp "$WORK/replay1.json" "$WORK/replay4.json"
echo "ctl smoke ok: live session replays bit-identically (-j1, -j4)"
