#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# This is the exact command sequence ROADMAP.md documents; CI and
# local runs share it so "works in CI" means "works with ROADMAP.md".
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
cd build
ctest --output-on-failure -j"$(nproc)"
