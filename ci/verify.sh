#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# This is the exact command sequence ROADMAP.md documents; CI and
# local runs share it so "works in CI" means "works with ROADMAP.md".
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
cd build
ctest --output-on-failure -j"$(nproc)"

# Checkpoint/restore gate (DESIGN.md §13): rerun the snapshot
# roundtrip + differential suites explicitly (they are part of the
# full ctest run above; this step names them so a checkpoint
# regression is unmissable in the log), then produce the sample
# snapshot CI uploads as an artifact.
ctest -L checkpoint --output-on-failure -j"$(nproc)"
./tests/test_snapshot --gtest_brief=1
./tests/test_snapshot_differential --gtest_brief=1
./bench/fig_whatif --quick --seed 42 \
    --checkpoint sample_steady_state.snap >/dev/null
test -s sample_steady_state.snap
echo "checkpoint gate ok (sample snapshot: build/sample_steady_state.snap)"

# Superblock + lookahead-domain gate (DESIGN.md §15): the lockstep
# differential suite (superblock direct execution vs the verbatim
# interpreter over ~1e5 random sequences), then the fig3 golden
# reproduced with the cache disabled and with two conservative
# lookahead domains — part of the full ctest run above, named here
# so a direct-execution or domain-sync regression is unmissable.
./tests/test_superblock_differential --gtest_brief=1
ctest -R 'golden_fig3_verbatim|golden_fig3_domains' \
    --output-on-failure -j"$(nproc)"
echo "superblock + domain gate ok"

# Live control-plane gate (DESIGN.md §14): drive a held fig3 session
# over its UNIX socket with xc_ctl, then replay the recorded command
# log at -j1 and -j4 — all three golden digests must be identical.
../ci/ctl_smoke.sh ./bench/fig3_macro ./tools/xc_ctl ctl_smoke_work

# SLO alerting gate (DESIGN.md §16): the fixed-seed fig_slo fault
# storm + load spike must reproduce the committed alert event log
# byte-for-byte (FIRE/CLEAR transitions with sim timestamps). The
# golden_fig_slo* ctest entries above already pin the full digest at
# -j1/-j4/restore; this names the alert log itself so an alerting
# regression is unmissable in the log.
./bench/fig_slo --quick --seed 42 --slo-log fig_slo_alerts.log >/dev/null
cmp fig_slo_alerts.log ../tests/golden/fig_slo_alerts_seed42.log
echo "slo alerting gate ok (alert log matches committed golden)"

# Container-density gate (DESIGN.md §17): boot a 4,000-container
# cell under the open-loop driver and assert host peak RSS stays
# under the committed budget. The flyweight representation (shared
# CoW page-table chunks + lazy zero-fill frames) keeps this run
# around ~300 MB; an eager-copy regression — private flat page
# tables or materialized guest frames — costs tens of GB and fails
# immediately. /usr/bin/time is absent in the CI image, so peak RSS
# comes from getrusage(RUSAGE_CHILDREN) via python3.
XC_CLUSTER_RSS_BUDGET_KB=458752  # 448 MB
python3 - "$XC_CLUSTER_RSS_BUDGET_KB" <<'EOF'
import resource, subprocess, sys
budget_kb = int(sys.argv[1])
rc = subprocess.call(["./bench/fig_cluster", "--quick", "--n", "4000"],
                     stdout=subprocess.DEVNULL)
if rc != 0:
    sys.exit(f"fig_cluster --n 4000 exited with {rc}")
peak_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(f"fig_cluster N=4000 peak RSS {peak_kb} KB "
      f"(budget {budget_kb} KB)")
if peak_kb > budget_kb:
    sys.exit("density gate FAILED: peak RSS over the committed "
             "budget — flyweight sharing has regressed")
EOF
echo "density gate ok (N=4000 open-loop cell within RSS budget)"
