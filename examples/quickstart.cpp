/**
 * @file
 * Quickstart: boot an X-Containers platform, spawn one container,
 * run a process that makes system calls, and watch ABOM convert
 * them from traps into function calls.
 *
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <string>

#include "apps/images.h"
#include "core/platform.h"
#include "guestos/sys.h"
#include "hw/machine.h"
#include "sim/trace.h"

using namespace xc;

int
main(int argc, char **argv)
{
    // Optional: ./quickstart --trace syscall,abom,sched,net
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--trace") {
            sim::trace::enable(
                sim::trace::parseCategories(argv[i + 1]));
        }
    }
    // A machine shaped like the paper's EC2 instance.
    hw::Machine machine(hw::MachineSpec::ec2C4_2xlarge(), /*seed=*/42);
    guestos::NetFabric fabric(machine.events());

    // The platform: X-Kernel (Xen-as-exokernel) + Docker wrapper.
    core::XContainerPlatform::Config pcfg;
    core::XContainerPlatform platform(machine, fabric, pcfg);
    std::printf("booted X-Kernel; container boot latency: %.0f ms\n",
                sim::ticksToSeconds(platform.bootLatency()) * 1000);

    // Spawn a 128 MB, 1-vCPU X-Container from a glibc-based image.
    core::XContainerPlatform::ContainerSpec spec;
    spec.name = "hello";
    spec.image = apps::glibcImage("hello:latest");
    core::XContainer *container = platform.spawn(spec);
    if (!container) {
        std::fprintf(stderr, "out of memory\n");
        return 1;
    }

    // Run a process. Application logic is C++, but every system
    // call executes a real byte-encoded wrapper.
    guestos::GuestKernel &kernel = container->kernel();
    guestos::Process *proc =
        kernel.createProcess("hello", spec.image);
    guestos::Thread::Body body =
        [](guestos::Thread &t) -> sim::Task<void> {
        guestos::Sys sys(t);
        std::int64_t pid = co_await sys.getpid();
        std::printf("[guest] hello from pid %lld\n",
                    static_cast<long long>(pid));
        for (int i = 0; i < 100000; ++i)
            co_await sys.getpid(); // hammer one syscall site
        std::printf("[guest] done at t=%.3f ms simulated\n",
                    sim::ticksToSeconds(t.kernel().now()) * 1000);
    };
    kernel.spawnThread(proc, "main", std::move(body));

    machine.events().run();

    std::printf("\nkernel counters:\n%s",
                container->kernel().renderStats().c_str());

    const core::AbomStats &st = platform.xkernel().abom().stats();
    std::printf("\nABOM: %llu trap(s), %llu direct function calls "
                "(%.2f%% converted)\n",
                static_cast<unsigned long long>(st.trapsSeen),
                static_cast<unsigned long long>(st.directCalls),
                100.0 * st.reductionRatio());
    std::printf("the first execution of each call site trapped and "
                "was patched;\nevery subsequent syscall was a "
                "function call into the X-LibOS.\n");
    return 0;
}
