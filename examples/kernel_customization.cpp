/**
 * @file
 * Kernel customization (§5.7): load the IPVS kernel module into an
 * X-Container's own X-LibOS — something a Docker container cannot do
 * without root privilege on the host — and load-balance three NGINX
 * backends in kernel space, first in NAT mode and then in direct
 * routing mode.
 *
 *   ./build/examples/kernel_customization
 */

#include <cstdio>

#include "apps/images.h"
#include "apps/nginx.h"
#include "guestos/ipvs.h"
#include "load/driver.h"
#include "runtimes/x_container.h"

using namespace xc;

namespace {

double
run(guestos::IpvsService::Mode mode)
{
    auto rtp = runtimes::makeRuntime(
        "x-container", hw::MachineSpec::xeonE52690Local());
    runtimes::Runtime &rt = *rtp;

    std::vector<std::unique_ptr<apps::NginxApp>> backends;
    guestos::IpvsService::Config icfg;
    icfg.mode = mode;
    for (int i = 0; i < 3; ++i) {
        runtimes::ContainerOpts copts;
        copts.name = "web" + std::to_string(i);
        copts.image = apps::glibcImage("nginx");
        copts.vcpus = 1;
        copts.memBytes = 128ull << 20;
        runtimes::RtContainer *c = rt.createContainer(copts);
        apps::NginxApp::Config ncfg;
        ncfg.workers = 1;
        backends.push_back(std::make_unique<apps::NginxApp>(ncfg));
        backends.back()->deploy(*c);
        icfg.backends.push_back(guestos::SockAddr{c->ip(), 80});
    }

    // The director container: its kernel is *ours* to extend.
    runtimes::ContainerOpts lb_opts;
    lb_opts.name = "director";
    lb_opts.image = apps::glibcImage("director");
    lb_opts.vcpus = 1;
    lb_opts.memBytes = 128ull << 20;
    runtimes::RtContainer *lb = rt.createContainer(lb_opts);

    guestos::IpvsService ipvs(icfg);
    if (!ipvs.install(lb->kernel()))
        sim::fatal("could not install IPVS");
    rt.exposePort(lb, 8080, 80);

    load::ClosedLoopDriver driver(
        rt.fabric(),
        load::wrkSpec(guestos::SockAddr{rt.hostIp(), 8080}, 160,
                      300 * sim::kTicksPerMs));
    rt.machine().events().schedule(20 * sim::kTicksPerMs,
                                   [&] { driver.start(); });
    rt.machine().events().runUntil(500 * sim::kTicksPerMs);
    auto r = driver.collect();
    std::printf("  %-16s %10.0f req/s   (%llu conns through the "
                "VIP)\n",
                mode == guestos::IpvsService::Mode::Nat
                    ? "IPVS NAT"
                    : "IPVS direct",
                r.throughput,
                static_cast<unsigned long long>(ipvs.connections()));
    return r.throughput;
}

} // namespace

int
main()
{
    std::printf("loading the IPVS module into an X-LibOS "
                "(no host privileges needed):\n");
    double nat = run(guestos::IpvsService::Mode::Nat);
    double dr = run(guestos::IpvsService::Mode::DirectRouting);
    std::printf("\ndirect routing bypasses the director on the "
                "response path: %.2fx NAT\n",
                nat > 0 ? dr / nat : 0.0);
    return 0;
}
