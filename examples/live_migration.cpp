/**
 * @file
 * Live migration and checkpoint/restore (§3.3): the Xen-ecosystem
 * capabilities X-Containers inherit — "hard to implement with
 * traditional containers". Shows the pre-copy protocol model moving
 * an X-Container between two hosts, with the balloon driver flexing
 * memory at the destination first.
 *
 *   ./build/examples/live_migration
 */

#include <cstdio>

#include "xen/balloon.h"
#include "xen/migration.h"

using namespace xc;

namespace {

void
report(const char *label, const xen::MigrationReport &r)
{
    std::printf("  %-26s %2d rounds  %7.1f MB moved  total %7.1f ms"
                "  downtime %6.2f ms%s\n",
                label, r.rounds,
                static_cast<double>(r.bytesTransferred) / (1 << 20),
                sim::ticksToSeconds(r.totalTime) * 1000.0,
                sim::ticksToSeconds(r.downtime) * 1000.0,
                r.converged ? "" : "  (did not converge)");
}

} // namespace

int
main()
{
    hw::MachineSpec spec = hw::MachineSpec::xeonE52690Local();
    hw::Machine host_a(spec, 1);
    hw::Machine host_b(spec, 2);
    xen::Hypervisor hv_a(host_a, {});
    xen::Hypervisor hv_b(host_b, {});

    // A 128 MB X-Container and a conventional 2 GB VM side by side.
    xen::Domain *xc = hv_a.createDomain("x-container", 128ull << 20, 1);
    xen::Domain *vm = hv_a.createDomain("classic-vm", 2048ull << 20, 1);

    std::printf("checkpoint (stop-and-copy) over a 10 Gbit/s link:\n");
    report("x-container (128 MB)", xen::checkpoint(*xc));
    report("classic VM (2 GB)", xen::checkpoint(*vm));

    std::printf("\nlive pre-copy migration, 20%%/s dirty rate:\n");
    report("x-container (128 MB)", xen::liveMigrate(*xc));
    report("classic VM (2 GB)", xen::liveMigrate(*vm));

    std::printf("\na write-heavy workload on a slow link:\n");
    xen::MigrationConfig hostile;
    hostile.gbitPerSec = 1.0;
    hostile.dirtyFractionPerSec = 3.0;
    report("classic VM (2 GB)", xen::liveMigrate(*vm, hostile));

    // Actually move the X-Container: flex the destination first.
    std::printf("\nexecuting the move:\n");
    xen::Domain *spare = hv_b.createDomain("spare", 512ull << 20, 1);
    xen::BalloonDriver balloon(hv_b, spare);
    balloon.inflateBy(256ull << 20);
    std::printf("  destination: spare domain ballooned to %llu MB\n",
                static_cast<unsigned long long>(
                    (spare->memBytes() + balloon.extraBytes()) >> 20));
    balloon.deflateBy(256ull << 20); // make room for the migrant

    xen::MigrationReport r;
    xen::Domain *moved = xen::migrateDomain(hv_a, hv_b, xc, r);
    if (!moved) {
        std::printf("  migration failed (destination full)\n");
        return 1;
    }
    report("moved x-container", r);
    std::printf("  source now hosts %zu domains, destination %zu\n",
                hv_a.domainCount(), hv_b.domainCount());
    return 0;
}
