/**
 * @file
 * A byte-level walkthrough of ABOM's binary replacement (Fig. 2 of
 * the paper): the 7-byte replacements (cases 1 and 2), the two-phase
 * 9-byte replacement, and the invalid-opcode fixup for jumps into
 * the middle of a patched call.
 *
 *   ./build/examples/binary_patching
 */

#include <cstdio>

#include "core/abom.h"
#include "isa/assembler.h"
#include "isa/interpreter.h"

using namespace xc;

namespace {

void
dumpRange(const isa::CodeBuffer &code, isa::GuestAddr at, int n,
          const char *label)
{
    std::printf("  %08llx  ", static_cast<unsigned long long>(at));
    for (int i = 0; i < n; ++i)
        std::printf("%02x ", code.read8(at + i));
    std::printf("  %s\n", label);
}

void
disasmFrom(const isa::CodeBuffer &code, isa::GuestAddr at, int count)
{
    isa::GuestAddr ip = at;
    for (int i = 0; i < count; ++i) {
        isa::Insn insn = isa::decode(code, ip);
        if (!insn.valid()) {
            std::printf("    %s\n",
                        isa::disassemble(insn, ip).c_str());
            break;
        }
        std::printf("    %s\n", isa::disassemble(insn, ip).c_str());
        ip += insn.length;
    }
}

} // namespace

int
main()
{
    std::printf("=== 7-byte replacement, case 1 (glibc __read) ===\n");
    {
        // The exact example of Fig. 2: __read at 0xeb6a9.
        isa::CodeBuffer code(0xeb6a9);
        isa::Assembler as(code);
        as.movEaxImm(0); // mov $0x0,%eax  (nr 0 = read)
        isa::GuestAddr sc = as.syscallInsn();
        as.ret();

        std::printf("before the first trap:\n");
        dumpRange(code, 0xeb6a9, 7, "mov $0,%eax; syscall");
        disasmFrom(code, 0xeb6a9, 2);

        core::Abom abom;
        abom.onSyscallTrap(code, sc);

        std::printf("after ABOM (one cmpxchg):\n");
        dumpRange(code, 0xeb6a9, 7, "callq *0xffffffffff600008");
        disasmFrom(code, 0xeb6a9, 1);
    }

    std::printf("\n=== 7-byte replacement, case 2 "
                "(Go syscall.Syscall) ===\n");
    {
        isa::CodeBuffer code(0x7f41d);
        isa::Assembler as(code);
        as.movRaxFromRsp(0x08); // mov 0x8(%rsp),%rax
        isa::GuestAddr sc = as.syscallInsn();
        as.ret();

        std::printf("before:\n");
        disasmFrom(code, 0x7f41d, 2);
        core::Abom abom;
        abom.onSyscallTrap(code, sc);
        std::printf("after (dispatch through the stack-argument "
                    "slot *0xffffffffff600c08):\n");
        disasmFrom(code, 0x7f41d, 1);
    }

    std::printf("\n=== 9-byte replacement, two phases "
                "(__restore_rt) ===\n");
    {
        isa::CodeBuffer code(0x10330);
        isa::Assembler as(code);
        as.movRaxImm(0xf); // mov $0xf,%rax (rt_sigreturn)
        isa::GuestAddr sc = as.syscallInsn();
        as.ret();

        std::printf("before:\n");
        disasmFrom(code, 0x10330, 2);

        core::Abom abom;
        abom.onSyscallTrap(code, sc);
        std::printf("phase 1 (mov replaced; stale syscall kept so "
                    "direct jumps stay valid):\n");
        disasmFrom(code, 0x10330, 2);

        abom.adjustReturn(code, sc);
        std::printf("phase 2 (the X-LibOS handler saw the stale "
                    "syscall at the return address):\n");
        disasmFrom(code, 0x10330, 2);
    }

    std::printf("\n=== jump into the middle of a patched call ===\n");
    {
        isa::CodeBuffer code(0x1000);
        isa::Assembler as(code);
        as.movEaxImm(39);
        isa::GuestAddr sc = as.syscallInsn();
        as.ret();

        core::Abom abom;
        abom.onSyscallTrap(code, sc);
        std::printf("a stale jump lands at %#llx — the bytes there "
                    "are now \"60 ff\":\n",
                    static_cast<unsigned long long>(sc));
        dumpRange(code, sc, 2, "invalid opcode in 64-bit mode");
        isa::GuestAddr fixed = abom.fixupInvalidOpcode(code, sc);
        std::printf("the X-Kernel's fixup handler moves the IP back "
                    "to %#llx:\n",
                    static_cast<unsigned long long>(fixed));
        disasmFrom(code, fixed, 1);
        std::printf("stats: %llu fixup trap(s) handled\n",
                    static_cast<unsigned long long>(
                        abom.stats().fixupTraps));
    }
    return 0;
}
