/**
 * @file
 * A cloud-native microservice stack on X-Containers — the paper's
 * motivating deployment (§1, §2.1): single-concerned containers,
 * one service each, composed over the network.
 *
 *   web tier:   NGINX, 4 workers, 4 vCPUs
 *   cache tier: memcached, 4 threads
 *   db tier:    PHP front end + MySQL
 *
 * Drives the web tier with wrk and prints per-service stats plus
 * the platform-wide ABOM conversion rate.
 *
 *   ./build/examples/microservice_web
 */

#include <cstdio>

#include "apps/images.h"
#include "apps/kv.h"
#include "apps/nginx.h"
#include "apps/php_mysql.h"
#include "load/driver.h"
#include "runtimes/x_container.h"

using namespace xc;

int
main()
{
    auto rtp = runtimes::makeRuntime("x-container");
    runtimes::Runtime &rt = *rtp;

    auto spawn = [&](const char *name, int vcpus) {
        runtimes::ContainerOpts copts;
        copts.name = name;
        copts.image = apps::glibcImage(name);
        copts.vcpus = vcpus;
        copts.memBytes = 256ull << 20;
        runtimes::RtContainer *c = rt.createContainer(copts);
        if (!c)
            sim::fatal("out of memory spawning %s", name);
        return c;
    };

    // One concern per container.
    runtimes::RtContainer *web = spawn("web", 4);
    runtimes::RtContainer *cache = spawn("cache", 4);
    runtimes::RtContainer *db = spawn("db", 1);
    runtimes::RtContainer *api = spawn("api", 1);

    apps::NginxApp::Config ncfg;
    ncfg.workers = 4;
    apps::NginxApp nginx(ncfg);
    nginx.deploy(*web);

    apps::KvApp memcached(apps::KvApp::memcachedConfig());
    memcached.deploy(*cache);

    apps::MysqlApp mysql;
    mysql.deploy(*db);

    apps::PhpApp::Config pcfg;
    pcfg.mysql = guestos::SockAddr{db->ip(), 3306};
    apps::PhpApp php(pcfg);
    php.deploy(*api);

    rt.exposePort(web, 8080, 80);
    rt.exposePort(cache, 11211, 11211);
    rt.exposePort(api, 8088, 8080);

    // Load: wrk against the web tier and the API tier; memtier
    // against the cache.
    load::ClosedLoopDriver web_load(
        rt.fabric(),
        load::wrkSpec(guestos::SockAddr{rt.hostIp(), 8080}, 64,
                      300 * sim::kTicksPerMs),
        1);
    load::ClosedLoopDriver cache_load(
        rt.fabric(),
        load::memtierSpec(guestos::SockAddr{rt.hostIp(), 11211}, 64,
                          300 * sim::kTicksPerMs),
        2);
    load::ClosedLoopDriver api_load(
        rt.fabric(),
        load::wrkSpec(guestos::SockAddr{rt.hostIp(), 8088}, 32,
                      300 * sim::kTicksPerMs),
        3);

    rt.machine().events().schedule(20 * sim::kTicksPerMs, [&] {
        web_load.start();
        cache_load.start();
        api_load.start();
    });
    rt.machine().events().runUntil(500 * sim::kTicksPerMs);

    auto print = [](const char *tier, const load::LoadResult &r) {
        std::printf("  %-8s %10.0f req/s   p50 %7.0f us   p99 %7.0f "
                    "us\n",
                    tier, r.throughput, r.p50LatencyUs,
                    r.p99LatencyUs);
    };
    std::printf("microservice stack on X-Containers "
                "(each tier its own LibOS):\n");
    print("web", web_load.collect());
    print("cache", cache_load.collect());
    print("api", api_load.collect());

    std::printf("\nserved: nginx=%llu memcached=%llu php=%llu "
                "mysql=%llu\n",
                static_cast<unsigned long long>(nginx.requestsServed()),
                static_cast<unsigned long long>(memcached.opsServed()),
                static_cast<unsigned long long>(php.requestsServed()),
                static_cast<unsigned long long>(mysql.queriesServed()));

    const core::AbomStats &st =
        static_cast<runtimes::XContainerRuntime &>(rt)
            .xkernel()
            .abom()
            .stats();
    std::printf("ABOM platform-wide: %.2f%% of syscall invocations "
                "ran as function calls\n",
                100.0 * st.reductionRatio());
    return 0;
}
