file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/isa/test_assembler.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_assembler.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_decode.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_decode.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_decode_fuzz.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_decode_fuzz.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_interpreter.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_interpreter.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_stubs.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_stubs.cc.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
