file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_abom.cc.o"
  "CMakeFiles/test_core.dir/core/test_abom.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_abom_property.cc.o"
  "CMakeFiles/test_core.dir/core/test_abom_property.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_xc_stack.cc.o"
  "CMakeFiles/test_core.dir/core/test_xc_stack.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
