
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_event_queue.cc" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cc.o.d"
  "/root/repo/tests/sim/test_logging.cc" "tests/CMakeFiles/test_sim.dir/sim/test_logging.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_logging.cc.o.d"
  "/root/repo/tests/sim/test_rng.cc" "tests/CMakeFiles/test_sim.dir/sim/test_rng.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_rng.cc.o.d"
  "/root/repo/tests/sim/test_stats.cc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cc.o.d"
  "/root/repo/tests/sim/test_task.cc" "tests/CMakeFiles/test_sim.dir/sim/test_task.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_task.cc.o.d"
  "/root/repo/tests/sim/test_trace.cc" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/xc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/xc_load.dir/DependInfo.cmake"
  "/root/repo/build/src/runtimes/CMakeFiles/xc_runtimes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/xc_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/xc_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
