# Empty dependencies file for test_xen.
# This may be replaced when dependencies are built.
