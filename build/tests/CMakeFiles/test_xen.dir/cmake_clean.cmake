file(REMOVE_RECURSE
  "CMakeFiles/test_xen.dir/xen/test_balloon_migration.cc.o"
  "CMakeFiles/test_xen.dir/xen/test_balloon_migration.cc.o.d"
  "CMakeFiles/test_xen.dir/xen/test_hypervisor.cc.o"
  "CMakeFiles/test_xen.dir/xen/test_hypervisor.cc.o.d"
  "test_xen"
  "test_xen.pdb"
  "test_xen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
