
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/guestos/test_ipvs.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_ipvs.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_ipvs.cc.o.d"
  "/root/repo/tests/guestos/test_isolation.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_isolation.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_isolation.cc.o.d"
  "/root/repo/tests/guestos/test_net.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_net.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_net.cc.o.d"
  "/root/repo/tests/guestos/test_net_edge.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_net_edge.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_net_edge.cc.o.d"
  "/root/repo/tests/guestos/test_proc.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_proc.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_proc.cc.o.d"
  "/root/repo/tests/guestos/test_sched.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_sched.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_sched.cc.o.d"
  "/root/repo/tests/guestos/test_signals.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_signals.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_signals.cc.o.d"
  "/root/repo/tests/guestos/test_sync.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_sync.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_sync.cc.o.d"
  "/root/repo/tests/guestos/test_syscalls.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_syscalls.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_syscalls.cc.o.d"
  "/root/repo/tests/guestos/test_vfs.cc" "tests/CMakeFiles/test_guestos.dir/guestos/test_vfs.cc.o" "gcc" "tests/CMakeFiles/test_guestos.dir/guestos/test_vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/xc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/xc_load.dir/DependInfo.cmake"
  "/root/repo/build/src/runtimes/CMakeFiles/xc_runtimes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/xc_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/xc_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
