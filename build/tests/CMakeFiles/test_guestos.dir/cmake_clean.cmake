file(REMOVE_RECURSE
  "CMakeFiles/test_guestos.dir/guestos/test_ipvs.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_ipvs.cc.o.d"
  "CMakeFiles/test_guestos.dir/guestos/test_isolation.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_isolation.cc.o.d"
  "CMakeFiles/test_guestos.dir/guestos/test_net.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_net.cc.o.d"
  "CMakeFiles/test_guestos.dir/guestos/test_net_edge.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_net_edge.cc.o.d"
  "CMakeFiles/test_guestos.dir/guestos/test_proc.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_proc.cc.o.d"
  "CMakeFiles/test_guestos.dir/guestos/test_sched.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_sched.cc.o.d"
  "CMakeFiles/test_guestos.dir/guestos/test_signals.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_signals.cc.o.d"
  "CMakeFiles/test_guestos.dir/guestos/test_sync.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_sync.cc.o.d"
  "CMakeFiles/test_guestos.dir/guestos/test_syscalls.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_syscalls.cc.o.d"
  "CMakeFiles/test_guestos.dir/guestos/test_vfs.cc.o"
  "CMakeFiles/test_guestos.dir/guestos/test_vfs.cc.o.d"
  "test_guestos"
  "test_guestos.pdb"
  "test_guestos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guestos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
