file(REMOVE_RECURSE
  "CMakeFiles/test_runtimes.dir/runtimes/test_ports.cc.o"
  "CMakeFiles/test_runtimes.dir/runtimes/test_ports.cc.o.d"
  "CMakeFiles/test_runtimes.dir/runtimes/test_properties.cc.o"
  "CMakeFiles/test_runtimes.dir/runtimes/test_properties.cc.o.d"
  "CMakeFiles/test_runtimes.dir/runtimes/test_stack.cc.o"
  "CMakeFiles/test_runtimes.dir/runtimes/test_stack.cc.o.d"
  "test_runtimes"
  "test_runtimes.pdb"
  "test_runtimes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
