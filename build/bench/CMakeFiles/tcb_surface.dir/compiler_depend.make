# Empty compiler generated dependencies file for tcb_surface.
# This may be replaced when dependencies are built.
