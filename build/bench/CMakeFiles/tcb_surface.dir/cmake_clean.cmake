file(REMOVE_RECURSE
  "CMakeFiles/tcb_surface.dir/tcb_surface.cc.o"
  "CMakeFiles/tcb_surface.dir/tcb_surface.cc.o.d"
  "tcb_surface"
  "tcb_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
