file(REMOVE_RECURSE
  "CMakeFiles/fig6_libos.dir/fig6_libos.cc.o"
  "CMakeFiles/fig6_libos.dir/fig6_libos.cc.o.d"
  "fig6_libos"
  "fig6_libos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_libos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
