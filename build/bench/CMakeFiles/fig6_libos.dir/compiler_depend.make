# Empty compiler generated dependencies file for fig6_libos.
# This may be replaced when dependencies are built.
