file(REMOVE_RECURSE
  "CMakeFiles/fig4_syscall.dir/fig4_syscall.cc.o"
  "CMakeFiles/fig4_syscall.dir/fig4_syscall.cc.o.d"
  "fig4_syscall"
  "fig4_syscall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_syscall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
