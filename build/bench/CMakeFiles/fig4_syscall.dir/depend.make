# Empty dependencies file for fig4_syscall.
# This may be replaced when dependencies are built.
