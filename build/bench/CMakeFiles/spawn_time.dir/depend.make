# Empty dependencies file for spawn_time.
# This may be replaced when dependencies are built.
