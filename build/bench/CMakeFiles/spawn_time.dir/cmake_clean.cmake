file(REMOVE_RECURSE
  "CMakeFiles/spawn_time.dir/spawn_time.cc.o"
  "CMakeFiles/spawn_time.dir/spawn_time.cc.o.d"
  "spawn_time"
  "spawn_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawn_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
