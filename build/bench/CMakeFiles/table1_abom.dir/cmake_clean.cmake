file(REMOVE_RECURSE
  "CMakeFiles/table1_abom.dir/table1_abom.cc.o"
  "CMakeFiles/table1_abom.dir/table1_abom.cc.o.d"
  "table1_abom"
  "table1_abom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_abom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
