# Empty dependencies file for table1_abom.
# This may be replaced when dependencies are built.
