# Empty dependencies file for ablation_kernel_custom.
# This may be replaced when dependencies are built.
