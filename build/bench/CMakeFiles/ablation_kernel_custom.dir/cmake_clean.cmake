file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernel_custom.dir/ablation_kernel_custom.cc.o"
  "CMakeFiles/ablation_kernel_custom.dir/ablation_kernel_custom.cc.o.d"
  "ablation_kernel_custom"
  "ablation_kernel_custom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
