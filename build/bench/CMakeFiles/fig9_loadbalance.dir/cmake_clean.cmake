file(REMOVE_RECURSE
  "CMakeFiles/fig9_loadbalance.dir/fig9_loadbalance.cc.o"
  "CMakeFiles/fig9_loadbalance.dir/fig9_loadbalance.cc.o.d"
  "fig9_loadbalance"
  "fig9_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
