# Empty dependencies file for fig9_loadbalance.
# This may be replaced when dependencies are built.
