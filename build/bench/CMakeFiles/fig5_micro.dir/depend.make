# Empty dependencies file for fig5_micro.
# This may be replaced when dependencies are built.
