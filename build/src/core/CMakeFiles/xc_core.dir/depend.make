# Empty dependencies file for xc_core.
# This may be replaced when dependencies are built.
