file(REMOVE_RECURSE
  "CMakeFiles/xc_core.dir/abom.cc.o"
  "CMakeFiles/xc_core.dir/abom.cc.o.d"
  "CMakeFiles/xc_core.dir/offline_patch.cc.o"
  "CMakeFiles/xc_core.dir/offline_patch.cc.o.d"
  "CMakeFiles/xc_core.dir/platform.cc.o"
  "CMakeFiles/xc_core.dir/platform.cc.o.d"
  "libxc_core.a"
  "libxc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
