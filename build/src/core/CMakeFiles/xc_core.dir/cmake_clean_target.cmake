file(REMOVE_RECURSE
  "libxc_core.a"
)
