
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/abom.cc" "src/core/CMakeFiles/xc_core.dir/abom.cc.o" "gcc" "src/core/CMakeFiles/xc_core.dir/abom.cc.o.d"
  "/root/repo/src/core/offline_patch.cc" "src/core/CMakeFiles/xc_core.dir/offline_patch.cc.o" "gcc" "src/core/CMakeFiles/xc_core.dir/offline_patch.cc.o.d"
  "/root/repo/src/core/platform.cc" "src/core/CMakeFiles/xc_core.dir/platform.cc.o" "gcc" "src/core/CMakeFiles/xc_core.dir/platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xen/CMakeFiles/xc_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/xc_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
