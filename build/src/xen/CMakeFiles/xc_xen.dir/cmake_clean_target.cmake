file(REMOVE_RECURSE
  "libxc_xen.a"
)
