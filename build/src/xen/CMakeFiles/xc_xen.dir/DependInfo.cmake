
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xen/balloon.cc" "src/xen/CMakeFiles/xc_xen.dir/balloon.cc.o" "gcc" "src/xen/CMakeFiles/xc_xen.dir/balloon.cc.o.d"
  "/root/repo/src/xen/event_channel.cc" "src/xen/CMakeFiles/xc_xen.dir/event_channel.cc.o" "gcc" "src/xen/CMakeFiles/xc_xen.dir/event_channel.cc.o.d"
  "/root/repo/src/xen/hypervisor.cc" "src/xen/CMakeFiles/xc_xen.dir/hypervisor.cc.o" "gcc" "src/xen/CMakeFiles/xc_xen.dir/hypervisor.cc.o.d"
  "/root/repo/src/xen/migration.cc" "src/xen/CMakeFiles/xc_xen.dir/migration.cc.o" "gcc" "src/xen/CMakeFiles/xc_xen.dir/migration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guestos/CMakeFiles/xc_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xc_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
