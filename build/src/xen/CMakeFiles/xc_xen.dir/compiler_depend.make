# Empty compiler generated dependencies file for xc_xen.
# This may be replaced when dependencies are built.
