file(REMOVE_RECURSE
  "CMakeFiles/xc_xen.dir/balloon.cc.o"
  "CMakeFiles/xc_xen.dir/balloon.cc.o.d"
  "CMakeFiles/xc_xen.dir/event_channel.cc.o"
  "CMakeFiles/xc_xen.dir/event_channel.cc.o.d"
  "CMakeFiles/xc_xen.dir/hypervisor.cc.o"
  "CMakeFiles/xc_xen.dir/hypervisor.cc.o.d"
  "CMakeFiles/xc_xen.dir/migration.cc.o"
  "CMakeFiles/xc_xen.dir/migration.cc.o.d"
  "libxc_xen.a"
  "libxc_xen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xc_xen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
