file(REMOVE_RECURSE
  "libxc_isa.a"
)
