file(REMOVE_RECURSE
  "CMakeFiles/xc_isa.dir/insn.cc.o"
  "CMakeFiles/xc_isa.dir/insn.cc.o.d"
  "CMakeFiles/xc_isa.dir/interpreter.cc.o"
  "CMakeFiles/xc_isa.dir/interpreter.cc.o.d"
  "CMakeFiles/xc_isa.dir/syscall_stub.cc.o"
  "CMakeFiles/xc_isa.dir/syscall_stub.cc.o.d"
  "libxc_isa.a"
  "libxc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
