# Empty dependencies file for xc_isa.
# This may be replaced when dependencies are built.
