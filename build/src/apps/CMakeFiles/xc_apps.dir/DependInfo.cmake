
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/haproxy.cc" "src/apps/CMakeFiles/xc_apps.dir/haproxy.cc.o" "gcc" "src/apps/CMakeFiles/xc_apps.dir/haproxy.cc.o.d"
  "/root/repo/src/apps/images.cc" "src/apps/CMakeFiles/xc_apps.dir/images.cc.o" "gcc" "src/apps/CMakeFiles/xc_apps.dir/images.cc.o.d"
  "/root/repo/src/apps/kv.cc" "src/apps/CMakeFiles/xc_apps.dir/kv.cc.o" "gcc" "src/apps/CMakeFiles/xc_apps.dir/kv.cc.o.d"
  "/root/repo/src/apps/nginx.cc" "src/apps/CMakeFiles/xc_apps.dir/nginx.cc.o" "gcc" "src/apps/CMakeFiles/xc_apps.dir/nginx.cc.o.d"
  "/root/repo/src/apps/nginx_php.cc" "src/apps/CMakeFiles/xc_apps.dir/nginx_php.cc.o" "gcc" "src/apps/CMakeFiles/xc_apps.dir/nginx_php.cc.o.d"
  "/root/repo/src/apps/php_mysql.cc" "src/apps/CMakeFiles/xc_apps.dir/php_mysql.cc.o" "gcc" "src/apps/CMakeFiles/xc_apps.dir/php_mysql.cc.o.d"
  "/root/repo/src/apps/roster.cc" "src/apps/CMakeFiles/xc_apps.dir/roster.cc.o" "gcc" "src/apps/CMakeFiles/xc_apps.dir/roster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtimes/CMakeFiles/xc_runtimes.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/xc_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/xc_xen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
