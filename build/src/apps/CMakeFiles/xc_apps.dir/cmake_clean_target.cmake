file(REMOVE_RECURSE
  "libxc_apps.a"
)
