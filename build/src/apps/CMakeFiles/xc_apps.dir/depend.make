# Empty dependencies file for xc_apps.
# This may be replaced when dependencies are built.
