file(REMOVE_RECURSE
  "CMakeFiles/xc_apps.dir/haproxy.cc.o"
  "CMakeFiles/xc_apps.dir/haproxy.cc.o.d"
  "CMakeFiles/xc_apps.dir/images.cc.o"
  "CMakeFiles/xc_apps.dir/images.cc.o.d"
  "CMakeFiles/xc_apps.dir/kv.cc.o"
  "CMakeFiles/xc_apps.dir/kv.cc.o.d"
  "CMakeFiles/xc_apps.dir/nginx.cc.o"
  "CMakeFiles/xc_apps.dir/nginx.cc.o.d"
  "CMakeFiles/xc_apps.dir/nginx_php.cc.o"
  "CMakeFiles/xc_apps.dir/nginx_php.cc.o.d"
  "CMakeFiles/xc_apps.dir/php_mysql.cc.o"
  "CMakeFiles/xc_apps.dir/php_mysql.cc.o.d"
  "CMakeFiles/xc_apps.dir/roster.cc.o"
  "CMakeFiles/xc_apps.dir/roster.cc.o.d"
  "libxc_apps.a"
  "libxc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
