file(REMOVE_RECURSE
  "libxc_load.a"
)
