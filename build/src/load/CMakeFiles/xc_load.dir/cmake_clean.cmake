file(REMOVE_RECURSE
  "CMakeFiles/xc_load.dir/driver.cc.o"
  "CMakeFiles/xc_load.dir/driver.cc.o.d"
  "CMakeFiles/xc_load.dir/iperf.cc.o"
  "CMakeFiles/xc_load.dir/iperf.cc.o.d"
  "CMakeFiles/xc_load.dir/unixbench.cc.o"
  "CMakeFiles/xc_load.dir/unixbench.cc.o.d"
  "libxc_load.a"
  "libxc_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xc_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
