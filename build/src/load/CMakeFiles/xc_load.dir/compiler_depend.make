# Empty compiler generated dependencies file for xc_load.
# This may be replaced when dependencies are built.
