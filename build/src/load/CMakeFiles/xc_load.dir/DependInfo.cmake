
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/load/driver.cc" "src/load/CMakeFiles/xc_load.dir/driver.cc.o" "gcc" "src/load/CMakeFiles/xc_load.dir/driver.cc.o.d"
  "/root/repo/src/load/iperf.cc" "src/load/CMakeFiles/xc_load.dir/iperf.cc.o" "gcc" "src/load/CMakeFiles/xc_load.dir/iperf.cc.o.d"
  "/root/repo/src/load/unixbench.cc" "src/load/CMakeFiles/xc_load.dir/unixbench.cc.o" "gcc" "src/load/CMakeFiles/xc_load.dir/unixbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/xc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtimes/CMakeFiles/xc_runtimes.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/xc_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/xc_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xc_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
