# Empty dependencies file for xc_runtimes.
# This may be replaced when dependencies are built.
