file(REMOVE_RECURSE
  "libxc_runtimes.a"
)
