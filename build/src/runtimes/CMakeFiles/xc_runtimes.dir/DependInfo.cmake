
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtimes/clear_container.cc" "src/runtimes/CMakeFiles/xc_runtimes.dir/clear_container.cc.o" "gcc" "src/runtimes/CMakeFiles/xc_runtimes.dir/clear_container.cc.o.d"
  "/root/repo/src/runtimes/docker.cc" "src/runtimes/CMakeFiles/xc_runtimes.dir/docker.cc.o" "gcc" "src/runtimes/CMakeFiles/xc_runtimes.dir/docker.cc.o.d"
  "/root/repo/src/runtimes/graphene.cc" "src/runtimes/CMakeFiles/xc_runtimes.dir/graphene.cc.o" "gcc" "src/runtimes/CMakeFiles/xc_runtimes.dir/graphene.cc.o.d"
  "/root/repo/src/runtimes/gvisor.cc" "src/runtimes/CMakeFiles/xc_runtimes.dir/gvisor.cc.o" "gcc" "src/runtimes/CMakeFiles/xc_runtimes.dir/gvisor.cc.o.d"
  "/root/repo/src/runtimes/unikernel.cc" "src/runtimes/CMakeFiles/xc_runtimes.dir/unikernel.cc.o" "gcc" "src/runtimes/CMakeFiles/xc_runtimes.dir/unikernel.cc.o.d"
  "/root/repo/src/runtimes/x_container.cc" "src/runtimes/CMakeFiles/xc_runtimes.dir/x_container.cc.o" "gcc" "src/runtimes/CMakeFiles/xc_runtimes.dir/x_container.cc.o.d"
  "/root/repo/src/runtimes/xen_container.cc" "src/runtimes/CMakeFiles/xc_runtimes.dir/xen_container.cc.o" "gcc" "src/runtimes/CMakeFiles/xc_runtimes.dir/xen_container.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/xc_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/xc_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xc_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
