file(REMOVE_RECURSE
  "CMakeFiles/xc_runtimes.dir/clear_container.cc.o"
  "CMakeFiles/xc_runtimes.dir/clear_container.cc.o.d"
  "CMakeFiles/xc_runtimes.dir/docker.cc.o"
  "CMakeFiles/xc_runtimes.dir/docker.cc.o.d"
  "CMakeFiles/xc_runtimes.dir/graphene.cc.o"
  "CMakeFiles/xc_runtimes.dir/graphene.cc.o.d"
  "CMakeFiles/xc_runtimes.dir/gvisor.cc.o"
  "CMakeFiles/xc_runtimes.dir/gvisor.cc.o.d"
  "CMakeFiles/xc_runtimes.dir/unikernel.cc.o"
  "CMakeFiles/xc_runtimes.dir/unikernel.cc.o.d"
  "CMakeFiles/xc_runtimes.dir/x_container.cc.o"
  "CMakeFiles/xc_runtimes.dir/x_container.cc.o.d"
  "CMakeFiles/xc_runtimes.dir/xen_container.cc.o"
  "CMakeFiles/xc_runtimes.dir/xen_container.cc.o.d"
  "libxc_runtimes.a"
  "libxc_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xc_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
