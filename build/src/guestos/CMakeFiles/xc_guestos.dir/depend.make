# Empty dependencies file for xc_guestos.
# This may be replaced when dependencies are built.
