file(REMOVE_RECURSE
  "CMakeFiles/xc_guestos.dir/epoll.cc.o"
  "CMakeFiles/xc_guestos.dir/epoll.cc.o.d"
  "CMakeFiles/xc_guestos.dir/file_object.cc.o"
  "CMakeFiles/xc_guestos.dir/file_object.cc.o.d"
  "CMakeFiles/xc_guestos.dir/ipvs.cc.o"
  "CMakeFiles/xc_guestos.dir/ipvs.cc.o.d"
  "CMakeFiles/xc_guestos.dir/kernel.cc.o"
  "CMakeFiles/xc_guestos.dir/kernel.cc.o.d"
  "CMakeFiles/xc_guestos.dir/net.cc.o"
  "CMakeFiles/xc_guestos.dir/net.cc.o.d"
  "CMakeFiles/xc_guestos.dir/pipe.cc.o"
  "CMakeFiles/xc_guestos.dir/pipe.cc.o.d"
  "CMakeFiles/xc_guestos.dir/process.cc.o"
  "CMakeFiles/xc_guestos.dir/process.cc.o.d"
  "CMakeFiles/xc_guestos.dir/sys.cc.o"
  "CMakeFiles/xc_guestos.dir/sys.cc.o.d"
  "CMakeFiles/xc_guestos.dir/syscall_nums.cc.o"
  "CMakeFiles/xc_guestos.dir/syscall_nums.cc.o.d"
  "CMakeFiles/xc_guestos.dir/thread.cc.o"
  "CMakeFiles/xc_guestos.dir/thread.cc.o.d"
  "CMakeFiles/xc_guestos.dir/vfs.cc.o"
  "CMakeFiles/xc_guestos.dir/vfs.cc.o.d"
  "libxc_guestos.a"
  "libxc_guestos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xc_guestos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
