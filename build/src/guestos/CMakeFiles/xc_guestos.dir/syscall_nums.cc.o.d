src/guestos/CMakeFiles/xc_guestos.dir/syscall_nums.cc.o: \
 /root/repo/src/guestos/syscall_nums.cc /usr/include/stdc-predef.h \
 /root/repo/src/guestos/syscall_nums.h
