file(REMOVE_RECURSE
  "libxc_guestos.a"
)
