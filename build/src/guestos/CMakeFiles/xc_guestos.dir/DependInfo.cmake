
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guestos/epoll.cc" "src/guestos/CMakeFiles/xc_guestos.dir/epoll.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/epoll.cc.o.d"
  "/root/repo/src/guestos/file_object.cc" "src/guestos/CMakeFiles/xc_guestos.dir/file_object.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/file_object.cc.o.d"
  "/root/repo/src/guestos/ipvs.cc" "src/guestos/CMakeFiles/xc_guestos.dir/ipvs.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/ipvs.cc.o.d"
  "/root/repo/src/guestos/kernel.cc" "src/guestos/CMakeFiles/xc_guestos.dir/kernel.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/kernel.cc.o.d"
  "/root/repo/src/guestos/net.cc" "src/guestos/CMakeFiles/xc_guestos.dir/net.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/net.cc.o.d"
  "/root/repo/src/guestos/pipe.cc" "src/guestos/CMakeFiles/xc_guestos.dir/pipe.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/pipe.cc.o.d"
  "/root/repo/src/guestos/process.cc" "src/guestos/CMakeFiles/xc_guestos.dir/process.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/process.cc.o.d"
  "/root/repo/src/guestos/sys.cc" "src/guestos/CMakeFiles/xc_guestos.dir/sys.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/sys.cc.o.d"
  "/root/repo/src/guestos/syscall_nums.cc" "src/guestos/CMakeFiles/xc_guestos.dir/syscall_nums.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/syscall_nums.cc.o.d"
  "/root/repo/src/guestos/thread.cc" "src/guestos/CMakeFiles/xc_guestos.dir/thread.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/thread.cc.o.d"
  "/root/repo/src/guestos/vfs.cc" "src/guestos/CMakeFiles/xc_guestos.dir/vfs.cc.o" "gcc" "src/guestos/CMakeFiles/xc_guestos.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xc_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
