# Empty compiler generated dependencies file for xc_sim.
# This may be replaced when dependencies are built.
