file(REMOVE_RECURSE
  "libxc_sim.a"
)
