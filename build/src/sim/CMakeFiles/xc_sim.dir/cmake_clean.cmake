file(REMOVE_RECURSE
  "CMakeFiles/xc_sim.dir/event_queue.cc.o"
  "CMakeFiles/xc_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/xc_sim.dir/logging.cc.o"
  "CMakeFiles/xc_sim.dir/logging.cc.o.d"
  "CMakeFiles/xc_sim.dir/rng.cc.o"
  "CMakeFiles/xc_sim.dir/rng.cc.o.d"
  "CMakeFiles/xc_sim.dir/stats.cc.o"
  "CMakeFiles/xc_sim.dir/stats.cc.o.d"
  "CMakeFiles/xc_sim.dir/trace.cc.o"
  "CMakeFiles/xc_sim.dir/trace.cc.o.d"
  "libxc_sim.a"
  "libxc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
