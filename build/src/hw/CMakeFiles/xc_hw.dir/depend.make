# Empty dependencies file for xc_hw.
# This may be replaced when dependencies are built.
