file(REMOVE_RECURSE
  "libxc_hw.a"
)
