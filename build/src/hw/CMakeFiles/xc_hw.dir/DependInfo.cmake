
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cost_model.cc" "src/hw/CMakeFiles/xc_hw.dir/cost_model.cc.o" "gcc" "src/hw/CMakeFiles/xc_hw.dir/cost_model.cc.o.d"
  "/root/repo/src/hw/cpu_pool.cc" "src/hw/CMakeFiles/xc_hw.dir/cpu_pool.cc.o" "gcc" "src/hw/CMakeFiles/xc_hw.dir/cpu_pool.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/xc_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/xc_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/page_table.cc" "src/hw/CMakeFiles/xc_hw.dir/page_table.cc.o" "gcc" "src/hw/CMakeFiles/xc_hw.dir/page_table.cc.o.d"
  "/root/repo/src/hw/phys_memory.cc" "src/hw/CMakeFiles/xc_hw.dir/phys_memory.cc.o" "gcc" "src/hw/CMakeFiles/xc_hw.dir/phys_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
