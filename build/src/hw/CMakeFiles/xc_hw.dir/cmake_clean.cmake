file(REMOVE_RECURSE
  "CMakeFiles/xc_hw.dir/cost_model.cc.o"
  "CMakeFiles/xc_hw.dir/cost_model.cc.o.d"
  "CMakeFiles/xc_hw.dir/cpu_pool.cc.o"
  "CMakeFiles/xc_hw.dir/cpu_pool.cc.o.d"
  "CMakeFiles/xc_hw.dir/machine.cc.o"
  "CMakeFiles/xc_hw.dir/machine.cc.o.d"
  "CMakeFiles/xc_hw.dir/page_table.cc.o"
  "CMakeFiles/xc_hw.dir/page_table.cc.o.d"
  "CMakeFiles/xc_hw.dir/phys_memory.cc.o"
  "CMakeFiles/xc_hw.dir/phys_memory.cc.o.d"
  "libxc_hw.a"
  "libxc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
