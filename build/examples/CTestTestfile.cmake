# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_binary_patching "/root/repo/build/examples/binary_patching")
set_tests_properties(example_binary_patching PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_migration "/root/repo/build/examples/live_migration")
set_tests_properties(example_live_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kernel_customization "/root/repo/build/examples/kernel_customization")
set_tests_properties(example_kernel_customization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_microservice_web "/root/repo/build/examples/microservice_web")
set_tests_properties(example_microservice_web PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
