# Empty compiler generated dependencies file for binary_patching.
# This may be replaced when dependencies are built.
