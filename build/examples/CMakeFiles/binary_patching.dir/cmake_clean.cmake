file(REMOVE_RECURSE
  "CMakeFiles/binary_patching.dir/binary_patching.cpp.o"
  "CMakeFiles/binary_patching.dir/binary_patching.cpp.o.d"
  "binary_patching"
  "binary_patching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_patching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
