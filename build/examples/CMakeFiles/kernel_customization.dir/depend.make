# Empty dependencies file for kernel_customization.
# This may be replaced when dependencies are built.
