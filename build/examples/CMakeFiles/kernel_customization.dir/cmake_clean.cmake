file(REMOVE_RECURSE
  "CMakeFiles/kernel_customization.dir/kernel_customization.cpp.o"
  "CMakeFiles/kernel_customization.dir/kernel_customization.cpp.o.d"
  "kernel_customization"
  "kernel_customization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_customization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
