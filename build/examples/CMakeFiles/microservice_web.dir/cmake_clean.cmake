file(REMOVE_RECURSE
  "CMakeFiles/microservice_web.dir/microservice_web.cpp.o"
  "CMakeFiles/microservice_web.dir/microservice_web.cpp.o.d"
  "microservice_web"
  "microservice_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microservice_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
