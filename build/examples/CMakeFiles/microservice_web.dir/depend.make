# Empty dependencies file for microservice_web.
# This may be replaced when dependencies are built.
