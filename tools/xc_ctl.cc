/**
 * @file
 * xc_ctl — command-line client for a bench's live control socket.
 *
 *   xc_ctl SOCKET CMD [ARG]
 *
 *   CMD: ping | status | mech | timeseries | profile | flight
 *      | inject-faults RATE | spawn NAME | kill NAME | resume
 *
 * Connects to the AF_UNIX socket a bench exposes via --ctl, sends
 * one request frame, prints the reply payload to stdout, and exits
 * 0 on kReplyOk / 1 on kReplyErr / 2 on usage or transport errors.
 * See DESIGN.md §14 for the framing and the determinism contract.
 */

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/ctl.h"

namespace {

using namespace xc::sim::ctl;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: xc_ctl SOCKET CMD [ARG]\n"
        "  CMD: ping | status | mech | timeseries | profile |\n"
        "       flight | inject-faults RATE | spawn NAME |\n"
        "       kill NAME | resume\n");
    return 2;
}

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string socket_path = argv[1];
    const std::string cmd = argv[2];
    const std::string arg = argc > 3 ? argv[3] : "";

    std::uint32_t type = 0;
    std::string payload;
    if (cmd == "ping") {
        type = kPing;
    } else if (cmd == "status") {
        type = kStatus;
    } else if (cmd == "mech") {
        type = kMech;
    } else if (cmd == "timeseries") {
        type = kTimeseries;
    } else if (cmd == "profile") {
        type = kProfile;
    } else if (cmd == "flight") {
        type = kFlight;
    } else if (cmd == "inject-faults") {
        type = kInjectFaults;
        payload = arg;
    } else if (cmd == "spawn") {
        type = kSpawn;
        payload = arg;
    } else if (cmd == "kill") {
        type = kKill;
        payload = arg;
    } else if (cmd == "resume") {
        type = kResume;
    } else {
        return usage();
    }
    if ((type == kInjectFaults || type == kSpawn || type == kKill) &&
        payload.empty())
        return usage();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "xc_ctl: socket path too long\n");
        return 2;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("xc_ctl: socket");
        return 2;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        std::fprintf(stderr, "xc_ctl: cannot connect to %s: %s\n",
                     socket_path.c_str(), std::strerror(errno));
        ::close(fd);
        return 2;
    }

    if (!sendAll(fd, encodeFrame(type, payload))) {
        std::perror("xc_ctl: write");
        ::close(fd);
        return 2;
    }

    FrameParser parser;
    std::vector<Frame> frames;
    char buf[4096];
    while (frames.empty()) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n == 0) {
            std::fprintf(stderr,
                         "xc_ctl: connection closed before reply\n");
            ::close(fd);
            return 2;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::perror("xc_ctl: read");
            ::close(fd);
            return 2;
        }
        if (!parser.feed(buf, static_cast<std::size_t>(n), frames)) {
            std::fprintf(stderr, "xc_ctl: bad reply: %s\n",
                         parser.error().c_str());
            ::close(fd);
            return 2;
        }
    }
    ::close(fd);

    const Frame &reply = frames.front();
    if (!reply.payload.empty())
        std::printf("%s\n", reply.payload.c_str());
    if (reply.type == kReplyOk)
        return 0;
    std::fprintf(stderr, "xc_ctl: command failed\n");
    return 1;
}
