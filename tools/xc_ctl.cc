/**
 * @file
 * xc_ctl — command-line client for a bench's live control socket.
 *
 *   xc_ctl SOCKET VERB [ARG]
 *   xc_ctl SOCKET watch [INTERVAL_MS] [COUNT]
 *   xc_ctl --help
 *
 * Connects to the AF_UNIX socket a bench exposes via --ctl, sends
 * one request frame, prints the reply payload to stdout, and exits
 * 0 on kReplyOk / 1 on kReplyErr / 2 on usage or transport errors.
 *
 * The verb set, argument syntax and --help text are generated from
 * sim::ctl::verbTable() — the same table the server dispatches on —
 * so a verb added to the protocol is self-documenting here. `watch`
 * is the one client-side verb: it re-scrapes status + metrics + slo
 * every INTERVAL_MS (default 500) and renders a top-style dashboard
 * (COUNT scrapes, default unbounded; benches without a metrics or
 * slo hook just show fewer panes).
 *
 * See DESIGN.md §14 for the framing and the determinism contract.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "sim/ctl.h"

namespace {

using namespace xc::sim::ctl;

int
usage()
{
    std::fprintf(stderr, "usage: xc_ctl SOCKET VERB [ARG]\n"
                         "  VERB:\n");
    for (const VerbInfo *v = verbTable(); v->verb != nullptr; ++v) {
        std::string spelled = v->verb;
        if (v->arg[0] != '\0') {
            spelled += " ";
            spelled += v->argRequired ? v->arg
                                      : (std::string("[") + v->arg +
                                         "]");
        }
        std::fprintf(stderr, "    %-24s %s\n", spelled.c_str(),
                     v->help);
    }
    std::fprintf(stderr,
                 "    %-24s %s\n", "watch [INTERVAL_MS] [COUNT]",
                 "periodic status/metrics/slo dashboard "
                 "(client-side)");
    return 2;
}

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * One request/reply round trip on a fresh connection.
 * @return 0 = kReplyOk (reply in @p out), 1 = kReplyErr (error text
 * in @p out), 2 = transport failure (diagnostic already printed).
 */
int
request(const std::string &socket_path, std::uint32_t type,
        const std::string &payload, std::string &out)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "xc_ctl: socket path too long\n");
        return 2;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("xc_ctl: socket");
        return 2;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        std::fprintf(stderr, "xc_ctl: cannot connect to %s: %s\n",
                     socket_path.c_str(), std::strerror(errno));
        ::close(fd);
        return 2;
    }

    if (!sendAll(fd, encodeFrame(type, payload))) {
        std::perror("xc_ctl: write");
        ::close(fd);
        return 2;
    }

    FrameParser parser;
    std::vector<Frame> frames;
    char buf[4096];
    while (frames.empty()) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n == 0) {
            std::fprintf(stderr,
                         "xc_ctl: connection closed before reply\n");
            ::close(fd);
            return 2;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::perror("xc_ctl: read");
            ::close(fd);
            return 2;
        }
        if (!parser.feed(buf, static_cast<std::size_t>(n), frames)) {
            std::fprintf(stderr, "xc_ctl: bad reply: %s\n",
                         parser.error().c_str());
            ::close(fd);
            return 2;
        }
    }
    ::close(fd);

    out = frames.front().payload;
    return frames.front().type == kReplyOk ? 0 : 1;
}

/**
 * The dashboard loop: scrape status (and, when the bench supports
 * them, metrics + slo) every @p interval_ms, @p count times (0 =
 * until the socket goes away). Renders with an ANSI home+clear
 * prefix on a TTY; plain appended panes otherwise (CI-friendly).
 */
int
watch(const std::string &socket_path, int interval_ms, int count)
{
    const bool tty = ::isatty(STDOUT_FILENO) == 1;
    for (int i = 0; count == 0 || i < count; ++i) {
        std::string status, metrics, slo;
        int rc = request(socket_path, kStatus, "", status);
        if (rc == 2)
            return i == 0 ? 2 : 0; // bench exited between scrapes
        int mrc = request(socket_path, kMetrics, "", metrics);
        if (mrc == 2)
            return 0;
        int src = request(socket_path, kSlo, "", slo);
        if (src == 2)
            return 0;

        if (tty)
            std::fputs("\x1b[H\x1b[2J", stdout);
        std::printf("== xc_ctl watch: %s (scrape %d) ==\n",
                    socket_path.c_str(), i + 1);
        std::printf("-- status --\n%s\n",
                    rc == 0 ? status.c_str() : "(unavailable)");
        if (mrc == 0)
            std::printf("-- metrics --\n%s", metrics.c_str());
        if (src == 0)
            std::printf("-- slo --\n%s", slo.c_str());
        std::fflush(stdout);

        if (count != 0 && i + 1 >= count)
            break;
        struct timespec ts;
        ts.tv_sec = interval_ms / 1000;
        ts.tv_nsec =
            static_cast<long>(interval_ms % 1000) * 1000000L;
        ::nanosleep(&ts, nullptr);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0))
        return usage();
    if (argc < 3)
        return usage();
    const std::string socket_path = argv[1];
    const std::string cmd = argv[2];

    if (cmd == "watch") {
        int interval_ms =
            argc > 3 ? std::atoi(argv[3]) : 500;
        int count = argc > 4 ? std::atoi(argv[4]) : 0;
        if (interval_ms <= 0) {
            std::fprintf(stderr,
                         "xc_ctl: watch interval must be > 0 ms\n");
            return 2;
        }
        return watch(socket_path, interval_ms, count);
    }

    const VerbInfo *verb = findVerb(cmd);
    if (verb == nullptr)
        return usage();
    std::string payload = argc > 3 ? argv[3] : "";
    if (verb->argRequired && payload.empty())
        return usage();
    if (verb->arg[0] == '\0' && !payload.empty())
        return usage();

    std::string reply;
    int rc = request(socket_path, verb->type, payload, reply);
    if (rc == 2)
        return 2;
    if (!reply.empty())
        std::printf("%s\n", reply.c_str());
    if (rc == 0)
        return 0;
    std::fprintf(stderr, "xc_ctl: command failed\n");
    return 1;
}
